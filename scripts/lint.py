#!/usr/bin/env python
"""Run the full static-analysis gate: sim-lint plus the mypy strict gate.

Usage::

    PYTHONPATH=src python scripts/lint.py [--require-mypy]

Runs, in order:

1. ``repro lint`` (the simulator-aware analyzer of :mod:`repro.analyze`)
   over ``src/repro``;
2. ``mypy --strict`` over the strictly-typed subset (``repro.core``,
   ``repro.config``, ``repro.obs``, ``repro.litmus`` and the sweep
   engine), when mypy is importable.

mypy is an optional dependency (``pip install -e .[lint]``); without it
step 2 is skipped with a notice, unless ``--require-mypy`` is given
(CI passes it so the strict gate can never silently vanish).

Exit status is nonzero when either gate fails.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Modules held to ``mypy --strict`` (the ISSUE's typing gate).
STRICT_TARGETS = [
    os.path.join("src", "repro", "core"),
    os.path.join("src", "repro", "config.py"),
    os.path.join("src", "repro", "harness", "engine.py"),
    os.path.join("src", "repro", "obs"),
    os.path.join("src", "repro", "litmus"),
]


def run_sim_lint() -> int:
    from repro.analyze.runner import run_lint

    print("== sim-lint (repro.analyze) ==")
    return run_lint([os.path.join(REPO_ROOT, "src", "repro")])


def run_mypy(required: bool) -> int:
    print("\n== mypy --strict ==")
    try:
        import mypy  # noqa: F401
    except ImportError:
        if required:
            print("mypy is required (--require-mypy) but not installed; "
                  "install with: pip install -e .[lint]")
            return 1
        print("mypy not installed; skipping the strict typing gate "
              "(pip install -e .[lint] to enable)")
        return 0
    command = [sys.executable, "-m", "mypy", "--strict"] + STRICT_TARGETS
    print(" ".join(command))
    return subprocess.call(command, cwd=REPO_ROOT)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--require-mypy", action="store_true",
                        help="fail (instead of skip) when mypy is missing")
    args = parser.parse_args()

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    lint_status = run_sim_lint()
    mypy_status = run_mypy(required=args.require_mypy)

    if lint_status or mypy_status:
        print("\nlint: FAILED")
        return 1
    print("\nlint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
