#!/usr/bin/env python
"""Run the full static-analysis gate: sim-lint plus the mypy strict gate.

Usage::

    PYTHONPATH=src python scripts/lint.py [--require-mypy] [--sarif FILE]
                                          [--changed-only [BASE]]
                                          [--perf-budget SECONDS]

Runs, in order:

1. ``repro lint`` (the simulator-aware analyzer of :mod:`repro.analyze`)
   over ``src/repro``;
2. ``mypy --strict`` over the strictly-typed subset (``repro.core``,
   ``repro.config``, ``repro.obs``, ``repro.litmus`` and the sweep
   engine), when mypy is importable.

mypy is an optional dependency (``pip install -e .[lint]``); without it
step 2 is skipped with a notice, unless ``--require-mypy`` is given
(CI passes it so the strict gate can never silently vanish).

``--changed-only`` lints only the ``src/repro`` files touched relative
to a git base (default ``HEAD``) — the fast pre-commit loop.
**Soundness caveat**: the slice runs in *partial* mode.  Whole-corpus
families are skipped outright (SIM-C counter accounting, SIM-K
cache-key completeness: their verdicts are claims about every module
at once), and the interprocedural flow rules (SIM-T) only see flows
whose source, path and sink all live inside the changed files — a
taint entering from an unchanged module is invisible.  Clean here
means "nothing newly wrong *within* the slice"; the full corpus run
(CI) stays the gate.

``--perf-budget`` fails the run when the corpus-wide sim-lint pass
exceeds the given wall-clock seconds: the analyzer is part of every
developer loop and CI run, so its own cost is budgeted like the
simulator's (see BENCH_core.json for that gate).

Exit status is nonzero when either gate fails.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import time
from typing import List, Optional

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

#: Modules held to ``mypy --strict`` (the ISSUE's typing gate).
STRICT_TARGETS = [
    os.path.join("src", "repro", "core"),
    os.path.join("src", "repro", "config.py"),
    os.path.join("src", "repro", "fastcore"),
    os.path.join("src", "repro", "harness", "engine.py"),
    os.path.join("src", "repro", "obs"),
    os.path.join("src", "repro", "litmus"),
]


def changed_py_files(base: str) -> Optional[List[str]]:
    """``src/repro`` Python files changed vs ``base`` (None on git
    failure, empty list when nothing relevant changed)."""
    command = ["git", "diff", "--name-only", "--diff-filter=d", base,
               "--", "src/repro"]
    try:
        output = subprocess.check_output(command, cwd=REPO_ROOT, text=True)
    except (subprocess.CalledProcessError, OSError) as error:
        print(f"lint: git diff failed ({error}); "
              f"falling back to a full run")
        return None
    return [os.path.join(REPO_ROOT, line.strip())
            for line in output.splitlines()
            if line.strip().endswith(".py")
            and os.path.exists(os.path.join(REPO_ROOT, line.strip()))]


def run_sim_lint(args: argparse.Namespace) -> int:
    from repro.analyze.runner import run_lint

    lint_args: List[str] = []
    if args.changed_only is not None:
        changed = changed_py_files(args.changed_only)
        if changed is not None:
            if not changed:
                print("== sim-lint (repro.analyze) ==")
                print("no changed src/repro files; nothing to lint")
                return 0
            print("== sim-lint (repro.analyze, changed-only: "
                  "PARTIAL — corpus-keyed families skipped, "
                  "cross-module flows invisible) ==")
            lint_args = changed + ["--partial"]
    if not lint_args:
        print("== sim-lint (repro.analyze) ==")
        lint_args = [os.path.join(REPO_ROOT, "src", "repro")]
    if args.sarif:
        lint_args += ["--sarif", args.sarif]

    started = time.perf_counter()
    status = run_lint(lint_args)
    elapsed = time.perf_counter() - started
    print(f"sim-lint wall time: {elapsed:.2f}s")
    if args.perf_budget is not None and elapsed > args.perf_budget:
        print(f"sim-lint perf budget EXCEEDED: {elapsed:.2f}s > "
              f"{args.perf_budget:.2f}s budget")
        return status or 1
    return status


def run_mypy(required: bool) -> int:
    print("\n== mypy --strict ==")
    try:
        import mypy  # noqa: F401
    except ImportError:
        if required:
            print("mypy is required (--require-mypy) but not installed; "
                  "install with: pip install -e .[lint]")
            return 1
        print("mypy not installed; skipping the strict typing gate "
              "(pip install -e .[lint] to enable)")
        return 0
    command = [sys.executable, "-m", "mypy", "--strict"] + STRICT_TARGETS
    print(" ".join(command))
    return subprocess.call(command, cwd=REPO_ROOT)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--require-mypy", action="store_true",
                        help="fail (instead of skip) when mypy is missing")
    parser.add_argument("--sarif", metavar="FILE",
                        help="also write sim-lint findings as SARIF 2.1.0")
    parser.add_argument("--changed-only", nargs="?", const="HEAD",
                        metavar="BASE",
                        help="lint only src/repro files changed vs BASE "
                             "(default HEAD); runs in partial mode — see "
                             "the module docstring for the soundness "
                             "caveat")
    parser.add_argument("--perf-budget", type=float, metavar="SECONDS",
                        help="fail when the sim-lint pass takes longer "
                             "than this many wall-clock seconds")
    args = parser.parse_args()

    sys.path.insert(0, os.path.join(REPO_ROOT, "src"))
    lint_status = run_sim_lint(args)
    mypy_status = run_mypy(required=args.require_mypy)

    if lint_status or mypy_status:
        print("\nlint: FAILED")
        return 1
    print("\nlint: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
