"""Calibration helper: run all benchmarks with optional profile overrides.

Usage: python scripts/calibrate.py [n_instructions]

Edit OVERRIDES while tuning; once values look right, bake them into
src/repro/workload/spec2k.py and empty the dict.
"""
import sys
import time
from dataclasses import replace

from repro import base_machine, generate_trace, simulate, ALL_BENCHMARKS, profile_for

OVERRIDES = {}

def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    t0 = time.time()
    print(f"{'bench':9s} {'IPC':>5s} {'tgt':>4s} | {'ooo':>5s} {'tgt':>4s} |"
          f" {'fwd':>6s} slsq llsq  ssw")
    for name in ALL_BENCHMARKS:
        profile = profile_for(name)
        if name in OVERRIDES:
            profile = replace(profile, **OVERRIDES[name])
        trace = generate_trace(profile, n_instructions=n)
        stats = simulate(trace, base_machine()).stats
        fwd = stats.sq_search_matches / max(stats.sq_searches, 1)
        print(f"{name:9s} {stats.ipc:5.2f} {profile.base_ipc:4.1f} |"
              f" {stats.avg_ooo_loads:5.2f} {profile.ooo_loads:4.1f} |"
              f" {fwd:6.1%} {stats.store_load_squashes:4d}"
              f" {stats.load_load_squashes:4d} {stats.store_set_waits:5d}")
    print(f"{time.time() - t0:.1f}s")

if __name__ == "__main__":
    main()
