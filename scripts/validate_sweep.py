#!/usr/bin/env python
"""The full validation acceptance sweep.

Runs every benchmark x LSQ preset combination under the complete
validation stack — memory-model oracle plus cycle-level invariants —
and (unless ``--no-faults``) the three fault-injection campaigns on
each machine, asserting zero silent corruptions.  This is the
long-running counterpart to the CI smoke matrix; expect minutes of
pure-Python simulation.

Validated runs go through :mod:`repro.harness.engine`, so results (and
the oracle's checked-load/checked-cycle summary) persist in the on-disk
result cache: a re-run after an interrupted sweep, or after a sweep at
the same code version, replays cached cells instantly.  ``--no-cache``
forces everything to simulate afresh.  Fault-injection campaigns are
never cached — injecting faults is the point of running them.

Usage:
    PYTHONPATH=src python scripts/validate_sweep.py
    PYTHONPATH=src python scripts/validate_sweep.py -n 3000 --benchmarks gcc,mcf
    PYTHONPATH=src python scripts/validate_sweep.py --no-faults --no-cache

Exit status is nonzero if any configuration fails validation or any
fault campaign reports a silent corruption.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from dataclasses import replace

from repro.cli import PRESETS
from repro.config import base_machine
from repro.harness.engine import Cell, ResultCache, SweepEngine
from repro.validate import (
    SimulationDeadlock,
    ValidationError,
    run_all_fault_classes,
)
from repro.workload import ALL_BENCHMARKS, generate_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-n", "--instructions", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_INSTRUCTIONS", "6000")))
    parser.add_argument("--benchmarks", default="all",
                        help="comma-separated names (default: all 18)")
    parser.add_argument("--presets", default="all",
                        help="comma-separated preset names (default: all 4)")
    parser.add_argument("--ports", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection RNG seed")
    parser.add_argument("--no-faults", action="store_true",
                        help="skip the fault-injection campaigns")
    parser.add_argument("--cache", dest="cache_dir", metavar="DIR",
                        help="result-cache directory (default: "
                             "$REPRO_CACHE_DIR or .repro-cache)")
    parser.add_argument("--no-cache", action="store_true",
                        help="simulate every cell afresh")
    args = parser.parse_args(argv)

    benchmarks = (list(ALL_BENCHMARKS) if args.benchmarks == "all"
                  else args.benchmarks.split(","))
    presets = (sorted(PRESETS) if args.presets == "all"
               else args.presets.split(","))
    for name in benchmarks:
        if name not in ALL_BENCHMARKS:
            parser.error(f"unknown benchmark {name!r}; choose from: "
                         f"{', '.join(ALL_BENCHMARKS)}")
    for name in presets:
        if name not in PRESETS:
            parser.error(f"unknown preset {name!r}; choose from: "
                         f"{', '.join(sorted(PRESETS))}")

    cache = None
    if not args.no_cache:
        cache = (ResultCache(args.cache_dir) if args.cache_dir
                 else ResultCache())
    engine = SweepEngine(cache=cache)

    started = time.time()
    failures = []
    total_loads = 0
    total_cycles = 0
    total_injected = 0
    cache_hits = 0
    for bench in benchmarks:
        fault_trace = (None if args.no_faults else
                       generate_trace(bench,
                                      n_instructions=args.instructions))
        for preset in presets:
            machine = replace(base_machine(),
                              lsq=PRESETS[preset](ports=args.ports))
            label = f"{bench} x {preset}"
            cell = Cell(benchmark=bench, machine=machine, seed=0,
                        n_instructions=args.instructions, validate=True,
                        label=preset)
            try:
                cell_result = engine.run_cell(cell)
            except (ValidationError, SimulationDeadlock) as error:
                failures.append(label)
                print(f"FAIL {label}\n{error}")
                continue
            summary = cell_result.validation
            assert summary is not None
            total_loads += summary.checked_loads
            total_cycles += summary.checked_cycles
            cache_hits += cell_result.cached
            source = " [cached]" if cell_result.cached else ""
            line = (f"ok   {label}: IPC {cell_result.ipc:.2f}; "
                    f"{summary.report}{source}")
            if fault_trace is not None:
                reports = run_all_fault_classes(fault_trace, machine,
                                                seed=args.seed)
                injected = sum(len(r.outcomes) for r in reports.values())
                silent = sum(len(r.silent) for r in reports.values())
                total_injected += injected
                line += f"; faults: {injected} injected, {silent} silent"
                for report in reports.values():
                    if not report.ok:
                        if label not in failures:
                            failures.append(label)
                        print(f"FAIL {report.format()}")
            print(line)

    elapsed = time.time() - started
    total = len(benchmarks) * len(presets)
    print(f"\nsweep: {total - len(failures)}/{total} configuration(s) "
          f"passed in {elapsed:.0f}s; {total_loads} committed loads "
          f"cross-checked, {total_cycles} cycles of invariants, "
          f"{total_injected} faults injected, {cache_hits} validated "
          f"run(s) replayed from cache")
    if failures:
        print("failed: " + ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
