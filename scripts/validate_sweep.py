#!/usr/bin/env python
"""The full validation acceptance sweep.

Runs every benchmark x LSQ preset combination under the complete
validation stack — memory-model oracle plus cycle-level invariants —
and (unless ``--no-faults``) the three fault-injection campaigns on
each machine, asserting zero silent corruptions.  This is the
long-running counterpart to the CI smoke matrix; expect minutes of
pure-Python simulation.

Usage:
    PYTHONPATH=src python scripts/validate_sweep.py
    PYTHONPATH=src python scripts/validate_sweep.py -n 3000 --benchmarks gcc,mcf
    PYTHONPATH=src python scripts/validate_sweep.py --no-faults

Exit status is nonzero if any configuration fails validation or any
fault campaign reports a silent corruption.
"""

import argparse
import os
import sys
import time

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from dataclasses import replace

from repro.cli import PRESETS
from repro.config import base_machine
from repro.pipeline.processor import simulate
from repro.validate import (
    SimulationDeadlock,
    ValidationChecker,
    ValidationError,
    run_all_fault_classes,
)
from repro.workload import ALL_BENCHMARKS, generate_trace


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-n", "--instructions", type=int,
                        default=int(os.environ.get(
                            "REPRO_BENCH_INSTRUCTIONS", "6000")))
    parser.add_argument("--benchmarks", default="all",
                        help="comma-separated names (default: all 18)")
    parser.add_argument("--presets", default="all",
                        help="comma-separated preset names (default: all 4)")
    parser.add_argument("--ports", type=int, default=2)
    parser.add_argument("--seed", type=int, default=0,
                        help="fault-injection RNG seed")
    parser.add_argument("--no-faults", action="store_true",
                        help="skip the fault-injection campaigns")
    args = parser.parse_args(argv)

    benchmarks = (list(ALL_BENCHMARKS) if args.benchmarks == "all"
                  else args.benchmarks.split(","))
    presets = (sorted(PRESETS) if args.presets == "all"
               else args.presets.split(","))
    for name in benchmarks:
        if name not in ALL_BENCHMARKS:
            parser.error(f"unknown benchmark {name!r}; choose from: "
                         f"{', '.join(ALL_BENCHMARKS)}")
    for name in presets:
        if name not in PRESETS:
            parser.error(f"unknown preset {name!r}; choose from: "
                         f"{', '.join(sorted(PRESETS))}")

    started = time.time()
    failures = []
    total_loads = 0
    total_cycles = 0
    total_injected = 0
    for bench in benchmarks:
        trace = generate_trace(bench, n_instructions=args.instructions)
        for preset in presets:
            machine = replace(base_machine(),
                              lsq=PRESETS[preset](ports=args.ports))
            label = f"{bench} x {preset}"
            checker = ValidationChecker()
            try:
                result = simulate(trace, machine, checker=checker)
            except (ValidationError, SimulationDeadlock) as error:
                failures.append(label)
                print(f"FAIL {label}\n{error}")
                continue
            total_loads += checker.checked_loads
            total_cycles += checker.checked_cycles
            line = f"ok   {label}: IPC {result.ipc:.2f}; {checker.report()}"
            if not args.no_faults:
                reports = run_all_fault_classes(trace, machine,
                                                seed=args.seed)
                injected = sum(len(r.outcomes) for r in reports.values())
                silent = sum(len(r.silent) for r in reports.values())
                total_injected += injected
                line += f"; faults: {injected} injected, {silent} silent"
                for report in reports.values():
                    if not report.ok:
                        if label not in failures:
                            failures.append(label)
                        print(f"FAIL {report.format()}")
            print(line)

    elapsed = time.time() - started
    total = len(benchmarks) * len(presets)
    print(f"\nsweep: {total - len(failures)}/{total} configuration(s) "
          f"passed in {elapsed:.0f}s; {total_loads} committed loads "
          f"cross-checked, {total_cycles} cycles of invariants, "
          f"{total_injected} faults injected")
    if failures:
        print("failed: " + ", ".join(failures))
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
