#!/usr/bin/env python3
"""Perf-regression gate over two ``BENCH_sweep.json`` reports.

Usage::

    python scripts/bench_diff.py OLD.json NEW.json [--wall-tol 0.20]
                                                   [--ipc-tol 0.001]

Cells are matched on (benchmark, label, seed, n_instructions); a match
regresses when its pure simulation time grew by more than ``--wall-tol``
(relative, default 20%) or its IPC moved by more than ``--ipc-tol``
(relative, default 0.1%) in either direction.  Exits non-zero on any
regression — wire it between a baseline ``repro bench`` report and a
fresh one (``repro bench --compare OLD.json`` is the same gate inline).
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.harness.engine import diff_reports  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_sweep.json")
    parser.add_argument("new", help="candidate BENCH_sweep.json")
    parser.add_argument("--wall-tol", type=float, default=0.20,
                        help="relative sim-time budget (default 0.20)")
    parser.add_argument("--ipc-tol", type=float, default=0.001,
                        help="relative IPC drift budget (default 0.001)")
    args = parser.parse_args(argv)

    reports = []
    for path in (args.old, args.new):
        try:
            with open(path) as handle:
                reports.append(json.load(handle))
        except (OSError, ValueError) as error:
            print(f"bench-diff: cannot read {path}: {error}",
                  file=sys.stderr)
            return 2

    problems = diff_reports(reports[0], reports[1],
                            wall_tol=args.wall_tol, ipc_tol=args.ipc_tol)
    if problems:
        print(f"bench-diff: {len(problems)} regression(s) "
              f"({args.old} -> {args.new}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"bench-diff: no regressions ({args.old} -> {args.new})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
