#!/usr/bin/env python3
"""Perf-regression gate over two ``BENCH_sweep.json`` reports.

Usage::

    python scripts/bench_diff.py OLD.json NEW.json [--wall-tol 0.20]
                                                   [--ipc-tol 0.001]

Cells are matched on (benchmark, label, seed, n_instructions); a match
regresses when its pure simulation time grew by more than ``--wall-tol``
(relative, default 20%) or its IPC moved by more than ``--ipc-tol``
(relative, default 0.1%) in either direction.  Exits non-zero on any
regression — wire it between a baseline ``repro bench`` report and a
fresh one (``repro bench --compare OLD.json`` is the same gate inline).

``--normalize`` rescales the old report's sim times by the ratio of the
two reports' ``calibration_s`` machine-speed probes (recorded by
``repro bench --baseline``), so a baseline committed from one machine
can gate a run on a slower one.  The scale is clamped at 1.0 — the
probe carries its own noise, and the gate must only ever *loosen* from
it, never manufacture a failure.  IPC comparison is unaffected (it is
deterministic).  Ignored with a warning when either report lacks a
calibration.

Normalization corrects for *machine* speed only, never for *engine*
speed: reports carry a ``backend`` tag (``python``/``fast``; untagged
legacy reports count as ``python``), and comparing reports with
different tags is an error (exit 2), not something ``--normalize`` can
paper over — gate ``BENCH_core.json`` against python runs and
``BENCH_core_fast.json`` against fast runs.

``--aggregate-wall`` applies the wall budget to the summed sim time of
the matched cells instead of each cell individually: short cells
flicker past any reasonable per-cell budget under ambient load, while
the total averages the noise out.  IPC stays per-cell (it is exact).
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.harness.engine import (  # noqa: E402
    ReportBackendMismatch,
    diff_reports,
)


def _calibration(report, which):
    """``calibration_s`` as a positive float, else ``None`` with a
    warning.  Old baselines predate the field, hand-edited ones carry
    strings or zeros — none of those may crash the gate."""
    value = report.get("calibration_s")
    try:
        number = float(value) if value is not None else 0.0
    except (TypeError, ValueError):
        print(f"bench-diff: --normalize ignored ({which} report has "
              f"malformed calibration_s {value!r})", file=sys.stderr)
        return None
    if number <= 0.0:
        print(f"bench-diff: --normalize ignored ({which} report lacks "
              "calibration_s; only 'repro bench --baseline' records "
              "it)", file=sys.stderr)
        return None
    return number


def _service_diff(reports, args) -> int:
    """Gate two ``kind: service`` reports (``BENCH_service.json``)."""
    from repro.serve.bench import diff_service_reports
    old, new = reports
    if old.get("kind") != "service" or new.get("kind") != "service":
        print("bench-diff: cannot compare a service report against a "
              "sweep report", file=sys.stderr)
        return 2
    failures = diff_service_reports(old, new, normalize=args.normalize)
    if failures:
        print(f"bench-diff: {len(failures)} serving regression(s) "
              f"({args.old} -> {args.new}):")
        for failure in failures:
            print(f"  {failure}")
        return 1
    print(f"bench-diff: no serving regressions "
          f"({args.old} -> {args.new})")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", help="baseline BENCH_sweep.json")
    parser.add_argument("new", help="candidate BENCH_sweep.json")
    parser.add_argument("--wall-tol", type=float, default=0.20,
                        help="relative sim-time budget (default 0.20)")
    parser.add_argument("--ipc-tol", type=float, default=0.001,
                        help="relative IPC drift budget (default 0.001)")
    parser.add_argument("--normalize", action="store_true",
                        help="rescale the old report's sim times by the "
                             "calibration_s ratio, clamped at 1.0 so it "
                             "only ever loosens the gate (cross-machine)")
    parser.add_argument("--aggregate-wall", action="store_true",
                        help="apply the wall budget to the summed sim "
                             "time of the matched cells instead of each "
                             "cell (noise-robust; IPC stays per-cell)")
    args = parser.parse_args(argv)

    reports = []
    for path in (args.old, args.new):
        try:
            with open(path) as handle:
                reports.append(json.load(handle))
        except (OSError, ValueError) as error:
            print(f"bench-diff: cannot read {path}: {error}",
                  file=sys.stderr)
            return 2
    for path, report in zip((args.old, args.new), reports):
        if not isinstance(report, dict):
            print(f"bench-diff: {path} is not a report object "
                  f"(got {type(report).__name__})", file=sys.stderr)
            return 2

    if reports[1].get("kind") == "service" \
            or reports[0].get("kind") == "service":
        return _service_diff(reports, args)

    if args.normalize:
        old_cal = _calibration(reports[0], "old")
        new_cal = _calibration(reports[1], "new")
        if old_cal is not None and new_cal is not None:
            # Clamped at 1.0: a slower measuring machine loosens the
            # wall budget, but a faster (or transiently lighter-loaded)
            # one never tightens it — the probe has its own noise, and
            # a regression gate must not manufacture failures from it.
            scale = max(1.0, new_cal / old_cal)
            for cell in reports[0].get("cells", []):
                cell["sim_s"] = cell.get("sim_s", 0.0) * scale
            print(f"bench-diff: normalized old sim times x{scale:.3f} "
                  f"(calibration {old_cal:.3f}s -> {new_cal:.3f}s)")

    try:
        problems = diff_reports(reports[0], reports[1],
                                wall_tol=args.wall_tol,
                                ipc_tol=args.ipc_tol,
                                aggregate_wall=args.aggregate_wall)
    except ReportBackendMismatch as error:
        print(f"bench-diff: {error}", file=sys.stderr)
        return 2
    if problems:
        print(f"bench-diff: {len(problems)} regression(s) "
              f"({args.old} -> {args.new}):")
        for problem in problems:
            print(f"  {problem}")
        return 1
    print(f"bench-diff: no regressions ({args.old} -> {args.new})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
