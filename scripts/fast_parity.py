#!/usr/bin/env python3
"""Cross-backend golden parity: every preset, both engines, one digest.

The ``fast-parity`` CI job runs this script.  For each (benchmark, seed,
preset) cell of the golden-parity suite it simulates under
``backend=python`` and ``backend=fast`` and requires bit-identical
canonical-stats digests; any drift prints the first differing counters
and exits 1.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import asdict, replace

sys.path.insert(0, "src")

from repro.config import base_machine  # noqa: E402
from repro.pipeline.processor import simulate  # noqa: E402
from repro.stats.counters import stats_digest  # noqa: E402
from repro.workload import generate_trace  # noqa: E402

sys.path.insert(0, "tests")
from test_golden_parity import (  # noqa: E402
    GOLDEN_DIGESTS,
    N_INSTRUCTIONS,
    PRESETS,
)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmarks", nargs="*",
                        default=["gcc", "mgrid", "wupwise"])
    parser.add_argument("--seeds", nargs="*", type=int, default=[0, 1])
    args = parser.parse_args()

    failures = 0
    for bench in args.benchmarks:
        for seed in args.seeds:
            trace = generate_trace(bench, n_instructions=N_INSTRUCTIONS,
                                   seed=seed)
            for preset, make_lsq in PRESETS.items():
                digests = {}
                stats = {}
                for backend in ("python", "fast"):
                    machine = replace(base_machine(), lsq=make_lsq(),
                                      backend=backend)
                    result = simulate(trace, machine)
                    digests[backend] = stats_digest(result.stats)
                    stats[backend] = asdict(result.stats)
                key = (bench, seed, preset)
                golden = GOLDEN_DIGESTS.get(key)
                ok = digests["python"] == digests["fast"]
                if ok and golden is not None:
                    ok = digests["fast"] == golden
                if ok:
                    print(f"ok   {bench} seed={seed} {preset} "
                          f"{digests['fast'][:12]}")
                    continue
                failures += 1
                print(f"FAIL {bench} seed={seed} {preset}: "
                      f"python={digests['python'][:12]} "
                      f"fast={digests['fast'][:12]} "
                      f"golden={(golden or 'n/a')[:12]}")
                for field in sorted(stats["python"]):
                    a, b = stats["python"][field], stats["fast"][field]
                    if a != b:
                        print(f"     {field}: python={a} fast={b}")
    if failures:
        print(f"{failures} cell(s) diverged")
        return 1
    print("all cells bit-identical across backends")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
