#!/usr/bin/env python3
"""CI smoke for the simulation job server (:mod:`repro.serve`).

Stands up a real server on an ephemeral port with a fresh temp cache,
then asserts the serving contract end to end:

1. two clients submit the same overlapping sweep concurrently and both
   stream their jobs to completion with zero failed cells;
2. the single-flight table coalesced them — ``computed`` cells are
   strictly fewer than ``requested`` cells;
3. a warm resubmit is served entirely from the on-disk cache, under the
   warm-hit latency SLO.

Finally runs the full serving bench and writes its report (default
``BENCH_service_fresh.json``) so the workflow can gate it against the
committed ``BENCH_service.json`` with ``scripts/bench_diff.py``.

Usage::

    python scripts/serve_smoke.py [-o BENCH_service_fresh.json]
"""

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("-o", "--output",
                        default="BENCH_service_fresh.json",
                        help="serving bench report path")
    parser.add_argument("--instructions", type=int, default=800)
    args = parser.parse_args(argv)

    import tempfile
    from pathlib import Path

    from repro.serve.bench import (
        WARM_HIT_P50_SLO_MS,
        ServerHarness,
        run_service_bench,
    )
    from repro.serve.client import ServeClient, generate_load
    from repro.serve.server import ServeConfig
    from repro.serve.spec import smoke_spec

    spec = smoke_spec(args.instructions)
    with tempfile.TemporaryDirectory(prefix="repro-serve-smoke-") as tmp:
        config = ServeConfig(port=0, workers=2,
                             cache_dir=str(Path(tmp) / "cache"))
        with ServerHarness(config) as harness:
            client = ServeClient(port=harness.port)

            load = generate_load(harness.config.host, harness.port,
                                 [spec, spec], clients=2)
            if load["jobs_completed"] != 2:
                print(f"serve-smoke: FAIL: {load['jobs_completed']}/2 "
                      "concurrent jobs completed")
                return 1
            if load["failed_cells"]:
                print(f"serve-smoke: FAIL: {load['failed_cells']} "
                      "cell(s) failed")
                return 1

            cells = client.stats()["cells"]
            if cells["computed"] >= cells["requested"]:
                print("serve-smoke: FAIL: no coalescing — "
                      f"{cells['computed']} computed for "
                      f"{cells['requested']} requested")
                return 1
            print(f"serve-smoke: coalescing ok "
                  f"({cells['computed']} computed, "
                  f"{cells['coalesced']} coalesced, "
                  f"{cells['requested']} requested)")

            job = client.submit(spec)
            final = client.wait(str(job["id"]))
            rows = final["cells"]
            not_cached = [row for row in rows
                          if row.get("source") != "cache"]
            if not_cached:
                print(f"serve-smoke: FAIL: {len(not_cached)} warm "
                      "cell(s) missed the cache")
                return 1
            warm_ms = sorted(float(row["service_ms"]) for row in rows)
            p50 = warm_ms[len(warm_ms) // 2]
            if p50 >= WARM_HIT_P50_SLO_MS:
                print(f"serve-smoke: FAIL: warm-hit p50 {p50:.3f} ms "
                      f"breaches the {WARM_HIT_P50_SLO_MS:.1f} ms SLO")
                return 1
            print(f"serve-smoke: warm hits ok (p50 {p50:.3f} ms, "
                  f"max {warm_ms[-1]:.3f} ms over {len(rows)} cells)")

    report = run_service_bench(n_instructions=args.instructions)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    print(f"serve-smoke: ok; bench report -> {args.output} "
          f"(cold {report['cold']['cells_per_s']} cells/s, "
          f"warm p50 {report['warm']['p50_ms']} ms)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
