#!/usr/bin/env python3
"""CI smoke for the fleet-telemetry layer (:mod:`repro.obs.telemetry`).

Stands up a real server on an ephemeral port with a fresh temp cache,
runs a traced smoke sweep through it, and asserts the telemetry
contract end to end:

1. the job's span tree is complete — the root ``job`` span's duration
   equals the job's wall time and its direct children cover >= 95% of
   it — and carries the client-supplied trace id;
2. ``GET /metrics`` parses as Prometheus text and contains the cache,
   coalescing, worker, and admission series;
3. ``GET /logs`` returns structured records correlated to the job;
4. ``repro top --once`` and ``repro timeline JOB`` exit 0, and the
   timeline file passes the Chrome-trace validator with both server
   spans and at least one re-simulated cell in it.

Usage::

    python scripts/telemetry_smoke.py
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--instructions", type=int, default=800)
    args = parser.parse_args(argv)

    import json
    import tempfile
    from pathlib import Path

    from repro.cli import main as cli_main
    from repro.obs.chrometrace import validate_chrome_trace_file
    from repro.obs.telemetry import (
        build_tree,
        child_coverage,
        parse_prometheus_text,
    )
    from repro.serve.bench import ServerHarness
    from repro.serve.client import ServeClient
    from repro.serve.server import ServeConfig
    from repro.serve.spec import smoke_spec

    spec = smoke_spec(args.instructions)
    with tempfile.TemporaryDirectory(prefix="repro-tele-smoke-") as tmp:
        config = ServeConfig(port=0, workers=2,
                             cache_dir=str(Path(tmp) / "cache"),
                             heartbeat_s=0.5)
        with ServerHarness(config) as harness:
            client = ServeClient(port=harness.port)
            job = client.submit(spec, trace="telemetry-smoke")
            job_id = str(job["id"])
            final = client.wait(job_id, stall_after_s=30.0)

            # 1. span-sum invariant ---------------------------------
            reply = client.spans(job_id)
            if reply.get("trace") != "telemetry-smoke":
                print(f"telemetry-smoke: FAIL: trace id not propagated "
                      f"({reply.get('trace')!r})")
                return 1
            tree = build_tree(reply["spans"])
            if tree is None:
                print("telemetry-smoke: FAIL: no job span tree")
                return 1
            summary = final["job"]
            root_s = tree["duration_ms"] / 1000.0
            if abs(root_s - float(summary["elapsed_s"])) > 1e-6:
                print(f"telemetry-smoke: FAIL: root span {root_s}s != "
                      f"job wall time {summary['elapsed_s']}s")
                return 1
            coverage = child_coverage(tree)
            if coverage < 0.95:
                print(f"telemetry-smoke: FAIL: direct children cover "
                      f"{coverage:.1%} of the root span (< 95%)")
                return 1
            print(f"telemetry-smoke: spans ok ({len(reply['spans'])} "
                  f"spans, root == wall time, coverage {coverage:.1%})")

            # 2. /metrics -------------------------------------------
            scrape = parse_prometheus_text(client.metrics())
            for prefix in ("repro_cache_misses_total",
                           "repro_coalescing_ratio",
                           "repro_pool_worker_busy",
                           "repro_jobs_admitted_total",
                           "repro_http_requests_total",
                           "repro_cell_service_ms_bucket"):
                if not scrape.series(prefix):
                    print(f"telemetry-smoke: FAIL: no {prefix} series "
                          "in /metrics")
                    return 1
            print(f"telemetry-smoke: /metrics ok "
                  f"({len(scrape.types)} families, "
                  f"{len(scrape.samples)} samples)")

            # 3. /logs ----------------------------------------------
            records = client.logs(job=job_id)["records"]
            events = {record["event"] for record in records}
            if not {"job.start", "job.done"} <= events:
                print(f"telemetry-smoke: FAIL: job lifecycle missing "
                      f"from /logs (got {sorted(events)})")
                return 1
            print(f"telemetry-smoke: /logs ok ({len(records)} records "
                  f"for {job_id})")

            # 4. CLI verbs ------------------------------------------
            out = str(Path(tmp) / "timeline.json")
            for argv_cli in (
                    ["top", "--once", "--port", str(harness.port)],
                    ["timeline", job_id, "--port", str(harness.port),
                     "-o", out]):
                try:
                    cli_main(argv_cli)
                except SystemExit as status:
                    if status.code:
                        print(f"telemetry-smoke: FAIL: repro "
                              f"{argv_cli[0]} exited {status.code}")
                        return 1
            problems = validate_chrome_trace_file(out)
            if problems:
                print("telemetry-smoke: FAIL: timeline invalid: "
                      + "; ".join(problems[:5]))
                return 1
            with open(out) as handle:
                doc = json.load(handle)
            names = {event.get("name") for event in doc["traceEvents"]}
            if "worker.exec" not in names:
                print("telemetry-smoke: FAIL: no server spans in the "
                      "timeline")
                return 1
            cells = (doc.get("otherData") or {}).get("cells")
            if not cells:
                print("telemetry-smoke: FAIL: no re-simulated cells in "
                      "the timeline")
                return 1
            print(f"telemetry-smoke: timeline ok "
                  f"({len(doc['traceEvents'])} events, cells {cells})")

    print("telemetry-smoke: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
