"""Ablation benches for the design decisions DESIGN.md calls out.

Each ablation sweeps one knob of the paper's design on a four-benchmark
subset and reports speedups relative to the 2-ported conventional base:

* **detection point** — the pair predictor requires store-load ordering
  checks at store *commit*; what would detection at *execute* cost/win?
* **LFST counter width** — the paper states 3 bits suffice.
* **early scheduling** — Section 3 forgoes speculative wakeup of load
  dependents outside the head segment; toggle it.
* **contention policy** — Section 3.2 squashes colliding in-flight
  loads; the alternative stalls the pipelined search.
"""

from dataclasses import replace

from repro.config import (
    ContentionPolicy,
    LsqConfig,
    PredictorMode,
    base_machine,
    conventional_lsq,
    segmented_lsq,
    techniques_lsq,
)
from repro.stats.report import format_table

from conftest import emit


def _speedups(runner, lsq_variants, machine_for=None):
    base = runner.run_lsq_suite(conventional_lsq(ports=2))
    rows = []
    for bench in runner.benchmarks:
        row = [bench]
        for label, variant in lsq_variants.items():
            if machine_for is not None:
                machine = machine_for(variant)
            else:
                machine = replace(base_machine(), lsq=variant)
            ipc = runner.run(bench, machine).ipc
            row.append(f"{(ipc / base[bench].ipc - 1) * 100:+.1f}%")
        rows.append(row)
    return rows, list(lsq_variants)


def test_ablation_detection_point(benchmark, ablation_runner):
    variants = {
        "commit (paper)": techniques_lsq(ports=1),
        "execute": replace(techniques_lsq(ports=1), detect_at_commit=False),
    }
    rows, labels = benchmark.pedantic(
        lambda: _speedups(ablation_runner, variants), rounds=1, iterations=1)
    emit("ablation_detection_point", format_table(
        ["bench"] + labels, rows,
        title="Ablation: store-load violation detection point "
              "(1-ported pair predictor + load buffer)"))


def test_ablation_counter_bits(benchmark, ablation_runner):
    def machine_for(bits):
        machine = base_machine()
        return replace(machine, lsq=techniques_lsq(ports=1),
                       store_sets=replace(machine.store_sets,
                                          counter_bits=bits))

    variants = {f"{bits}-bit": bits for bits in (1, 2, 3, 4)}
    rows, labels = benchmark.pedantic(
        lambda: _speedups(ablation_runner, variants, machine_for),
        rounds=1, iterations=1)
    emit("ablation_counter_bits", format_table(
        ["bench"] + labels, rows,
        title="Ablation: LFST in-flight-store counter width "
              "(paper: 3 bits suffice)"))


def test_ablation_early_scheduling(benchmark, ablation_runner):
    variants = {
        "head-only (paper)": segmented_lsq(ports=2),
        "always-early": replace(segmented_lsq(ports=2),
                                early_scheduling_head_only=False),
    }
    rows, labels = benchmark.pedantic(
        lambda: _speedups(ablation_runner, variants), rounds=1, iterations=1)
    emit("ablation_early_scheduling", format_table(
        ["bench"] + labels, rows,
        title="Ablation: early scheduling of load dependents in the "
              "segmented LSQ"))


def test_ablation_contention_policy(benchmark, ablation_runner):
    variants = {
        "squash (paper)": replace(segmented_lsq(ports=1),
                                  contention=ContentionPolicy.SQUASH),
        "stall": replace(segmented_lsq(ports=1),
                         contention=ContentionPolicy.STALL),
    }
    rows, labels = benchmark.pedantic(
        lambda: _speedups(ablation_runner, variants), rounds=1, iterations=1)
    emit("ablation_contention_policy", format_table(
        ["bench"] + labels, rows,
        title="Ablation: pipelined-search contention resolution "
              "(1-ported segmented LSQ)"))
