"""Shared fixtures for the reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures.  A single
session-scoped :class:`ExperimentRunner` is shared so configurations
that appear in several figures (e.g. the 2-ported conventional base) are
simulated once — and all execution goes through the sweep engine
(:mod:`repro.harness.engine`), so results also persist in the on-disk
cache across bench invocations and fan out over worker processes when
``REPRO_BENCH_JOBS`` > 1.

Results are printed (run with ``-s`` to see them live) and written to
``benchmarks/results/<name>.txt``.

Environment knobs:

``REPRO_BENCH_INSTRUCTIONS``
    dynamic instructions per benchmark trace (default 6000).
``REPRO_BENCH_SUBSET``
    comma-separated benchmark names to restrict the suite (default: all
    eighteen applications).
``REPRO_BENCH_JOBS``
    worker processes for sweep fan-out (default 1 = serial).
``REPRO_BENCH_CACHE``
    set to ``0``/``off`` to disable the on-disk result cache.
``REPRO_CACHE_DIR``
    cache directory (default ``.repro-cache``).
"""

import os
from pathlib import Path

import pytest

from repro.harness.engine import ResultCache, SweepEngine
from repro.harness.experiment import ExperimentRunner
from repro.workload import ALL_BENCHMARKS

RESULTS_DIR = Path(__file__).parent / "results"


def _selected_benchmarks():
    subset = os.environ.get("REPRO_BENCH_SUBSET", "")
    if subset:
        return tuple(name.strip() for name in subset.split(",") if name.strip())
    return ALL_BENCHMARKS


def _engine_from_env():
    jobs = int(os.environ.get("REPRO_BENCH_JOBS", "1"))
    cache = None
    if os.environ.get("REPRO_BENCH_CACHE", "1").lower() not in ("0", "off", "no"):
        cache = ResultCache()
    return SweepEngine(jobs=jobs, cache=cache)


@pytest.fixture(scope="session")
def engine():
    """One engine per session: shared pool width, cache and counters."""
    return _engine_from_env()


@pytest.fixture(scope="session")
def runner(engine):
    return ExperimentRunner(benchmarks=_selected_benchmarks(), engine=engine)


@pytest.fixture(scope="session")
def ablation_runner(engine):
    """Smaller suite for the ablation benches."""
    return ExperimentRunner(benchmarks=("gzip", "vortex", "mgrid", "equake"),
                            engine=engine)


def emit(result_name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result_name}.txt").write_text(text + "\n")
