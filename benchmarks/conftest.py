"""Shared fixtures for the reproduction benchmarks.

Every bench regenerates one of the paper's tables or figures.  A single
session-scoped :class:`ExperimentRunner` is shared so configurations
that appear in several figures (e.g. the 2-ported conventional base) are
simulated once.

Results are printed (run with ``-s`` to see them live) and written to
``benchmarks/results/<name>.txt``.

Environment knobs:

``REPRO_BENCH_INSTRUCTIONS``
    dynamic instructions per benchmark trace (default 6000).
``REPRO_BENCH_SUBSET``
    comma-separated benchmark names to restrict the suite (default: all
    eighteen applications).
"""

import os
from pathlib import Path

import pytest

from repro.harness.experiment import ExperimentRunner
from repro.workload import ALL_BENCHMARKS

RESULTS_DIR = Path(__file__).parent / "results"


def _selected_benchmarks():
    subset = os.environ.get("REPRO_BENCH_SUBSET", "")
    if subset:
        return tuple(name.strip() for name in subset.split(",") if name.strip())
    return ALL_BENCHMARKS


@pytest.fixture(scope="session")
def runner():
    return ExperimentRunner(benchmarks=_selected_benchmarks())


@pytest.fixture(scope="session")
def ablation_runner():
    """Smaller suite for the ablation benches."""
    return ExperimentRunner(benchmarks=("gzip", "vortex", "mgrid", "equake"))


def emit(result_name: str, text: str) -> None:
    """Print a result table and persist it under benchmarks/results/."""
    print("\n" + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{result_name}.txt").write_text(text + "\n")
