"""Table 5 — average entries needed in the load and store queues

Regenerates Table 5 (LQ/SQ occupancy demand measured with large queues) via :func:`repro.harness.figures.table5_occupancy`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/table5.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_table5(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.table5_occupancy(runner), rounds=1, iterations=1)
    emit("table5", result.format())
    assert result.rows
