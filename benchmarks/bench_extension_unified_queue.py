"""Extension: unified vs split load/store queue.

The paper notes in passing that "in a modern processor, the load/store
queue is implemented as two separate queues" and draws Figure 5's
combined queue only "for brevity".  This bench makes the implicit
trade-off explicit: a unified CAM shares capacity between loads and
stores (good for lopsided mixes like mgrid's 51/2 or vortex's 18/23)
but every search competes for one port pool (bad under bandwidth
pressure) — which is why the split design is the standard.
"""

from dataclasses import replace

from repro.config import LsqConfig, base_machine, conventional_lsq
from repro.stats.report import format_table

from conftest import emit

CONFIGS = {
    "split-2p": conventional_lsq(ports=2),
    "unified-2p": LsqConfig(unified_queue=True, search_ports=2),
    "split-1p": conventional_lsq(ports=1),
    "unified-1p": LsqConfig(unified_queue=True, search_ports=1),
    "unified-4p": LsqConfig(unified_queue=True, search_ports=4),
}


def _sweep(runner):
    base = runner.run_lsq_suite(CONFIGS["split-2p"])
    rows = []
    for bench in runner.benchmarks:
        row = [bench]
        for lsq in CONFIGS.values():
            ipc = runner.run(bench, replace(base_machine(), lsq=lsq)).ipc
            row.append(f"{(ipc / base[bench].ipc - 1) * 100:+.1f}%")
        rows.append(row)
    return rows


def test_unified_vs_split(benchmark, ablation_runner):
    rows = benchmark.pedantic(lambda: _sweep(ablation_runner), rounds=1,
                              iterations=1)
    emit("extension_unified_queue", format_table(
        ["bench"] + list(CONFIGS), rows,
        title="Extension: unified (combined) vs split LQ/SQ — shared "
              "capacity vs shared search bandwidth (both 32+32 entries "
              "total)"))
    assert rows
