"""Table 3 — accuracy of the store-load pair predictor

Regenerates Table 3 (misprediction and squash rates) via :func:`repro.harness.figures.table3_predictor_accuracy`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/table3.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_table3(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.table3_predictor_accuracy(runner), rounds=1, iterations=1)
    emit("table3", result.format())
    assert result.rows
