"""Table 4 — average number of out-of-order-issued loads

Regenerates Table 4 (per-cycle average of loads issued out of program order) via :func:`repro.harness.figures.table4_ooo_loads`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/table4.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_table4(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.table4_ooo_loads(runner), rounds=1, iterations=1)
    emit("table4", result.format())
    assert result.rows
