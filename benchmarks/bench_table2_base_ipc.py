"""Table 2 — applications and their base IPCs

Regenerates the paper's Table 2 (base IPC per benchmark) via :func:`repro.harness.figures.table2_base_ipc`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/table2.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_table2(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.table2_base_ipc(runner), rounds=1, iterations=1)
    emit("table2", result.format())
    assert result.rows
