"""Figure 6 — store-queue search-bandwidth reduction

Regenerates Figure 6 (SQ search demand for perfect/aggressive/pair predictors) via :func:`repro.harness.figures.fig6_sq_bandwidth`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/fig6.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_fig6(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.fig6_sq_bandwidth(runner), rounds=1, iterations=1)
    emit("fig6", result.format())
    assert result.rows
