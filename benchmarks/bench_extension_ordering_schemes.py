"""Extension: the load-load ordering schemes of Section 2.2, quantified.

The paper argues for hardware per-load load-queue searches (optimised by
the load buffer) by dismissing the alternatives in prose: software
memory barriers "hurt performance" and invalidation-driven detection
(MIPS R10000) covers a different design point.  This bench puts numbers
on all four schemes:

* conventional per-load LQ search (the paper's base),
* the 2-entry load buffer (the paper's technique),
* software barriers — *targeted* (before same-address reloads only,
  ideal software) and *conservative* (before every load, the "overkill"),
* invalidation-driven detection (scheme 2).

Reported as useful-IPC (barriers excluded from the numerator) and LQ
search bandwidth.
"""

from dataclasses import replace

from repro.config import LoadQueueSearchMode, LsqConfig, base_machine
from repro.pipeline.processor import simulate
from repro.stats.report import format_table
from repro.workload import generate_trace, profile_for

from conftest import emit

BENCHES = ("gzip", "mgrid", "equake", "vortex")
N = 6000


def _run(bench, profile_overrides, lsq):
    profile = replace(profile_for(bench), **profile_overrides)
    trace = generate_trace(profile, n_instructions=N)
    return simulate(trace, replace(base_machine(), lsq=lsq)).stats


def _sweep():
    schemes = {
        "search-LQ": ({}, LsqConfig()),
        "load-buffer": ({}, LsqConfig(
            lq_search=LoadQueueSearchMode.LOAD_BUFFER,
            load_buffer_entries=2)),
        "membar-targeted": (dict(membar_policy="targeted",
                                 same_addr_load_frac=0.02),
                            LsqConfig(lq_search=LoadQueueSearchMode.MEMBAR)),
        "membar-all": (dict(membar_policy="conservative"),
                       LsqConfig(lq_search=LoadQueueSearchMode.MEMBAR)),
        "invalidation": ({}, LsqConfig(
            lq_search=LoadQueueSearchMode.INVALIDATION)),
    }
    rows = []
    for bench in BENCHES:
        base_stats = _run(bench, *schemes["search-LQ"])
        row = [bench]
        for overrides, lsq in schemes.values():
            stats = _run(bench, overrides, lsq)
            rel = stats.useful_ipc / base_stats.useful_ipc - 1
            row.append(f"{rel * 100:+.0f}%/{stats.lq_searches}")
        rows.append(row)
    return rows, list(schemes)


def test_ordering_schemes(benchmark):
    rows, labels = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    emit("extension_ordering_schemes", format_table(
        ["bench"] + labels, rows,
        title="Extension: load-load ordering schemes "
              "(speedup vs per-load LQ search / LQ searches). "
              "Software barriers lose badly; the load buffer keeps the "
              "hardware guarantee at a fraction of the bandwidth."))
    assert rows
