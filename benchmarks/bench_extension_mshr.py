"""Extension: MSHR sensitivity of the paper's conclusions.

The paper's machine (and this repo's calibrated default) lets misses
overlap without bound.  This bench turns on the optional MSHR model and
asks whether the headline comparison (1-ported all-techniques vs
2-ported conventional) survives when memory-level parallelism is
bounded — i.e. whether the techniques' benefit depends on the generous
miss path.
"""

from dataclasses import replace

from repro.config import base_machine, conventional_lsq, full_techniques_lsq
from repro.pipeline.processor import simulate
from repro.stats.report import format_table
from repro.workload import generate_trace

from conftest import emit

BENCHES = ("mcf", "equake", "swim", "mgrid")
MSHR_POINTS = (0, 8, 4, 2)   # 0 = unbounded (the calibrated default)
N = 5000


def _machine(lsq, mshrs):
    machine = replace(base_machine(), lsq=lsq)
    return replace(machine, memory=replace(machine.memory,
                                           l1d_mshrs=mshrs))


def _sweep():
    rows = []
    for bench in BENCHES:
        trace = generate_trace(bench, n_instructions=N)
        row = [bench]
        for mshrs in MSHR_POINTS:
            base = simulate(trace, _machine(conventional_lsq(ports=2),
                                            mshrs)).ipc
            tech = simulate(trace, _machine(full_techniques_lsq(ports=1),
                                            mshrs)).ipc
            row.append(f"{(tech / base - 1) * 100:+.1f}%")
        rows.append(row)
    return rows


def test_mshr_sensitivity(benchmark):
    rows = benchmark.pedantic(_sweep, rounds=1, iterations=1)
    labels = ["unbounded" if m == 0 else f"{m} MSHRs" for m in MSHR_POINTS]
    emit("extension_mshr_sensitivity", format_table(
        ["bench"] + labels, rows,
        title="Extension: 1p all-techniques vs 2p conventional under "
              "bounded memory-level parallelism (miss-heavy subset)"))
    assert rows
