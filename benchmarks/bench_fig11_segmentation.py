"""Figure 11 — segmented load/store queue

Regenerates Figure 11 (no-self-circular / self-circular / 128-entry flat) via :func:`repro.harness.figures.fig11_segmentation`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/fig11.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_fig11(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.fig11_segmentation(runner), rounds=1, iterations=1)
    emit("fig11", result.format())
    assert result.rows
