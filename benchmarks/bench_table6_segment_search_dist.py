"""Table 6 — distribution of segments searched per load

Regenerates Table 6 (how many segments a forwarding search touches) via :func:`repro.harness.figures.table6_segment_distribution`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/table6.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_table6(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.table6_segment_distribution(runner), rounds=1, iterations=1)
    emit("table6", result.format())
    assert result.rows
