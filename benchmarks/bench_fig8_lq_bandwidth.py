"""Figure 8 — load-queue search-bandwidth reduction

Regenerates Figure 8 (LQ search demand with a 2-entry load buffer) via :func:`repro.harness.figures.fig8_lq_bandwidth`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/fig8.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_fig8(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.fig8_lq_bandwidth(runner), rounds=1, iterations=1)
    emit("fig8", result.format())
    assert result.rows
