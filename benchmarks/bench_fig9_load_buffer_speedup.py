"""Figure 9 — load-buffer performance sweep

Regenerates Figure 9 (in-order variants and 1/2/4-entry load buffers) via :func:`repro.harness.figures.fig9_load_buffer_speedup`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/fig9.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_fig9(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.fig9_load_buffer_speedup(runner), rounds=1, iterations=1)
    emit("fig9", result.format())
    assert result.rows
