"""Figure 7 — performance benefit of the SQ search reduction

Regenerates Figure 7 (speedups of the three predictors over the base case) via :func:`repro.harness.figures.fig7_sq_speedup`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/fig7.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_fig7(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.fig7_sq_speedup(runner), rounds=1, iterations=1)
    emit("fig7", result.format())
    assert result.rows
