"""Extension: the performance / design-complexity Pareto.

The paper's title claim is about *complexity*: its techniques let a
simpler LSQ (fewer ports, smaller searched CAM) match or beat a more
complex one.  This bench tabulates each evaluated design's speedup
alongside first-order CAM area, cycle-time pressure, and total dynamic
search energy (see :mod:`repro.core.complexity`).
"""

from dataclasses import replace

from repro.config import (
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    segmented_lsq,
    techniques_lsq,
)
from repro.core.complexity import pareto_row, search_energy
from repro.stats.report import format_table, geometric_mean

from conftest import emit

DESIGNS = {
    "2p-conventional": conventional_lsq(ports=2),
    "4p-conventional": conventional_lsq(ports=4),
    "2p-128-flat": conventional_lsq(ports=2, lq_entries=128,
                                    sq_entries=128),
    "1p-techniques": techniques_lsq(ports=1),
    "2p-segmented": segmented_lsq(ports=2),
    "1p-all-techniques": full_techniques_lsq(ports=1),
}


def _pareto(runner):
    base_lsq = DESIGNS["2p-conventional"]
    base = runner.run_lsq_suite(base_lsq)
    rows = []
    for label, lsq in DESIGNS.items():
        results = runner.run_lsq_suite(lsq)
        ipc_ratio = geometric_mean(
            [results[b].ipc / base[b].ipc for b in results])
        energy_ratio = geometric_mean(
            [search_energy(results[b].stats, lsq)
             / max(search_energy(base[b].stats, base_lsq), 1e-9)
             for b in results])
        sample = next(iter(results))
        row = pareto_row(label, results[sample].stats, lsq,
                         base[sample].stats, base_lsq)
        row["speedup"] = f"{(ipc_ratio - 1) * 100:+.1f}%"
        row["search-energy"] = f"{energy_ratio:.2f}x"
        rows.append(row)
    return rows


def test_complexity_pareto(benchmark, runner):
    rows = benchmark.pedantic(lambda: _pareto(runner), rounds=1,
                              iterations=1)
    headers = list(rows[0])
    emit("extension_complexity_pareto", format_table(
        headers, [[row[h] for h in headers] for row in rows],
        title="Extension: performance vs design complexity "
              "(suite geomeans; area/cycle-time/energy relative to the "
              "2-ported conventional base)"))
    assert rows
