"""Figure 10 — both bandwidth techniques across port counts

Regenerates Figure 10 (1p/2p/4p with and without the techniques) via :func:`repro.harness.figures.fig10_combined_ports`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/fig10.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_fig10(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.fig10_combined_ports(runner), rounds=1, iterations=1)
    emit("fig10", result.format())
    assert result.rows
