"""Figure 12 — all three techniques on base and scaled processors

Regenerates Figure 12 (1-ported all-techniques LSQ vs 2-ported conventional) via :func:`repro.harness.figures.fig12_all_techniques`.
Run with ``-s`` to see the table; it is also written to
``benchmarks/results/fig12.txt``.
"""

from repro.harness import figures

from conftest import emit


def test_fig12(benchmark, runner):
    result = benchmark.pedantic(
        lambda: figures.fig12_all_techniques(runner), rounds=1, iterations=1)
    emit("fig12", result.format())
    assert result.rows
