"""Extension: seed-stability of the headline result.

Synthetic traces are the only stochastic input to a run.  This bench
re-rolls the generator seed and reports the headline Figure 10/12
speedup (1-ported all-techniques vs 2-ported conventional) as
mean ± half-range over the seeds, confirming the conclusions are not an
artifact of one particular trace instance.
"""

from dataclasses import replace

from repro.config import base_machine, conventional_lsq, full_techniques_lsq
from repro.harness.experiment import confidence
from repro.stats.report import format_table

from conftest import emit

BENCHES = ("gzip", "vortex", "mgrid", "equake")
SEEDS = (0, 1, 2)


def _sweep(runner):
    rows = []
    base_machine_cfg = replace(base_machine(), lsq=conventional_lsq(ports=2))
    tech_machine = replace(base_machine(), lsq=full_techniques_lsq(ports=1))
    for bench in BENCHES:
        base_runs = runner.run_seeds(bench, base_machine_cfg, SEEDS)
        tech_runs = runner.run_seeds(bench, tech_machine, SEEDS)
        speedups = [t.ipc / b.ipc - 1
                    for t, b in zip(tech_runs, base_runs)]
        mean, spread = confidence(speedups)
        rows.append([bench, f"{mean * 100:+.1f}%", f"+/-{spread * 100:.1f}pt",
                     " ".join(f"{s * 100:+.0f}" for s in speedups)])
    return rows


def test_seed_stability(benchmark, ablation_runner):
    rows = benchmark.pedantic(lambda: _sweep(ablation_runner), rounds=1,
                              iterations=1)
    emit("extension_seed_stability", format_table(
        ["bench", "mean speedup", "spread", "per-seed"], rows,
        title=f"Extension: 1p all-techniques vs 2p conventional across "
              f"generator seeds {SEEDS}"))
    assert rows
