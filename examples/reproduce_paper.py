"""Regenerate the paper's tables and figures from the command line.

Usage::

    python examples/reproduce_paper.py              # list experiments
    python examples/reproduce_paper.py fig10        # one experiment
    python examples/reproduce_paper.py all          # everything

Environment:

``REPRO_BENCH_INSTRUCTIONS`` — trace length per benchmark (default 6000).
``REPRO_BENCH_SUBSET``       — comma-separated benchmark subset.
"""

import os
import sys
import time

from repro.harness import ExperimentRunner, figures
from repro.workload import ALL_BENCHMARKS


def main() -> None:
    if len(sys.argv) < 2:
        print("Available experiments:")
        for key, fn in figures.ALL_EXPERIMENTS.items():
            summary = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {key:8s} {summary}")
        print("\nUsage: python examples/reproduce_paper.py "
              "<experiment|all> [more...]")
        return

    names = sys.argv[1:]
    if names == ["all"]:
        names = list(figures.ALL_EXPERIMENTS)

    subset = os.environ.get("REPRO_BENCH_SUBSET", "")
    benchmarks = (tuple(s.strip() for s in subset.split(",") if s.strip())
                  or ALL_BENCHMARKS)
    runner = ExperimentRunner(benchmarks=benchmarks)

    for name in names:
        if name not in figures.ALL_EXPERIMENTS:
            print(f"unknown experiment {name!r}; choose from "
                  f"{sorted(figures.ALL_EXPERIMENTS)}")
            continue
        started = time.time()
        result = figures.ALL_EXPERIMENTS[name](runner)
        print(f"\n{result.format()}")
        print(f"[{name}: {time.time() - started:.1f}s]")


if __name__ == "__main__":
    main()
