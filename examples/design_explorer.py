"""Design-space exploration: sweep LSQ parameters on one workload.

The paper fixes a handful of design points; this example shows how a
micro-architect would use the library to explore the neighbourhood —
ports x load-buffer size x segmentation — and find the cheapest design
within a target slowdown of the best.

Usage::

    python examples/design_explorer.py [benchmark] [instructions]
"""

import sys
from dataclasses import replace

from repro import (
    LoadQueueSearchMode,
    LsqConfig,
    PredictorMode,
    base_machine,
    generate_trace,
    simulate,
)
from repro.stats.report import format_table


def design_points():
    """The sweep: every combination a designer might shortlist."""
    for ports in (1, 2):
        for buffer_entries in (0, 2, 4):
            for segments in (1, 4):
                lq_search = (LoadQueueSearchMode.LOAD_BUFFER
                             if buffer_entries else
                             LoadQueueSearchMode.SEARCH_LQ)
                yield LsqConfig(
                    search_ports=ports,
                    predictor=PredictorMode.PAIR,
                    lq_search=lq_search,
                    load_buffer_entries=buffer_entries,
                    segments=segments,
                    segment_entries=28 if segments > 1 else 32,
                )


def describe(lsq: LsqConfig) -> str:
    parts = [f"{lsq.search_ports}p"]
    parts.append(f"buf{lsq.load_buffer_entries}"
                 if lsq.lq_search is LoadQueueSearchMode.LOAD_BUFFER
                 else "lq-search")
    parts.append(f"{lsq.segments}x{lsq.segment_entries}"
                 if lsq.segmented else "flat")
    return "/".join(parts)


def cam_cost(lsq: LsqConfig) -> int:
    """A toy complexity metric: ports x largest-CAM-searched-per-cycle."""
    segment = lsq.segment_entries if lsq.segmented else lsq.lq_entries
    return lsq.search_ports * segment


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "equake"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 6000
    trace = generate_trace(benchmark, n_instructions=n)

    baseline = simulate(trace, base_machine()).ipc
    rows = []
    best_ipc = 0.0
    for lsq in design_points():
        result = simulate(trace, replace(base_machine(), lsq=lsq))
        best_ipc = max(best_ipc, result.ipc)
        rows.append((describe(lsq), result.ipc, cam_cost(lsq)))

    rows.sort(key=lambda r: -r[1])
    table = [[name, f"{ipc:.2f}", f"{(ipc / baseline - 1) * 100:+.1f}%",
              cost] for name, ipc, cost in rows]
    print(format_table(
        ["design", "IPC", "vs 2p-conv", "CAM cost"], table,
        title=f"LSQ design sweep on '{benchmark}' "
              f"(baseline 2p conventional = {baseline:.2f} IPC)"))

    cheap = min((r for r in rows if r[1] >= 0.98 * best_ipc),
                key=lambda r: r[2])
    print(f"\nCheapest design within 2% of the best: {cheap[0]} "
          f"(IPC {cheap[1]:.2f}, CAM cost {cheap[2]})")


if __name__ == "__main__":
    main()
