"""The title claim, end to end: performance per unit of design complexity.

Runs one benchmark across the paper's design points and combines the
measured IPC with the first-order CAM complexity model
(:mod:`repro.core.complexity`) and the pressure-breakdown analysis
(:mod:`repro.stats.analysis`) — the workflow an architect would follow
to justify the simpler design.

Usage::

    python examples/complexity_report.py [benchmark] [instructions]
"""

import sys
from dataclasses import replace

from repro import (
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    generate_trace,
    segmented_lsq,
    simulate,
    techniques_lsq,
)
from repro.core import search_energy, static_complexity
from repro.stats import search_pressure
from repro.stats.report import format_table


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "equake"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 8000
    trace = generate_trace(benchmark, n_instructions=n)

    designs = {
        "2p conventional": conventional_lsq(ports=2),
        "4p conventional": conventional_lsq(ports=4),
        "1p + predictor + buffer": techniques_lsq(ports=1),
        "2p segmented 4x28": segmented_lsq(ports=2),
        "1p all techniques": full_techniques_lsq(ports=1),
    }

    base_lsq = designs["2p conventional"]
    base = simulate(trace, replace(base_machine(), lsq=base_lsq))
    base_energy = search_energy(base.stats, base_lsq)

    rows = []
    worst_pressure = {}
    for label, lsq in designs.items():
        result = simulate(trace, replace(base_machine(), lsq=lsq))
        complexity = static_complexity(lsq, baseline=base_lsq)
        energy = search_energy(result.stats, lsq) / max(base_energy, 1e-9)
        rows.append([
            label,
            f"{(result.ipc / base.ipc - 1) * 100:+.1f}%",
            f"{complexity.area:.2f}x",
            f"{complexity.cycle_time:.2f}x",
            f"{energy:.2f}x",
            f"{complexity.entries_per_search}e/{complexity.ports}p",
        ])
        worst_pressure[label] = search_pressure(result.stats).dominant()

    print(format_table(
        ["design", "speedup", "CAM area", "cycle time", "search energy",
         "per-search"],
        rows,
        title=f"Performance vs design complexity on '{benchmark}' "
              f"({n} instructions; all values relative to 2p conventional)"))
    print("\nDominant pressure source per design:")
    for label, source in worst_pressure.items():
        print(f"  {label:24s} {source}")
    print("\nThe paper's claim in one table: the one-ported designs sit at"
          "\na fraction of the base CAM's area, cycle-time pressure and"
          "\nsearch energy — while matching or beating its performance.")


if __name__ == "__main__":
    main()
