"""Bring your own workload: define a custom benchmark profile.

The paper evaluates on SPEC2K, but the library's workload model is
open: any :class:`~repro.workload.BenchmarkProfile` describes a
synthetic program.  This example sketches an OLTP-ish workload —
pointer-chasing index lookups, store-heavy log writes with immediate
reloads, and branchy control — and asks whether the paper's one-ported
LSQ still holds up on it.

Usage::

    python examples/custom_workload.py [instructions]
"""

import sys
from dataclasses import replace

from repro import (
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    generate_trace,
    simulate,
    techniques_lsq,
)
from repro.workload.spec2k import KB, MB, BenchmarkProfile

OLTP = BenchmarkProfile(
    name="oltp-toy", suite="INT",
    # No paper targets for a custom workload; fill with zeros/estimates.
    base_ipc=1.0, ooo_loads=1.0, lq_occupancy=24, sq_occupancy=12,
    # Store-heavy, branchy mix.
    load_frac=0.24, store_frac=0.16, branch_frac=0.16, fp_frac=0.0,
    dep_distance=4.0, unroll=2, kernel_size=80, num_kernels=3, loop_trip=24,
    computed_addr_frac=0.35,
    # B-tree-ish index walk plus a large cold heap.
    l1_footprint=128 * KB, l2_footprint=8 * MB,
    cold_frac=0.04, cold_period=3,
    chase_loads=1, chase_footprint=4 * MB, chase_period=4,
    # Log record written then immediately re-read (commit path).
    pair_frac=0.25, pair_noise=0.10, pair_group_size=2,
    branch_noise=0.08,
)


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 8000
    trace = generate_trace(OLTP, n_instructions=n)
    mix = trace.stats()
    print(f"Custom workload '{OLTP.name}': {len(trace)} instructions, "
          f"{mix.load_fraction:.0%} loads / {mix.store_fraction:.0%} stores "
          f"/ {mix.branch_fraction:.0%} branches\n")

    configs = {
        "2p conventional": conventional_lsq(ports=2),
        "1p conventional": conventional_lsq(ports=1),
        "1p pair+buffer": techniques_lsq(ports=1),
        "1p all techniques": full_techniques_lsq(ports=1),
    }
    base = None
    for label, lsq in configs.items():
        result = simulate(trace, replace(base_machine(), lsq=lsq))
        base = base or result.ipc
        stats = result.stats
        print(f"{label:18s} IPC {result.ipc:5.2f} "
              f"({(result.ipc / base - 1) * 100:+5.1f}%)  "
              f"searches SQ/LQ {stats.sq_searches:5d}/{stats.lq_searches:5d}  "
              f"fwd {stats.forwarded_loads:4d}  "
              f"squash {stats.violation_squashes:3d}")

    print("\nEven on a store-heavy, branchy workload outside SPEC2K the"
          "\nsingle-ported techniques configuration tracks the 2-ported"
          "\nconventional design; the searches column shows why.")


if __name__ == "__main__":
    main()
