"""Quickstart: compare a one-ported LSQ using the paper's techniques
against the conventional two-ported design on one benchmark.

Usage::

    python examples/quickstart.py [benchmark] [instructions]

Defaults: mgrid, 6000 instructions.
"""

import sys
from dataclasses import replace

from repro import (
    base_machine,
    conventional_lsq,
    generate_trace,
    simulate,
    techniques_lsq,
)


def main() -> None:
    benchmark = sys.argv[1] if len(sys.argv) > 1 else "mgrid"
    n = int(sys.argv[2]) if len(sys.argv) > 2 else 6000

    print(f"Generating a {n}-instruction synthetic '{benchmark}' trace...")
    trace = generate_trace(benchmark, n_instructions=n)
    mix = trace.stats()
    print(f"  {mix.load_fraction:.0%} loads, {mix.store_fraction:.0%} stores, "
          f"{mix.branch_fraction:.0%} branches")

    configs = {
        "2-ported conventional (base)": conventional_lsq(ports=2),
        "1-ported conventional": conventional_lsq(ports=1),
        "1-ported + pair predictor + load buffer": techniques_lsq(ports=1),
    }

    base_ipc = None
    for label, lsq in configs.items():
        result = simulate(trace, replace(base_machine(), lsq=lsq))
        stats = result.stats
        if base_ipc is None:
            base_ipc = result.ipc
        rel = (result.ipc / base_ipc - 1) * 100
        print(f"\n{label}")
        print(f"  IPC                 {result.ipc:6.2f}  ({rel:+.1f}% vs base)")
        print(f"  SQ searches         {stats.sq_searches:6d}")
        print(f"  LQ searches         {stats.lq_searches:6d}")
        print(f"  forwarded loads     {stats.forwarded_loads:6d}")
        print(f"  order violations    {stats.violation_squashes:6d}")

    print("\nThe paper's claim: with the store-load pair predictor and the"
          "\nload buffer, one search port is enough to match or beat the"
          "\ntwo-ported conventional load/store queue.")


if __name__ == "__main__":
    main()
