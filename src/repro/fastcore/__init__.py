"""``repro.fastcore`` — the ``backend=fast`` simulation engine.

An opt-in second engine for the cycle loop, selected via
``MachineConfig.backend``.  Same six-stage model, same modeled charges,
bit-identical ``SimStats`` — enforced by the golden-parity suite and the
``fast-parity`` CI job — but with struct-of-arrays hot-path state and
O(1) idle-cycle skipping.  See :mod:`repro.fastcore.engine` and the
"Backends" section of ``docs/PERFORMANCE.md``.
"""

from repro.fastcore.engine import FastProcessor

__all__ = ["FastProcessor"]
