"""The ``backend=fast`` engine: one fused, batched cycle loop.

:class:`FastProcessor` replays the exact six-stage cycle of
:class:`repro.pipeline.processor.Processor` — commit, complete, memory,
issue, dispatch, fetch, occupancy sample — but flattens the per-stage
method calls into a single loop body with struct-of-arrays state on the
hot path:

* the memory stage keeps three parallel columns — ``array('q')`` seq
  and attempt-cycle columns plus an instruction list — instead of a
  list of ``[seq, inst, attempt]`` records, so retry scans touch packed
  integers and the common "not ripe yet" case never loads the object;
* the register scoreboard (last-writer tracking) is a dense
  64-slot list indexed by architectural register instead of a dict;
* data-cache port admission is mirrored once per cycle into a local
  ``d_free`` counter, so loads that would lose arbitration charge their
  ``dcache_port_stalls`` and retry without recomputing search paths
  (everything :meth:`~repro.core.lsq.LoadStoreQueue.try_execute_load`
  does before its own ``d_ports.available()`` check is pure);
* cycles in which no pipeline state can change are skipped in O(1) by
  an event horizon — the minimum over in-flight completion times,
  memory-stage retry times, the fetch stall, ``max_cycles`` and the
  deadlock watchdog — while the model is still charged for every
  skipped cycle exactly as the per-cycle loop would have charged it
  (blocked-load stalls, the dispatch first-blocker counter, queue
  occupancy integrals, NILP out-of-order residency).

Bit-identical :class:`~repro.stats.counters.SimStats` is the contract:
the 24-digest golden-parity suite, the litmus battery and the validate
oracle all run under ``backend=fast``, and the ``fast-parity`` CI job
diffs digests between backends on every preset.

Fallback: an attached checker, observer or pipeline tracer needs
per-cycle callbacks with complete per-object state, and a
fault-injection-patched LSQ changes semantics out from under the fused
loop — both route :meth:`FastProcessor.run` to the parent per-cycle
engine, which stays the reference implementation.
"""

from __future__ import annotations

from array import array
from bisect import bisect_left
from heapq import heappop, heappush
from typing import Dict, List, Optional, Set, Tuple

from repro.config import LoadQueueSearchMode, PredictorMode
from repro.core.hotpath import hotpath
from repro.core.load_buffer import LoadBuffer, NilpTracker
from repro.core.lsq import LoadStoreQueue, Retry, Violation
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.functional_units import _USES_FP_POOL
from repro.pipeline.processor import Processor, SimulationResult
from repro.workload.isa import NO_REG, NUM_ARCH_REGS, OP_FLAGS
from repro.workload.trace import Trace

#: Components any stage may touch directly (sim-lint SIM-M registry):
#: the observability layer, like stats/tracer, is write-from-anywhere.
SIM_LINT_INTERFACES = frozenset({"obs"})


def _lsq_is_patched(lsq: LoadStoreQueue) -> bool:
    """True when fault injection (or anything else) rebound LSQ behaviour.

    The fault harness patches bound methods onto LSQ *instances*
    (``lsq._sq_search = ...``), swaps ``lsq.nilp`` for a proxy, or wraps
    ``lsq.load_buffer.insert``.  Any of those invalidates the fused
    loop's assumptions, so the caller must fall back to the per-cycle
    engine.
    """
    # Order-insensitive existence check: "is any attribute a patched
    # callable" is the same answer in every iteration order.
    for value in vars(lsq).values():  # sim-lint: ignore[SIM-D002]
        if callable(value):
            return True
    if type(lsq.nilp) is not NilpTracker:
        return True
    if type(lsq.load_buffer) is not LoadBuffer:
        return True
    try:
        buffer_attrs = vars(lsq.load_buffer)
    except TypeError:
        return True
    for value in buffer_attrs.values():  # sim-lint: ignore[SIM-D002]
        if callable(value):
            return True
    return False


class FastProcessor(Processor):
    """Drop-in :class:`Processor` with the fused ``backend=fast`` loop.

    Construction is identical to the parent (the components themselves —
    LSQ, ROB, issue queue, memory hierarchy — are shared code); only the
    driver differs.  ``run()`` decides once, up front, whether the fast
    loop applies, so a single simulation never mixes engines.
    """

    def run(self, trace: Trace, max_cycles: Optional[int] = None,
            warm: bool = True) -> SimulationResult:
        """Simulate the whole trace (or until ``max_cycles``)."""
        if (self.checker is not None or self.obs is not None
                or self.tracer is not None
                or type(self.lsq) is not LoadStoreQueue
                or _lsq_is_patched(self.lsq)):
            # Checkers/observers/tracers need per-cycle callbacks; a
            # patched LSQ needs the reference semantics.  The parent
            # engine is bit-identical, just slower.
            return super().run(trace, max_cycles=max_cycles, warm=warm)
        if warm:
            self._warm(trace)
        self._trace = trace
        return self._fast_loop(trace, max_cycles)

    # ------------------------------------------------------------------
    # warm-up
    # ------------------------------------------------------------------

    def _warm(self, trace: Trace) -> None:
        """``warm_caches`` + ``warm_predictor`` fused into one pass.

        The two warmers touch disjoint state (memory hierarchy vs.
        dependence predictor) and each preserves its own access order
        under the fusion, so the result is bit-identical to the parent's
        two sequential passes at half the trace iterations.
        """
        memory = self.memory
        predictor = self.lsq.predictor
        is_cold = trace.is_cold_address
        seen_code: Set[int] = set()
        seen_data: Set[int] = set()
        recent_stores: Dict[int, Tuple[int, int]] = {}
        window = 256
        for index, inst in enumerate(trace):
            block = inst.pc >> 5
            if block not in seen_code:
                seen_code.add(block)
                memory.instruction_access(inst.pc)
            flags = OP_FLAGS[inst.op]
            if flags[2] and not is_cold(inst.addr):
                dblock = inst.addr >> 5
                if dblock not in seen_data:
                    seen_data.add(dblock)
                    memory.data_access(inst.addr)
            if flags[1]:        # store
                recent_stores[inst.addr] = (index, inst.pc)
            elif flags[0]:      # load
                hit = recent_stores.get(inst.addr)
                if hit is not None and index - hit[0] <= window:
                    predictor.train_violation(inst.pc, hit[1])

    # ------------------------------------------------------------------
    # the fused loop
    # ------------------------------------------------------------------

    @hotpath
    def _fast_loop(self, trace: Trace,
                   max_cycles: Optional[int]) -> SimulationResult:
        machine = self.machine
        core = machine.core
        stats = self.stats
        lsq = self.lsq
        rob = self.rob
        iq = self.iq
        regfile = self.regfile
        memory = self.memory

        commit_width = self._commit_width
        issue_width = self._issue_width
        fetch_width = self._fetch_width
        buffer_cap = 2 * fetch_width
        max_issue_attempts = issue_width * 3
        watchdog = core.watchdog_cycles
        mispredict_penalty = core.branch_mispredict_penalty
        redirect_bubble = mispredict_penalty - 2
        if redirect_bubble < 0:
            redirect_bubble = 0

        rob_entries = rob._entries
        rob_capacity = rob.capacity
        iq_ready = iq._ready
        iq_capacity = iq.capacity
        events = self._events
        fetch_buffer = self._fetch_buffer
        #: Dense last-writer scoreboard: one slot per architectural
        #: register replaces the dict the reference engine hashes into.
        writers: List[Optional[DynInst]] = [None] * NUM_ARCH_REGS

        # Memory-stage columns (struct of arrays, seq-sorted): packed
        # attempt cycles make the per-cycle ripeness scan branch on C
        # integers, and the seq column bisects for insert/squash.
        ms_seqs = array("q")
        ms_att = array("q")
        ms_inst: List[DynInst] = []

        lq = lsq.lq
        sq = lsq.sq
        nilp = lsq.nilp
        lsq_config = lsq.config
        unified = lsq_config.unified_queue
        lq_mode = lsq_config.lq_search
        inval_mode = lq_mode is LoadQueueSearchMode.INVALIDATION
        mode_lb = lq_mode is LoadQueueSearchMode.LOAD_BUFFER
        mode_in_order = (
            lq_mode is LoadQueueSearchMode.IN_ORDER
            or lq_mode is LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH)
        mode_nilp = mode_lb or mode_in_order
        perfect_pred = lsq_config.predictor is PredictorMode.PERFECT
        ss_ordering = lsq.ss_config.store_store_ordering
        # ``lsq.squash_from`` rebinds ``_membars``; recover() refreshes
        # this alias.  ``_stores`` / queue orders mutate only in place.
        membars = lsq._membars
        stores_get = lsq._stores.get
        load_buffer = lsq.load_buffer
        lb_capacity = load_buffer.capacity
        nilp_seq = nilp.nilp_seq
        lq_order = lq._order
        sq_order = sq._order
        lq_ports_begin = lsq.lq_ports.begin_cycle
        sq_ports_begin = lsq.sq_ports.begin_cycle
        load_blocked = lsq.load_blocked
        store_blocked = lsq.store_blocked
        membar_blocks = lsq._membar_blocks
        store_set_blocker = lsq._store_set_blocker
        store_set_order_blocks = lsq._store_set_order_blocks
        try_execute_load = lsq.try_execute_load
        try_execute_store = lsq.try_execute_store
        try_execute_membar = lsq.try_execute_membar
        try_commit_store = lsq.try_commit_store
        commit_load = lsq.commit_load
        can_allocate = lsq.can_allocate
        lsq_allocate = lsq.allocate
        on_membar_dispatch = lsq.on_membar_dispatch
        lsq_squash_from = lsq.squash_from
        poll_invalidation = lsq.poll_invalidation
        predictor_maybe_clear = lsq.predictor.maybe_clear
        # PairPredictor.maybe_clear is a no-op unless an interval is set
        # (and the perfect predictor's always is), so gate the call once.
        clear_gate = (getattr(lsq.predictor, "clear_interval", 0) or 0) > 0
        # Flat-CAM (one segment per side, separate port pools) admission
        # mirror: with single-segment paths the only admission outcome
        # besides "ok" is "busy_now", so the walk can charge the port
        # stall and retry without entering try_execute_load at all.
        # should_search / _oracle_match are pure, so pre-asking is free.
        flat_ports = (sq.num_segments == 1 and lq.num_segments == 1
                      and lsq.sq_ports is not lsq.lq_ports)
        flat_alloc = sq.num_segments == 1 and lq.num_segments == 1
        sq_seqs0 = sq._seg_seqs[0]
        lq_seqs0 = lq._seg_seqs[0]
        sq_seg0 = sq._segments[0]
        lq_seg0 = lq._segments[0]
        sq_seg_cap = sq.segment_entries
        lq_seg_cap = lq.segment_entries
        sq_used_map = lsq.sq_ports._used
        lq_used_map = lsq.lq_ports._used
        search_ports = lsq.sq_ports.ports
        need_lq_search = (
            lq_mode is LoadQueueSearchMode.SEARCH_LQ
            or lq_mode is LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH)
        pred_conventional = (lsq_config.predictor
                             is PredictorMode.CONVENTIONAL)
        should_search = lsq.predictor.should_search
        oracle_match = lsq._oracle_match
        detection_at_commit = lsq_config.detection_at_commit
        d_meter = memory.d_ports
        d_ports_n = d_meter.ports
        instruction_access = memory.instruction_access
        predict_and_update = self.branch_predictor.predict_and_update
        fus = self.fus
        int_units = fus.int_units
        fp_units = fus.fp_units
        uses_fp = _USES_FP_POOL
        can_rename = regfile.can_rename
        regfile_rename = regfile.rename
        release_reg = regfile.release

        # Deferred-flush accumulators: per-cycle occupancy integrals and
        # functional-unit tallies live in locals and land on the shared
        # stats objects in sync_all() (loop exit, deadlock, fallthrough).
        occ_lq = 0
        occ_sq = 0
        occ_ooo = 0
        fu_int_issued = 0
        fu_fp_issued = 0
        fu_structural = 0
        fu_sync_cycle = fus._cycle
        fu_sync_int = fus._int_used
        fu_sync_fp = fus._fp_used

        insts = trace._instructions
        trace_len = len(insts)
        trace_name = trace.name

        squashed_state = InstState.SQUASHED
        complete_state = InstState.COMPLETE
        dispatched_state = InstState.DISPATCHED
        issued_state = InstState.ISSUED
        executing_state = InstState.EXECUTING
        committed_state = InstState.COMMITTED

        cycle = self.cycle
        seq = self._seq
        fetch_index = self._fetch_index
        fetch_stall = self._fetch_stall_until
        last_fetch_block = self._last_fetch_block
        last_commit = self._last_commit_cycle
        redirect = self._redirect_branch
        # Probe the idle-skip only after a cycle in which nothing
        # happened: in busy phases the gate costs one comparison, in
        # stall windows the first quiet cycle arms it.
        quiet_prev = False

        def recover(violation: Violation) -> None:
            # Mirror of Processor._recover against the loop-local state
            # (writers scoreboard, memory-stage columns, fetch locals).
            nonlocal fetch_index, fetch_stall, redirect, last_fetch_block
            nonlocal membars
            vseq = violation.squash_seq
            lsq_squash_from(vseq)
            membars = lsq._membars
            squashed = rob.squash_from(vseq)   # youngest first
            in_queue = 0
            for sinst in squashed:
                dest = sinst.inst.dest
                if dest != NO_REG:
                    if writers[dest] is sinst:
                        writers[dest] = sinst.prev_writer
                    release_reg(dest)
                if sinst.issue_cycle < 0:
                    in_queue += 1
            iq.squash(in_queue)
            cut = bisect_left(ms_seqs, vseq)
            del ms_seqs[cut:]
            del ms_att[cut:]
            del ms_inst[cut:]
            fetch_buffer.clear()
            if redirect is not None and redirect.seq >= vseq:
                redirect = None
            if squashed:
                fetch_index = squashed[-1].trace_index
            penalty = mispredict_penalty + violation.extra_penalty
            stall = cycle + penalty
            if stall > fetch_stall:
                fetch_stall = stall
            last_fetch_block = -1

        def sync_all() -> None:
            # Flush the deferred accumulators, then write the loop state
            # back onto the Processor fields (diagnostics / bundles read
            # the same attributes the reference engine maintains).
            fus.stats.int_issued += fu_int_issued
            fus.stats.fp_issued += fu_fp_issued
            fus.stats.structural_stalls += fu_structural
            fus._cycle = fu_sync_cycle
            fus._int_used = fu_sync_int
            fus._fp_used = fu_sync_fp
            stats.lq_occupancy_cycles += occ_lq
            stats.sq_occupancy_cycles += occ_sq
            stats.ooo_load_cycles += occ_ooo
            self._sync(cycle, seq, fetch_index, fetch_stall,
                       last_fetch_block, last_commit, redirect,
                       ms_seqs, ms_att, ms_inst)

        while fetch_index < trace_len or rob_entries or fetch_buffer:
            # -------------------------------------------------- idle skip
            # A cycle is skippable iff every stage is provably quiescent:
            # nothing ready to issue, nothing completing, the ROB head
            # not committable, every ripe memory-stage entry blocked for
            # a reason that cannot clear on its own, and fetch+dispatch
            # blocked.  All per-cycle charges such a cycle would have
            # made are constant across the window, so they batch.
            if quiet_prev and not iq_ready and not inval_mode \
                    and cycle not in events \
                    and (cycle < fetch_stall or redirect is not None
                         or fetch_index >= trace_len
                         or len(fetch_buffer) >= buffer_cap):
                head0 = rob_entries[0] if rob_entries else None
                if head0 is None or head0.state is not complete_state:
                    horizon = last_commit + watchdog + 1
                    if max_cycles is not None and max_cycles < horizon:
                        horizon = max_cycles
                    blocker = -1
                    skippable = True
                    if fetch_buffer:
                        inst0 = fetch_buffer[0]
                        if len(rob_entries) >= rob_capacity:
                            blocker = 0
                        elif iq._occupancy >= iq_capacity:
                            blocker = 1
                        elif inst0.is_memory and not can_allocate(inst0):
                            blocker = 2 if inst0.is_load else 3
                        elif not can_rename(inst0.inst.dest):
                            blocker = 4
                        else:
                            skippable = False
                    if skippable:
                        n_lbfull = 0
                        n_sswait = 0
                        probe = 0
                        n_entries = len(ms_seqs)
                        while probe < n_entries:
                            att = ms_att[probe]
                            if att > cycle:
                                if att < horizon:
                                    horizon = att
                                probe += 1
                                continue
                            p_inst = ms_inst[probe]
                            if p_inst.state is squashed_state:
                                probe += 1
                                continue
                            if p_inst.is_load:
                                reason = load_blocked(p_inst)
                                if reason is None:
                                    skippable = False
                                    break
                                if reason == "load_buffer_full":
                                    n_lbfull += 1
                                elif reason == "store_set":
                                    n_sswait += 1
                            elif p_inst.is_store:
                                if store_blocked(p_inst) is None:
                                    skippable = False
                                    break
                            else:
                                # A ripe membar always attempts.
                                skippable = False
                                break
                            probe += 1
                    if skippable:
                        if events:
                            ev_min = min(events)
                            if ev_min < horizon:
                                horizon = ev_min
                        if (redirect is None and fetch_index < trace_len
                                and cycle < fetch_stall < horizon):
                            horizon = fetch_stall
                        span = horizon - cycle
                        if span > 1:
                            if blocker == 0:
                                stats.rob_full_stalls += span
                            elif blocker == 1:
                                stats.iq_full_stalls += span
                            elif blocker == 2:
                                stats.lq_full_stalls += span
                            elif blocker == 3:
                                stats.sq_full_stalls += span
                            elif blocker == 4:
                                regfile.rename_stalls += span
                            if n_lbfull:
                                stats.load_buffer_full_stalls += \
                                    n_lbfull * span
                            if n_sswait:
                                stats.store_set_waits += n_sswait * span
                            if unified:
                                # live_loads prices the model, not the
                                # host shortcut — see LoadStoreQueue.
                                # sample(), which this batches.
                                loads = lq.live_loads
                                occ_lq += loads * span  # sim-lint: ignore[SIM-T001]
                                occ_sq += (len(lq_order) - loads) * span  # sim-lint: ignore[SIM-T001]
                            else:
                                occ_lq += len(lq_order) * span
                                occ_sq += len(sq_order) * span
                            occ_ooo += nilp.ooo_in_flight * span
                            cycle = horizon
                            if max_cycles is not None \
                                    and cycle >= max_cycles:
                                break
                            if cycle - last_commit > watchdog:
                                sync_all()
                                from repro.validate.bundle import (
                                    SimulationDeadlock, build_bundle)
                                raise SimulationDeadlock(
                                    f"no commit for {watchdog} cycles at "
                                    f"cycle {cycle} "
                                    f"(trace {trace_name!r})",
                                    bundle=build_bundle(self))
                            continue

            # ---------------------------------------------------- 1 cycle
            quiet = True
            lq_ports_begin(cycle)
            sq_ports_begin(cycle)

            # -- commit ------------------------------------------------
            commits = 0
            while commits < commit_width and rob_entries:
                head = rob_entries[0]
                if head.state is not complete_state:
                    break
                quiet = False
                violation: Optional[Violation] = None
                if head.is_store:
                    commit_outcome = try_commit_store(head, cycle)
                    if isinstance(commit_outcome, Retry):
                        break
                    violation = commit_outcome.violation
                elif head.is_load:
                    commit_load(head)
                rob_entries.popleft()
                head.state = committed_state
                release_reg(head.inst.dest)
                stats.committed += 1
                if head.is_load:
                    stats.committed_loads += 1
                elif head.is_store:
                    stats.committed_stores += 1
                elif head.is_branch:
                    stats.committed_branches += 1
                elif head.is_membar:
                    stats.committed_membars += 1
                last_commit = cycle
                if clear_gate:
                    predictor_maybe_clear(stats.committed)
                commits += 1
                if violation is not None:
                    recover(violation)
                    break

            # -- complete / writeback ----------------------------------
            completed = events.pop(cycle, None)
            if completed is not None:
                quiet = False
                for done in completed:
                    if done.state is squashed_state:
                        continue
                    done.state = complete_state
                    done.complete_cycle = cycle
                    for consumer in done.consumers:
                        consumer_state = consumer.state
                        if consumer_state is squashed_state:
                            continue
                        consumer.pending_sources -= 1
                        if (consumer.pending_sources == 0
                                and consumer_state is dispatched_state):
                            heappush(iq_ready, (consumer.seq, consumer))
                    if done is redirect:
                        redirect = None
                        stall = cycle + redirect_bubble
                        if stall > fetch_stall:
                            fetch_stall = stall

            # -- memory stage ------------------------------------------
            if inval_mode:
                invalidation = poll_invalidation(cycle)
                if invalidation is not None:
                    quiet = False
                    recover(invalidation)
            if ms_seqs:
                # Local mirror of d_ports.available(): loads that would
                # lose data-cache arbitration fail fast, before the
                # (pure) search-path computation in try_execute_load.
                if d_meter._cycle == cycle:
                    d_free = d_ports_n - d_meter._used
                elif d_ports_n > 0:
                    d_free = d_ports_n
                else:
                    d_free = 1   # a stale meter admits the first request
                if flat_ports:
                    sq_free = search_ports - sq_used_map.get((0, cycle), 0)
                    lq_free = search_ports - lq_used_map.get((0, cycle), 0)
                # lsq.load_blocked is inlined below with the NILP state
                # cached per walk: the pointer and the buffer occupancy
                # change only when a load executes (which invalidates
                # the cache) — every blocked entry between executions
                # sees the identical answer the method would compute.
                ns: Optional[int] = None
                ns_fresh = False
                lb_full = False
                index = 0
                n_entries = len(ms_seqs)
                while index < n_entries:
                    if ms_att[index] > cycle:
                        index += 1
                        continue
                    entry_inst = ms_inst[index]
                    if entry_inst.state is squashed_state:
                        del ms_seqs[index]
                        del ms_att[index]
                        del ms_inst[index]
                        n_entries -= 1
                        continue
                    if entry_inst.is_load:
                        # -- load_blocked: membar gate --
                        if membars and membar_blocks(entry_inst):
                            index += 1
                            continue
                        # -- load_blocked: store-set wait --
                        if perfect_pred:
                            if store_set_blocker(entry_inst) is not None:
                                stats.store_set_waits += 1
                                index += 1
                                continue
                        else:
                            ws = entry_inst.wait_store_seq
                            if ws is not None:
                                blocking = stores_get(ws)
                                if (blocking is not None
                                        and blocking.state
                                        is not squashed_state
                                        and not blocking.mem_executed
                                        and blocking.seq < entry_inst.seq):
                                    stats.store_set_waits += 1
                                    index += 1
                                    continue
                        # -- load_blocked: search-mode gate --
                        if mode_nilp:
                            if not ns_fresh:
                                ns = nilp_seq()
                                lb_full = (load_buffer._live
                                           >= lb_capacity)
                                ns_fresh = True
                            if ns is not None and ns < entry_inst.seq:
                                if mode_in_order:
                                    index += 1
                                    continue
                                if lb_full:
                                    stats.load_buffer_full_stalls += 1
                                    index += 1
                                    continue
                        quiet = False
                        if d_free <= 0:
                            stats.dcache_port_stalls += 1
                            ms_att[index] = cycle + 1
                            index += 1
                            continue
                        sq_take = False
                        lq_take = False
                        if flat_ports:
                            # Mirror of _admit_search for the flat CAM,
                            # in try_execute_load's exact gate order
                            # (d-port above, then SQ, then LQ).
                            entry_seq = entry_inst.seq
                            if pred_conventional:
                                need_sq = True
                            elif perfect_pred:
                                need_sq = oracle_match(entry_inst) \
                                    is not None
                            else:
                                need_sq = should_search(entry_inst)
                            if (need_sq and sq_seqs0
                                    and sq_seqs0[0] < entry_seq):
                                if sq_free <= 0:
                                    stats.sq_port_stalls += 1
                                    ms_att[index] = cycle + 1
                                    index += 1
                                    continue
                                sq_take = True
                            if (need_lq_search and lq_seqs0
                                    and lq_seqs0[-1] > entry_seq):
                                if lq_free <= 0:
                                    stats.lq_port_stalls += 1
                                    ms_att[index] = cycle + 1
                                    index += 1
                                    continue
                                lq_take = True
                        load_outcome = try_execute_load(entry_inst, cycle)
                        if type(load_outcome) is Retry:
                            ms_att[index] = load_outcome.next_cycle
                            index += 1
                            continue
                        d_free -= 1
                        if sq_take:
                            sq_free -= 1
                        if lq_take:
                            lq_free -= 1
                        ns_fresh = False   # the NILP / buffer moved
                        del ms_seqs[index]
                        del ms_att[index]
                        del ms_inst[index]
                        n_entries -= 1
                        entry_inst.state = executing_state
                        key = cycle + load_outcome.latency
                        bucket = events.get(key)
                        if bucket is None:
                            events[key] = [entry_inst]
                        else:
                            bucket.append(entry_inst)
                        if load_outcome.violation is not None:
                            recover(load_outcome.violation)
                            break
                    elif entry_inst.is_store:
                        # -- store_blocked, inlined --
                        if membars and membar_blocks(entry_inst):
                            index += 1
                            continue
                        if (ss_ordering and entry_inst.ssid is not None
                                and store_set_order_blocks(entry_inst)):
                            index += 1
                            continue
                        quiet = False
                        store_lq_take = False
                        if flat_ports and not detection_at_commit:
                            # Store address generation searches the LQ
                            # (store-load ordering); same flat-CAM
                            # admission mirror as the load side.
                            if (lq_seqs0
                                    and lq_seqs0[-1] > entry_inst.seq):
                                if lq_free <= 0:
                                    stats.lq_port_stalls += 1
                                    ms_att[index] = cycle + 1
                                    index += 1
                                    continue
                                store_lq_take = True
                        store_outcome = try_execute_store(entry_inst, cycle)
                        if type(store_outcome) is Retry:
                            ms_att[index] = store_outcome.next_cycle
                            index += 1
                            continue
                        if store_lq_take:
                            lq_free -= 1
                        del ms_seqs[index]
                        del ms_att[index]
                        del ms_inst[index]
                        n_entries -= 1
                        entry_inst.state = complete_state
                        entry_inst.complete_cycle = cycle
                        if store_outcome.violation is not None:
                            recover(store_outcome.violation)
                            break
                    else:  # memory barrier
                        quiet = False
                        membar_outcome = try_execute_membar(entry_inst,
                                                            cycle)
                        if type(membar_outcome) is Retry:
                            ms_att[index] = membar_outcome.next_cycle
                            index += 1
                            continue
                        del ms_seqs[index]
                        del ms_att[index]
                        del ms_inst[index]
                        n_entries -= 1
                        entry_inst.state = complete_state
                        entry_inst.complete_cycle = cycle

            # -- issue -------------------------------------------------
            if iq_ready:
                quiet = False
                issued = 0
                attempts = 0
                deferred: Optional[List[DynInst]] = None
                fu_int_used = 0
                fu_fp_used = 0
                fu_rolled = False
                while issued < issue_width and attempts < max_issue_attempts:
                    attempts += 1
                    # IssueQueue.pop_ready inlined: lazily discard heap
                    # entries that are no longer DISPATCHED (squash
                    # recovery and store-set re-wakes leave them stale).
                    ready_inst = None
                    while iq_ready:
                        popped = heappop(iq_ready)[1]
                        if popped.state is dispatched_state:
                            ready_inst = popped
                            break
                    if ready_inst is None:
                        break
                    # FunctionalUnits.try_issue inlined: per-cycle slot
                    # counts per pool, tallied into the deferred-flush
                    # locals that sync_all() writes back.
                    fu_rolled = True
                    if uses_fp[ready_inst.inst.op]:
                        if fu_fp_used >= fp_units:
                            fu_structural += 1
                            if deferred is None:
                                deferred = [ready_inst]
                            else:
                                deferred.append(ready_inst)
                            continue
                        fu_fp_used += 1
                        fu_fp_issued += 1
                    else:
                        if fu_int_used >= int_units:
                            fu_structural += 1
                            if deferred is None:
                                deferred = [ready_inst]
                            else:
                                deferred.append(ready_inst)
                            continue
                        fu_int_used += 1
                        fu_int_issued += 1
                    iq._occupancy -= 1
                    ready_inst.state = issued_state
                    ready_inst.issue_cycle = cycle
                    issued += 1
                    if ready_inst.is_memory or ready_inst.is_membar:
                        # One cycle of address generation, then the LSQ.
                        rseq = ready_inst.seq
                        pos = bisect_left(ms_seqs, rseq)
                        ms_seqs.insert(pos, rseq)
                        ms_att.insert(pos, cycle + 1)
                        ms_inst.insert(pos, ready_inst)
                    else:
                        key = cycle + ready_inst.latency
                        bucket = events.get(key)
                        if bucket is None:
                            events[key] = [ready_inst]
                        else:
                            bucket.append(ready_inst)
                if deferred is not None:
                    for ready_inst in deferred:
                        heappush(iq_ready, (ready_inst.seq, ready_inst))
                if fu_rolled:
                    fu_sync_cycle = cycle
                    fu_sync_int = fu_int_used
                    fu_sync_fp = fu_fp_used

            # -- dispatch ----------------------------------------------
            if fetch_buffer:
                slots = 0
                while slots < issue_width and fetch_buffer:
                    cand = fetch_buffer[0]
                    if len(rob_entries) >= rob_capacity:
                        stats.rob_full_stalls += 1
                        break
                    if iq._occupancy >= iq_capacity:
                        stats.iq_full_stalls += 1
                        break
                    if cand.is_memory:
                        # can_allocate inlined for flat queues: with one
                        # segment, either allocation policy reduces to a
                        # bare occupancy check.
                        if flat_alloc:
                            if cand.is_load:
                                ok_alloc = len(lq_seg0) < lq_seg_cap
                            else:
                                ok_alloc = len(sq_seg0) < sq_seg_cap
                        else:
                            ok_alloc = can_allocate(cand)
                        if not ok_alloc:
                            if cand.is_load:
                                stats.lq_full_stalls += 1
                            else:
                                stats.sq_full_stalls += 1
                            break
                    dest = cand.inst.dest
                    if not can_rename(dest):
                        regfile.rename_stalls += 1
                        break
                    quiet = False
                    fetch_buffer.popleft()
                    for src in cand.inst.srcs:
                        if src == NO_REG:
                            continue
                        writer = writers[src]
                        if writer is not None \
                                and writer.state < complete_state:
                            writer.consumers.append(cand)
                            cand.pending_sources += 1
                    if dest != NO_REG:
                        cand.prev_writer = writers[dest]
                        writers[dest] = cand
                        regfile_rename(dest)
                    rob_entries.append(cand)
                    iq._occupancy += 1
                    if cand.pending_sources == 0:
                        heappush(iq_ready, (cand.seq, cand))
                    if cand.is_memory:
                        lsq_allocate(cand)
                    elif cand.is_membar:
                        on_membar_dispatch(cand)
                    slots += 1

            # -- fetch -------------------------------------------------
            if cycle >= fetch_stall and redirect is None:
                fetched = 0
                while (fetched < fetch_width
                        and len(fetch_buffer) < buffer_cap
                        and fetch_index < trace_len):
                    quiet = False
                    raw = insts[fetch_index]
                    block = raw.pc >> 6
                    if block != last_fetch_block:
                        last_fetch_block = block
                        access = instruction_access(raw.pc)
                        if not access.l1_hit:
                            fetch_stall = cycle + access.latency
                            break
                    dyn = DynInst(seq, fetch_index, raw)
                    seq += 1
                    fetch_index += 1
                    fetch_buffer.append(dyn)
                    fetched += 1
                    if dyn.is_branch:
                        if not predict_and_update(raw.pc, raw.taken):
                            dyn.mispredicted = True
                            stats.branch_mispredicts += 1
                            redirect = dyn
                            break
                        if raw.taken:
                            break  # one taken branch per fetch group

            # -- occupancy sample (LoadStoreQueue.sample inlined) ------
            if unified:
                # live_loads prices the model, not the host shortcut —
                # see the rationale on LoadStoreQueue.sample().
                loads = lq.live_loads
                occ_lq += loads  # sim-lint: ignore[SIM-T001]
                occ_sq += len(lq_order) - loads  # sim-lint: ignore[SIM-T001]
            else:
                occ_lq += len(lq_order)
                occ_sq += len(sq_order)
            occ_ooo += nilp.ooo_in_flight

            cycle += 1
            quiet_prev = quiet
            if max_cycles is not None and cycle >= max_cycles:
                break
            if cycle - last_commit > watchdog:
                sync_all()
                from repro.validate.bundle import (SimulationDeadlock,
                                                   build_bundle)
                raise SimulationDeadlock(
                    f"no commit for {watchdog} cycles at cycle "
                    f"{cycle} (trace {trace_name!r})",
                    bundle=build_bundle(self))

        sync_all()
        stats.cycles = cycle
        return SimulationResult(trace_name, machine, stats)

    # ------------------------------------------------------------------
    # state write-back
    # ------------------------------------------------------------------

    def _sync(self, cycle: int, seq: int, fetch_index: int,
              fetch_stall: int, last_fetch_block: int, last_commit: int,
              redirect: Optional[DynInst], ms_seqs: "array[int]",
              ms_att: "array[int]", ms_inst: List[DynInst]) -> None:
        """Write loop-local state back onto the ``Processor`` fields.

        Diagnostics (``repro.validate.bundle.build_bundle``, post-run
        inspection in tests) read the same attributes the reference
        engine maintains; the fused loop reconstructs them on exit and
        before raising ``SimulationDeadlock``.
        """
        self.cycle = cycle
        self._seq = seq
        self._fetch_index = fetch_index
        self._fetch_stall_until = fetch_stall
        self._last_fetch_block = last_fetch_block
        self._last_commit_cycle = last_commit
        self._redirect_branch = redirect
        mem_stage: List[list] = []
        for index in range(len(ms_inst)):
            mem_stage.append([ms_seqs[index], ms_inst[index],
                              ms_att[index]])
        self._mem_stage = mem_stage
