"""Validation subsystem: memory-model oracle, invariants, fault injection.

The simulator's correctness rests on memory ordering — store-to-load
forwarding, violation detection, squash-and-replay.  This package turns
those from beliefs into checked properties:

* :class:`~repro.validate.oracle.MemoryOracle` — golden sequential
  replay giving the architecturally-correct source of every load;
* :mod:`repro.validate.invariants` — per-cycle structural invariants
  (ROB/LSQ mirroring, load-buffer/NILP consistency, port booking);
* :class:`~repro.validate.checker.ValidationChecker` — attaches to a
  :class:`~repro.pipeline.processor.Processor` (``simulate(...,
  validate=True)``) and raises :class:`ValidationError` with a
  :class:`DiagnosticBundle` on the first discrepancy;
* :mod:`repro.validate.faults` — seeded injectors that corrupt LSQ
  decisions and assert every fault is recovered, detected, or benign —
  never silent.

See ``docs/VALIDATION.md`` for the full semantics.
"""

from repro.validate.bundle import (
    DiagnosticBundle,
    InvariantViolation,
    SimulationDeadlock,
    ValidationError,
    ValidationFailure,
    build_bundle,
)
from repro.validate.oracle import CommittedMemory, MemoryOracle
from repro.validate.invariants import Finding, scan
from repro.validate.checker import ValidationChecker
from repro.validate.faults import (
    FAULT_CLASSES,
    CampaignReport,
    DropSegmentSearchFault,
    FaultInjector,
    MembarDropFault,
    NilpCorruptionFault,
    SkipSqSearchFault,
    SuppressLoadBufferFault,
    run_all_fault_classes,
    run_fault_campaign,
)

__all__ = [
    "DiagnosticBundle",
    "InvariantViolation",
    "SimulationDeadlock",
    "ValidationError",
    "ValidationFailure",
    "build_bundle",
    "CommittedMemory",
    "MemoryOracle",
    "Finding",
    "scan",
    "ValidationChecker",
    "FAULT_CLASSES",
    "CampaignReport",
    "DropSegmentSearchFault",
    "FaultInjector",
    "MembarDropFault",
    "NilpCorruptionFault",
    "SkipSqSearchFault",
    "SuppressLoadBufferFault",
    "run_all_fault_classes",
    "run_fault_campaign",
]
