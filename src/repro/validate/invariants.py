"""Cycle-level structural invariants of the pipeline and LSQ.

:func:`scan` inspects a :class:`~repro.pipeline.processor.Processor`
after one simulated cycle and returns every structural invariant that
does not hold (an empty list on a healthy machine).  The checks are
deliberately white-box — the point is to catch bookkeeping corruption
the moment it happens rather than cycles later when it surfaces as a
wrong IPC or a deadlock:

* **rob-order** — the ROB holds in-flight instructions in strictly
  increasing sequence order, within capacity, none already committed or
  squashed, and none older than the last committed instruction.
* **lsq-mirror** — LQ/SQ entries correspond one-to-one to the in-flight
  ROB memory operations (loads and stores share one pool when the
  queue is unified).
* **queue-order** — each LSQ side keeps program order, respects
  per-segment capacity, and its segment bookkeeping matches the
  per-entry ``lsq_segment`` tags.
* **load-buffer** — the load buffer holds exactly the
  out-of-order-issued, executed, un-squashed loads (NILP/LIV
  consistency): every occupied slot is such a load with a correct
  back-pointer, and (in LOAD_BUFFER mode) every such load occupies a
  slot.
* **nilp** — the NILP tracker's out-of-order-in-flight count matches a
  brute-force recount of its pending queue.
* **port-calendar** — no (segment, cycle) slot is ever booked beyond
  the configured number of search ports.
* **mem-stage** — the memory stage keeps its entries sorted by age.
"""

from __future__ import annotations

from typing import List, NamedTuple

from repro.config import LoadQueueSearchMode
from repro.pipeline.dyninst import InstState


class Finding(NamedTuple):
    """One violated invariant."""

    name: str
    seq: int
    message: str


def _check_rob(processor, min_seq: int, findings: List[Finding]) -> None:
    rob = processor.rob
    if len(rob) > rob.capacity:
        findings.append(Finding(
            "rob-order", -1,
            f"ROB holds {len(rob)} > capacity {rob.capacity}"))
    previous = None
    for inst in rob:
        if previous is not None and inst.seq <= previous:
            findings.append(Finding(
                "rob-order", inst.seq,
                f"ROB not age-ordered: seq {inst.seq} after {previous}"))
        previous = inst.seq
        if inst.state in (InstState.COMMITTED, InstState.SQUASHED):
            findings.append(Finding(
                "rob-order", inst.seq,
                f"{inst.state.name} instruction still in the ROB"))
        if inst.seq <= min_seq:
            findings.append(Finding(
                "rob-order", inst.seq,
                f"in-flight seq {inst.seq} not younger than last "
                f"committed seq {min_seq}"))


def _check_lsq_mirror(processor, findings: List[Finding]) -> None:
    lsq = processor.lsq
    rob_loads = {i.seq for i in processor.rob if i.is_load}
    rob_stores = {i.seq for i in processor.rob if i.is_store}
    if lsq.config.unified_queue:
        queued = {e.seq for e in lsq.lq.entries()}
        expected = rob_loads | rob_stores
        if queued != expected:
            findings.append(Finding(
                "lsq-mirror", -1,
                f"unified LSQ/ROB mismatch: only-in-LSQ="
                f"{sorted(queued - expected)} only-in-ROB="
                f"{sorted(expected - queued)}"))
        return
    queued_loads = {e.seq for e in lsq.lq.entries()}
    queued_stores = {e.seq for e in lsq.sq.entries()}
    if queued_loads != rob_loads:
        findings.append(Finding(
            "lsq-mirror", -1,
            f"LQ/ROB mismatch: only-in-LQ={sorted(queued_loads - rob_loads)} "
            f"only-in-ROB={sorted(rob_loads - queued_loads)}"))
    if queued_stores != rob_stores:
        findings.append(Finding(
            "lsq-mirror", -1,
            f"SQ/ROB mismatch: only-in-SQ={sorted(queued_stores - rob_stores)}"
            f" only-in-ROB={sorted(rob_stores - queued_stores)}"))


def _check_queue_order(queue, findings: List[Finding]) -> None:
    previous = None
    for entry in queue.entries():
        if previous is not None and entry.seq <= previous:
            findings.append(Finding(
                "queue-order", entry.seq,
                f"{queue.name} not program-ordered: seq {entry.seq} "
                f"after {previous}"))
        previous = entry.seq
    for index, segment in enumerate(queue.segment_contents()):
        if len(segment) > queue.segment_entries:
            findings.append(Finding(
                "queue-order", -1,
                f"{queue.name} segment {index} holds {len(segment)} > "
                f"{queue.segment_entries} entries"))
        for entry in segment:
            if entry.lsq_segment != index:
                findings.append(Finding(
                    "queue-order", entry.seq,
                    f"{queue.name} entry seq {entry.seq} tagged segment "
                    f"{entry.lsq_segment} but stored in segment {index}"))


def _check_load_buffer(processor, findings: List[Finding]) -> None:
    lsq = processor.lsq
    buffer = lsq.load_buffer
    occupied = 0
    for index, slot in enumerate(buffer.slots()):
        if slot is None:
            continue
        occupied += 1
        if not slot.is_load:
            findings.append(Finding(
                "load-buffer", slot.seq,
                f"non-load seq {slot.seq} in load-buffer slot {index}"))
        if slot.squashed:
            findings.append(Finding(
                "load-buffer", slot.seq,
                f"squashed load seq {slot.seq} in load-buffer slot {index}"))
        elif not slot.mem_executed:
            findings.append(Finding(
                "load-buffer", slot.seq,
                f"un-executed load seq {slot.seq} in load-buffer slot "
                f"{index}"))
        elif not slot.ooo_issued:
            findings.append(Finding(
                "load-buffer", slot.seq,
                f"in-order-issued load seq {slot.seq} occupies load-buffer "
                f"slot {index}"))
        if slot.load_buffer_slot != index:
            findings.append(Finding(
                "load-buffer", slot.seq,
                f"load seq {slot.seq} back-pointer {slot.load_buffer_slot} "
                f"!= slot {index}"))
    if occupied > buffer.capacity:
        findings.append(Finding(
            "load-buffer", -1,
            f"load buffer holds {occupied} > capacity {buffer.capacity}"))
    if lsq.config.lq_search is not LoadQueueSearchMode.LOAD_BUFFER:
        return
    # Forward direction: every out-of-order-issued executed load must be
    # buffered until the NILP passes it, or load-load violations can
    # slip through unchecked.
    slots = set(id(slot) for slot in buffer.slots() if slot is not None)
    for load in lsq.lq.entries():
        if (load.is_load and load.ooo_issued and load.mem_executed
                and not load.squashed and id(load) not in slots):
            findings.append(Finding(
                "load-buffer", load.seq,
                f"out-of-order-issued load seq {load.seq} executed but "
                f"missing from the load buffer"))


def _check_nilp(processor, findings: List[Finding]) -> None:
    nilp = processor.lsq.nilp
    recount = sum(1 for load in nilp.pending() if load.ooo_issued)
    if recount != nilp.ooo_in_flight:
        findings.append(Finding(
            "nilp", -1,
            f"NILP out-of-order count {nilp.ooo_in_flight} != recount "
            f"{recount}"))


def _check_ports(processor, findings: List[Finding]) -> None:
    lsq = processor.lsq
    calendars = [("LQ", lsq.lq_ports)]
    if lsq.sq_ports is not lsq.lq_ports:
        calendars.append(("SQ", lsq.sq_ports))
    for name, calendar in calendars:
        for segment, cycle, used in calendar.overbooked():
            findings.append(Finding(
                "port-calendar", -1,
                f"{name} ports: segment {segment} cycle {cycle} booked "
                f"{used} > {calendar.ports} ports"))


def _check_mem_stage(processor, findings: List[Finding]) -> None:
    previous = None
    for seq, __, __ in processor._mem_stage:
        if previous is not None and seq <= previous:
            findings.append(Finding(
                "mem-stage", seq,
                f"memory stage not age-sorted: seq {seq} after {previous}"))
        previous = seq


def scan(processor, min_seq: int = -1) -> List[Finding]:
    """All violated invariants on ``processor`` (empty when healthy).

    ``min_seq`` is the sequence number of the last committed
    instruction; every in-flight instruction must be younger (a
    committed instruction must never reappear or be squashed).
    """
    findings: List[Finding] = []
    _check_rob(processor, min_seq, findings)
    _check_lsq_mirror(processor, findings)
    _check_queue_order(processor.lsq.lq, findings)
    if processor.lsq.sq is not processor.lsq.lq:
        _check_queue_order(processor.lsq.sq, findings)
    _check_load_buffer(processor, findings)
    _check_nilp(processor, findings)
    _check_ports(processor, findings)
    _check_mem_stage(processor, findings)
    return findings
