"""The validation checker: cross-checks a running processor.

A :class:`ValidationChecker` attaches to one
:class:`~repro.pipeline.processor.Processor` run and validates it on
two levels:

1. **Memory-model oracle** (``oracle=True``) — every *committed* load
   is checked against the golden sequential replay
   (:class:`~repro.validate.oracle.MemoryOracle`): the store it
   actually observed (forwarding store, or the youngest committed store
   in the data cache at access time) must be the store a sequential
   machine would have observed.  The checker also verifies commit
   order (each trace instruction commits exactly once, in order) and —
   in configurations that promise hardware load-load ordering — that
   the machine raises a violation whenever an older load executes
   after a younger overlapping load already obtained its value.

2. **Cycle-level invariants** (``invariants=True``) — after each
   simulated cycle the structural invariants of
   :mod:`repro.validate.invariants` must hold.

With ``raise_on_error=True`` (the default) the first discrepancy
raises :class:`~repro.validate.bundle.ValidationError` (or
:class:`~repro.validate.bundle.InvariantViolation`) carrying a
:class:`~repro.validate.bundle.DiagnosticBundle`; with
``raise_on_error=False`` failures accumulate in ``checker.failures``
for post-run inspection (the mode the fault-injection harness uses).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.config import LoadQueueSearchMode
from repro.validate import invariants
from repro.validate.bundle import (
    DiagnosticBundle,
    InvariantViolation,
    ValidationError,
    ValidationFailure,
    build_bundle,
)
from repro.validate.oracle import CommittedMemory, MemoryOracle

#: Load-queue search modes that promise hardware load-load ordering;
#: under MEMBAR/INVALIDATION the machine makes no such promise
#: (ordering is the programmer's or the coherence protocol's job).
_ORDERING_ENFORCED = frozenset({
    LoadQueueSearchMode.SEARCH_LQ,
    LoadQueueSearchMode.LOAD_BUFFER,
    LoadQueueSearchMode.IN_ORDER,
    LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH,
})

_MISSING = object()

#: Cap on recorded failures in non-raising mode (a badly corrupted run
#: would otherwise accumulate one failure per cycle).
MAX_RECORDED_FAILURES = 512


class ValidationChecker:
    """Oracle + invariant cross-checking for one simulation run."""

    def __init__(self, *, oracle: bool = True, invariants: bool = True,
                 raise_on_error: bool = True,
                 invariant_interval: int = 1) -> None:
        if invariant_interval < 1:
            raise ValueError("invariant_interval must be >= 1")
        self.use_oracle = oracle
        self.use_invariants = invariants
        self.raise_on_error = raise_on_error
        self.invariant_interval = invariant_interval
        self.failures: List[ValidationFailure] = []
        self.checked_loads = 0
        self.checked_cycles = 0
        self.processor = None
        self.oracle: Optional[MemoryOracle] = None
        #: committed-load verdicts: trace index -> (observed, expected),
        #: kept so the fault harness can re-derive correctness without
        #: trusting the failure list.
        self.load_verdicts: Dict[int, Tuple[object, object]] = {}
        self._memory = CommittedMemory()
        self._store_trace: Dict[int, int] = {}   # store seq -> trace index
        self._observed: Dict[int, Optional[int]] = {}  # load seq -> source
        self._commit_index = 0                   # next trace index to commit
        self._last_seq = -1                      # last committed seq
        self._seen: Set[Tuple[str, int]] = set()

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, processor, trace) -> None:
        """Bind to one run (called by ``Processor.run``)."""
        from repro.pipeline.debug import PipelineTracer
        self.processor = processor
        self.failures = []
        self._seen = set()
        self._memory = CommittedMemory()
        self._store_trace = {}
        self._observed = {}
        self._commit_index = 0
        self._last_seq = -1
        self.checked_loads = 0
        self.checked_cycles = 0
        self.load_verdicts = {}
        self.oracle = MemoryOracle(trace) if self.use_oracle else None
        if processor.tracer is None:
            # Keep a rolling last-64-instruction pipetrace so every
            # diagnostic bundle has one.
            processor.tracer = PipelineTracer(limit=64, rolling=True)

    # ------------------------------------------------------------------
    # failure plumbing
    # ------------------------------------------------------------------

    def _fail(self, kind: str, seq: int, trace_index: int, message: str,
              expected: object = None, observed: object = None,
              invariant: bool = False) -> None:
        key = (kind, seq)
        if key in self._seen:
            return
        self._seen.add(key)
        failure = ValidationFailure(
            kind=kind, cycle=self.processor.cycle if self.processor else -1,
            seq=seq, trace_index=trace_index,
            expected=expected, observed=observed, message=message)
        if len(self.failures) < MAX_RECORDED_FAILURES:
            self.failures.append(failure)
        if self.raise_on_error:
            bundle = build_bundle(self.processor, seq=seq,
                                  trace_index=trace_index,
                                  failures=[failure])
            error = InvariantViolation if invariant else ValidationError
            raise error(failure.format(), failure=failure, bundle=bundle)

    @property
    def ok(self) -> bool:
        return not self.failures

    def bundle(self) -> DiagnosticBundle:
        """Diagnostic bundle for the current processor state."""
        first = self.failures[0] if self.failures else None
        return build_bundle(
            self.processor,
            seq=first.seq if first else -1,
            trace_index=first.trace_index if first else -1,
            failures=self.failures)

    def report(self) -> str:
        status = "ok" if self.ok else f"{len(self.failures)} failure(s)"
        return (f"validation: {status}; {self.checked_loads} committed "
                f"loads cross-checked, {self.checked_cycles} cycles of "
                f"invariants")

    # ------------------------------------------------------------------
    # processor hooks
    # ------------------------------------------------------------------

    def on_dispatch(self, inst) -> None:
        if inst.is_store:
            self._store_trace[inst.seq] = inst.trace_index

    def on_load_executed(self, load, violation) -> None:
        """Record the observed source; check load-load enforcement."""
        if self.oracle is None:
            return
        if load.forwarded_from is not None:
            source = self._store_trace.get(load.forwarded_from)
            if source is None:
                self._fail(
                    "unknown-forwarding-store", load.seq, load.trace_index,
                    f"load forwarded from untracked store seq "
                    f"{load.forwarded_from}")
            self._observed[load.seq] = source
        else:
            self._observed[load.seq] = self._memory.version(load.inst)
        self._check_load_load(load, violation)

    def _check_load_load(self, load, violation) -> None:
        """An older load executing after a younger overlapping load
        already issued must trigger a load-load violation (in modes
        that enforce hardware load-load ordering)."""
        lsq = self.processor.lsq
        if lsq.config.lq_search not in _ORDERING_ENFORCED:
            return
        for other in lsq.lq.entries():
            if other.seq <= load.seq:
                continue
            if (other.is_load and other.mem_executed and not other.squashed
                    and other is not load and other.overlaps(load)):
                if violation is None or violation.squash_seq > other.seq:
                    self._fail(
                        "missed-load-load", other.seq, other.trace_index,
                        f"load seq {other.seq} obtained its value before "
                        f"older overlapping load seq {load.seq} executed, "
                        f"and no load-load violation was raised")
                return  # oldest younger match decides

    def on_commit(self, inst) -> None:
        if self.oracle is None:
            return
        if inst.trace_index != self._commit_index:
            self._fail(
                "commit-order", inst.seq, inst.trace_index,
                f"committed trace index {inst.trace_index}, expected "
                f"{self._commit_index} (each trace instruction must "
                f"commit exactly once, in order)")
        self._commit_index = inst.trace_index + 1
        if inst.seq <= self._last_seq:
            self._fail(
                "commit-order", inst.seq, inst.trace_index,
                f"committed seq {inst.seq} not younger than previously "
                f"committed seq {self._last_seq}")
        self._last_seq = inst.seq
        if inst.is_store:
            self._memory.write(inst.inst, inst.trace_index)
            self._store_trace.pop(inst.seq, None)
        elif inst.is_load:
            self._check_committed_load(inst)

    def _check_committed_load(self, load) -> None:
        observed = self._observed.pop(load.seq, _MISSING)
        if observed is _MISSING:
            self._fail(
                "unobserved-load", load.seq, load.trace_index,
                "load committed without a recorded memory access")
            return
        expected = self.oracle.correct_source(load.trace_index)
        self.checked_loads += 1
        self.load_verdicts[load.trace_index] = (observed, expected)
        if observed != expected:
            self._fail(
                "stale-load", load.seq, load.trace_index,
                f"committed load at trace[{load.trace_index}] "
                f"(pc={load.pc:#x}, addr={load.addr:#x}) observed the "
                f"wrong store", expected=expected, observed=observed)

    def on_squash(self, seq: int, cycle: int) -> None:
        if seq <= self._last_seq:
            self._fail(
                "squash-committed", seq, -1,
                f"squash from seq {seq} would undo committed seq "
                f"{self._last_seq}")
        self._observed = {s: v for s, v in self._observed.items() if s < seq}
        self._store_trace = {s: v for s, v in self._store_trace.items()
                             if s < seq}

    def end_cycle(self) -> None:
        if not self.use_invariants:
            return
        processor = self.processor
        if processor.cycle % self.invariant_interval:
            return
        self.checked_cycles += 1
        for finding in invariants.scan(processor, min_seq=self._last_seq):
            self._fail("invariant:" + finding.name, finding.seq, -1,
                       finding.message, invariant=True)
