"""Fault injection: prove the detection/recovery machinery earns its keep.

Each :class:`FaultInjector` deterministically (seed-driven) corrupts one
internal decision of the LSQ while a trace runs under the full
:class:`~repro.validate.checker.ValidationChecker`:

* :class:`SkipSqSearchFault` — forces "skip the store-queue search" on
  loads that actually have an older overlapping store in flight,
  mimicking a pair-predictor misprediction path gone wrong;
* :class:`SuppressLoadBufferFault` — drops load-buffer insertions for
  out-of-order-issued loads, breaking the NILP/LIV contract;
* :class:`DropSegmentSearchFault` — silently truncates the youngest
  segment from forwarding searches, modelling a broken segmented
  search pipeline;
* :class:`MembarDropFault` — drops the memory-barrier issue gate for
  selected instructions, letting them run past an incomplete
  ``MEMBAR`` (the litmus rig's fenced variants exist to catch this);
* :class:`NilpCorruptionFault` — makes the NILP pointer lie that an
  out-of-order load issued in order, so it gets neither a load-buffer
  entry nor out-of-order bookkeeping.

After the run, :func:`run_fault_campaign` classifies every injected
fault:

``recovered``
    the corrupted instruction was squashed and replayed — the machine's
    own violation detection caught it;
``detected``
    the instruction committed, but the oracle or an invariant flagged
    it — the *checker* caught what the machine missed;
``benign``
    the corruption was harmless (e.g. the skipped store had already
    committed, so memory held the right value anyway);
``silent``
    the instruction committed wrongly and nothing noticed — the one
    outcome that must never happen (``report.ok`` asserts there are
    zero of these).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.pipeline.dyninst import InstState
from repro.pipeline.processor import Processor
from repro.validate.checker import ValidationChecker


@dataclass
class InjectedFault:
    """One corrupted decision."""

    kind: str
    seq: int
    trace_index: int
    cycle: int
    detail: str
    inst: object = field(repr=False)


class FaultInjector:
    """Base class: deterministic, seed-driven corruption of one LSQ path."""

    name = "abstract"

    def __init__(self, seed: int = 0, rate: float = 0.25) -> None:
        if not 0.0 < rate <= 1.0:
            raise ValueError("rate must be in (0, 1]")
        self.rng = random.Random(seed)
        self.rate = rate
        self.injected: List[InjectedFault] = []

    def install(self, processor: Processor) -> None:
        raise NotImplementedError

    def _record(self, processor: Processor, inst, detail: str) -> None:
        self.injected.append(InjectedFault(
            kind=self.name, seq=inst.seq, trace_index=inst.trace_index,
            cycle=processor.cycle, detail=detail, inst=inst))


class SkipSqSearchFault(FaultInjector):
    """Force dependent loads to skip the store-queue search."""

    name = "skip-sq-search"

    def install(self, processor: Processor) -> None:
        lsq = processor.lsq
        original = lsq._needs_sq_search

        def corrupted(load):
            decision = original(load)
            if (decision and lsq._oracle_match(load) is not None
                    and self.rng.random() < self.rate):
                self._record(processor, load,
                             "forced skip of the SQ search on a load with "
                             "an older overlapping store in flight")
                return False
            return decision

        lsq._needs_sq_search = corrupted


class SuppressLoadBufferFault(FaultInjector):
    """Drop load-buffer insertions of out-of-order-issued loads."""

    name = "suppress-load-buffer"

    def install(self, processor: Processor) -> None:
        buffer = processor.lsq.load_buffer
        original = buffer.insert

        def corrupted(load):
            if self.rng.random() < self.rate:
                self._record(processor, load,
                             "suppressed load-buffer insertion")
                load.load_buffer_slot = -1
                return
            original(load)

        buffer.insert = corrupted


class DropSegmentSearchFault(FaultInjector):
    """Truncate the youngest segment from forwarding searches."""

    name = "drop-segment-search"

    def install(self, processor: Processor) -> None:
        lsq = processor.lsq
        original = lsq._sq_search

        def corrupted(load, path):
            if path and self.rng.random() < self.rate:
                self._record(processor, load,
                             f"dropped segment {path[0]} (the youngest "
                             f"stores) from the forwarding search")
                path = path[1:]
            return original(load, path)

        lsq._sq_search = corrupted


class MembarDropFault(FaultInjector):
    """Drop the memory-barrier issue gate for selected instructions."""

    name = "drop-membar"

    def install(self, processor: Processor) -> None:
        lsq = processor.lsq
        original = lsq._membar_blocks
        # Per-instruction decisions: once an instruction's gate is
        # dropped it stays dropped, so issue logic sees a consistent
        # (corrupted) ordering rather than a flickering one.
        decisions: Dict[int, bool] = {}

        def corrupted(inst):
            if not original(inst):
                return False
            drop = decisions.get(inst.seq)
            if drop is None:
                drop = self.rng.random() < self.rate
                decisions[inst.seq] = drop
                if drop:
                    self._record(processor, inst,
                                 "dropped the memory-barrier gate; the "
                                 "instruction issues past an incomplete "
                                 "MEMBAR")
            return not drop

        lsq._membar_blocks = corrupted


class _LyingNilp:
    """Proxy over :class:`~repro.core.load_buffer.NilpTracker` whose
    in-order answer can lie (the tracker itself has ``__slots__``, so
    corruption happens one level up).

    The lie is sticky per load: ``load_blocked`` and
    ``_finish_load_issue`` must see the same answer, otherwise the LSQ
    would insert a "blocked" load into the buffer after all.  A load
    lied about is genuinely out of order yet gets no load-buffer entry
    and no out-of-order bookkeeping — the tracker's own state stays
    self-consistent, so the cycle invariants cannot see the corruption
    and the memory-model oracle has to catch any wrong value.
    """

    def __init__(self, real: object, fault: "NilpCorruptionFault",
                 processor: Processor) -> None:
        self._real = real
        self._fault = fault
        self._processor = processor
        self._decisions: Dict[int, bool] = {}

    def __getattr__(self, name):
        return getattr(self._real, name)

    def is_in_order(self, load) -> bool:
        if self._real.is_in_order(load):
            return True
        lie = self._decisions.get(load.seq)
        if lie is None:
            lie = self._fault.rng.random() < self._fault.rate
            self._decisions[load.seq] = lie
            if lie:
                self._fault._record(
                    self._processor, load,
                    "NILP pointer corrupted: an out-of-order load is "
                    "reported in order (no load-buffer entry, no "
                    "out-of-order bookkeeping)")
        return lie


class NilpCorruptionFault(FaultInjector):
    """Make the NILP pointer lie that out-of-order loads are in order."""

    name = "corrupt-nilp"

    def install(self, processor: Processor) -> None:
        lsq = processor.lsq
        lsq.nilp = _LyingNilp(lsq.nilp, self, processor)


#: Registry of every fault class, keyed by its reporting name.
FAULT_CLASSES: Dict[str, type] = {
    cls.name: cls
    for cls in (SkipSqSearchFault, SuppressLoadBufferFault,
                DropSegmentSearchFault, MembarDropFault,
                NilpCorruptionFault)
}


@dataclass
class FaultOutcome:
    fault: InjectedFault
    status: str   # "recovered" | "detected" | "benign" | "unresolved"


@dataclass
class CampaignReport:
    """Per-fault classification for one injected run."""

    fault_name: str
    trace_name: str
    outcomes: List[FaultOutcome]
    checker: ValidationChecker

    @property
    def counts(self) -> Dict[str, int]:
        tally: Dict[str, int] = {}
        for outcome in self.outcomes:
            tally[outcome.status] = tally.get(outcome.status, 0) + 1
        return tally

    @property
    def silent(self) -> List[FaultOutcome]:
        return [o for o in self.outcomes if o.status == "silent"]

    @property
    def ok(self) -> bool:
        """True when no injected fault escaped unnoticed."""
        return not self.silent

    def format(self) -> str:
        counts = self.counts
        summary = ", ".join(f"{status}={count}"
                            for status, count in sorted(counts.items()))
        lines = [f"{self.fault_name} on {self.trace_name}: "
                 f"{len(self.outcomes)} injected ({summary or 'none'})"]
        for outcome in self.silent:
            fault = outcome.fault
            lines.append(f"  SILENT: seq {fault.seq} "
                         f"trace[{fault.trace_index}] at cycle "
                         f"{fault.cycle}: {fault.detail}")
        return "\n".join(lines)


def _classify(fault: InjectedFault, failed_seqs: frozenset,
              verdicts: Dict[int, tuple]) -> FaultOutcome:
    inst = fault.inst
    if inst.squashed:
        return FaultOutcome(fault, "recovered")
    if inst.state is InstState.COMMITTED:
        if fault.seq in failed_seqs:
            return FaultOutcome(fault, "detected")
        verdict = verdicts.get(fault.trace_index)
        if verdict is not None and verdict[0] != verdict[1]:
            # Committed wrongly yet nothing flagged it — the checker's
            # own verdict record contradicts its failure list.  This is
            # the outcome the whole subsystem exists to rule out.
            return FaultOutcome(fault, "silent")
        return FaultOutcome(fault, "benign")
    # Only possible when the run was cut short by max_cycles.
    return FaultOutcome(fault, "unresolved")


def run_fault_campaign(trace, machine, injector: FaultInjector,
                       max_cycles: Optional[int] = None) -> CampaignReport:
    """Run ``trace`` with ``injector`` active and classify every fault.

    The run executes under a non-raising full checker; a fault is
    acceptable only when the machine recovered from it, the checker
    detected it, or it provably did not matter.  ``report.ok`` is the
    zero-silent-corruption property.
    """
    checker = ValidationChecker(raise_on_error=False)
    processor = Processor(machine, checker=checker)
    injector.install(processor)
    processor.run(trace, max_cycles=max_cycles)
    failed_seqs = frozenset(failure.seq for failure in checker.failures)
    outcomes = [_classify(fault, failed_seqs, checker.load_verdicts)
                for fault in injector.injected]
    return CampaignReport(fault_name=injector.name, trace_name=trace.name,
                          outcomes=outcomes, checker=checker)


def run_all_fault_classes(trace, machine, seed: int = 0,
                          rate: float = 0.25) -> Dict[str, CampaignReport]:
    """One campaign per registered fault class (fresh injector each)."""
    reports = {}
    for name, cls in FAULT_CLASSES.items():
        reports[name] = run_fault_campaign(trace, machine,
                                           cls(seed=seed, rate=rate))
    return reports
