"""Structured validation errors and the diagnostic bundle.

Every failure the validation subsystem can raise — a memory-model
mismatch from the oracle, a structural invariant violation, or the
deadlock watchdog firing — carries a :class:`DiagnosticBundle`: the
machine configuration, a pipetrace of the most recent instructions, the
trace window around the failing instruction, and a one-line pipeline
state summary.  ``bundle.format()`` is everything needed to reproduce
and debug the failure from a cold start.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional


@dataclass
class ValidationFailure:
    """One detected discrepancy (machine behaviour vs. the oracle)."""

    kind: str                 # e.g. "stale-load", "invariant:rob-order"
    cycle: int
    seq: int = -1             # dynamic sequence number involved
    trace_index: int = -1     # trace position involved
    expected: object = None   # oracle's answer (store trace index / None)
    observed: object = None   # what the machine actually did
    message: str = ""

    def format(self) -> str:
        parts = [f"[{self.kind}] cycle {self.cycle}"]
        if self.seq >= 0:
            parts.append(f"seq {self.seq}")
        if self.trace_index >= 0:
            parts.append(f"trace index {self.trace_index}")
        head = " ".join(parts)
        detail = self.message
        if self.expected is not None or self.observed is not None:
            detail += (f" (expected source: {self._name(self.expected)}, "
                       f"observed source: {self._name(self.observed)})")
        return f"{head}: {detail}"

    @staticmethod
    def _name(source: object) -> str:
        if source is None:
            return "initial memory"
        return f"store @trace[{source}]"


class ValidationError(Exception):
    """The simulator executed a memory operation incorrectly.

    Raised by the :class:`~repro.validate.checker.ValidationChecker`
    when a *committed* load observed a different store than the golden
    in-order replay says it should have (``failure`` has the details,
    ``bundle`` the reproduction context).
    """

    def __init__(self, message: str,
                 failure: Optional[ValidationFailure] = None,
                 bundle: Optional["DiagnosticBundle"] = None) -> None:
        super().__init__(message)
        self.failure = failure
        self.bundle = bundle

    def __str__(self) -> str:
        base = super().__str__()
        if self.bundle is not None:
            return f"{base}\n{self.bundle.format()}"
        return base


class InvariantViolation(ValidationError):
    """A cycle-level structural invariant does not hold."""


class SimulationDeadlock(RuntimeError):
    """The watchdog fired: no instruction committed for too long."""

    def __init__(self, message: str,
                 bundle: Optional["DiagnosticBundle"] = None) -> None:
        super().__init__(message)
        self.bundle = bundle

    def __str__(self) -> str:
        base = super().__str__()
        if self.bundle is not None:
            return f"{base}\n{self.bundle.format()}"
        return base


@dataclass
class DiagnosticBundle:
    """Everything needed to reproduce one failure."""

    trace_name: str
    cycle: int
    machine_summary: str
    pipeline_state: str
    pipetrace: str
    trace_window: str
    failures: List[ValidationFailure] = field(default_factory=list)

    def format(self) -> str:
        lines = [
            "================ diagnostic bundle ================",
            f"trace:   {self.trace_name}",
            f"cycle:   {self.cycle}",
            f"machine: {self.machine_summary}",
            f"state:   {self.pipeline_state}",
        ]
        if self.failures:
            lines.append("failures:")
            lines.extend(f"  {failure.format()}" for failure in self.failures)
        lines.append("---- last-instruction pipetrace ----")
        lines.append(self.pipetrace)
        lines.append("---- trace window ----")
        lines.append(self.trace_window)
        lines.append("===================================================")
        return "\n".join(lines)


def _machine_summary(machine) -> str:
    lsq = machine.lsq
    shape = (f"{lsq.segments}x{lsq.segment_entries}" if lsq.segmented
             else f"LQ{lsq.lq_entries}/SQ{lsq.sq_entries}")
    return (f"{shape} ports={lsq.search_ports} "
            f"predictor={lsq.predictor.value} lq_search={lsq.lq_search.value} "
            f"load_buffer={lsq.load_buffer_entries} "
            f"unified={lsq.unified_queue} "
            f"width={machine.core.issue_width}")


def _trace_window(trace, center: int, radius: int = 8) -> str:
    if trace is None or not len(trace):
        return "(no trace)"
    center = min(max(center, 0), len(trace) - 1)
    lo = max(center - radius, 0)
    hi = min(center + radius + 1, len(trace))
    lines = []
    for index in range(lo, hi):
        inst = trace[index]
        marker = ">>" if index == center else "  "
        mem = (f" addr={inst.addr:#x} size={inst.size}"
               if inst.is_memory else "")
        lines.append(f"{marker} [{index}] pc={inst.pc:#x} "
                     f"{inst.op.name}{mem}")
    return "\n".join(lines)


def build_bundle(processor, seq: int = -1, trace_index: int = -1,
                 failures: Optional[List[ValidationFailure]] = None
                 ) -> DiagnosticBundle:
    """Snapshot ``processor`` into a :class:`DiagnosticBundle`.

    ``trace_index`` centres the trace window; when unknown it falls back
    to the ROB head (the oldest unfinished instruction), then the fetch
    pointer.
    """
    trace = processor._trace
    if trace_index < 0:
        head = processor.rob.head
        trace_index = (head.trace_index if head is not None
                       else processor._fetch_index)
    if processor.tracer is not None:
        pipetrace = processor.tracer.render_recent()
    else:
        pipetrace = "(no pipeline tracer attached)"
    state = (f"rob={len(processor.rob)} iq={len(processor.iq)} "
             f"mem_stage={len(processor._mem_stage)} "
             f"lq={len(processor.lsq.lq)} sq={len(processor.lsq.sq)} "
             f"last_commit_cycle={processor._last_commit_cycle}")
    if seq >= 0:
        state += f" failing_seq={seq}"
    return DiagnosticBundle(
        trace_name=trace.name if trace is not None else "(none)",
        cycle=processor.cycle,
        machine_summary=_machine_summary(processor.machine),
        pipeline_state=state,
        pipetrace=pipetrace,
        trace_window=_trace_window(trace, trace_index),
        failures=list(failures or ()),
    )
