"""Golden memory-model oracle: sequential in-order replay of a trace.

The simulator is trace driven and never interprets data values, so
"the load got the right value" is expressed in terms of *sources*: the
architecturally-correct source of a load is the youngest earlier store
in trace program order whose access overlaps the load's bytes (or
initial memory when no such store exists).  A sequential processor —
one instruction at a time, in order — would observe exactly that store,
which is what :class:`MemoryOracle` computes in one pass.

The out-of-order machine executes the same trace with forwarding,
speculation, and squash-and-replay; the
:class:`~repro.validate.checker.ValidationChecker` reconstructs which
store each *committed* load actually observed (the forwarding store,
or the youngest store that had written the data cache when the load
performed its access) and cross-checks it against this oracle.  Any
mismatch is a memory-ordering bug the violation-detection machinery
failed to catch.

Byte granularity matters: when several stores each cover part of a
load, both the simulator's forwarding and a real last-writer-wins
memory agree that the *youngest overlapping* store is the observed
source, so the oracle reports ``max`` over the load's bytes.
"""

from __future__ import annotations

from typing import Dict, Optional


class MemoryOracle:
    """Per-load architecturally-correct sources for one trace."""

    def __init__(self, trace) -> None:
        self.trace = trace
        #: load trace index -> source store trace index (None = memory).
        self._correct: Dict[int, Optional[int]] = {}
        last_writer: Dict[int, int] = {}   # byte address -> store index
        for index, inst in enumerate(trace):
            if inst.is_store:
                for byte in range(inst.addr, inst.addr + inst.size):
                    last_writer[byte] = index
            elif inst.is_load:
                source = max(
                    (last_writer.get(byte, -1)
                     for byte in range(inst.addr, inst.addr + inst.size)),
                    default=-1)
                self._correct[index] = source if source >= 0 else None

    def correct_source(self, trace_index: int) -> Optional[int]:
        """Store trace index a sequential machine would observe.

        ``None`` means the load reads initial memory.  Raises
        :class:`KeyError` for indices that are not loads.
        """
        return self._correct[trace_index]

    def is_load(self, trace_index: int) -> bool:
        return trace_index in self._correct

    def __len__(self) -> int:
        return len(self._correct)


class CommittedMemory:
    """Byte-versioned model of the committed (architectural) memory.

    Tracks, per byte, the trace index of the youngest *committed* store;
    a load that reads the data cache observes ``version`` of its bytes
    at the moment of its access.
    """

    def __init__(self) -> None:
        self._version: Dict[int, int] = {}

    def write(self, inst, trace_index: int) -> None:
        for byte in range(inst.addr, inst.addr + inst.size):
            self._version[byte] = trace_index

    def version(self, inst) -> Optional[int]:
        """Youngest committed store overlapping ``inst`` (None = none)."""
        source = max(
            (self._version.get(byte, -1)
             for byte in range(inst.addr, inst.addr + inst.size)),
            default=-1)
        return source if source >= 0 else None
