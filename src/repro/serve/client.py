"""Stdlib client for the job server, plus a threaded load generator.

:class:`ServeClient` speaks the server's tiny JSON API over
``http.client`` (which decodes the chunked progress stream
transparently, so :meth:`ServeClient.stream` is just NDJSON lines).
Failures map to typed exceptions the CLI turns into distinct exit
codes: :class:`ServeUnavailable` (no server), :class:`SpecRejected`
(HTTP 400), :class:`Backpressure` (HTTP 429, with the server's
``Retry-After`` hint attached).

:func:`generate_load` is the serving bench's traffic source: N client
threads submitting (heavily overlapping) sweep specs concurrently,
honouring backpressure, each streaming its job to completion — the
closest a test harness gets to "millions of users" on one box.
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import time
import urllib.parse
from typing import Dict, Iterator, List, Optional, Sequence

from repro.obs.telemetry import TRACE_HEADER


class ServeError(RuntimeError):
    """Any client-visible serving failure."""


class ServeUnavailable(ServeError):
    """The server cannot be reached (connection refused / dropped)."""


class ServeStalled(ServeError):
    """A progress stream went silent past the stall budget — no events
    *and* no heartbeats for ``stall_after_s`` seconds, which means the
    server is wedged or the connection is dead (a healthy server emits
    a heartbeat every ``heartbeat_s``)."""


class SpecRejected(ServeError):
    """The server rejected the sweep spec (HTTP 400)."""


class Backpressure(ServeError):
    """Admission refused (HTTP 429); retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class ServeClient:
    """One server endpoint; every call opens its own connection."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8642,
                 timeout: float = 60.0) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 payload: Optional[Dict[str, object]] = None,
                 headers: Optional[Dict[str, str]] = None,
                 ) -> Dict[str, object]:
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            body = json.dumps(payload).encode() if payload is not None \
                else None
            headers = dict(headers or {})
            if body is not None:
                headers["Content-Type"] = "application/json"
            try:
                connection.request(method, path, body=body, headers=headers)
                response = connection.getresponse()
                raw = response.read()
            except OSError as error:
                raise ServeUnavailable(
                    f"cannot reach http://{self.host}:{self.port}: "
                    f"{error}") from None
            try:
                decoded = json.loads(raw.decode() or "{}")
            except ValueError:
                decoded = {"error": raw.decode(errors="replace")}
            if response.status == 400:
                raise SpecRejected(str(decoded.get("error", "bad request")))
            if response.status == 429:
                retry = response.getheader("Retry-After")
                try:
                    retry_s = float(retry) if retry else 1.0
                except ValueError:
                    retry_s = 1.0
                raise Backpressure(str(decoded.get("error", "busy")),
                                   retry_after_s=retry_s)
            if response.status >= 500:
                raise ServeError(
                    f"server error {response.status}: "
                    f"{decoded.get('error', raw[:200])}")
            if response.status not in (200, 202):
                raise ServeError(
                    f"HTTP {response.status} for {method} {path}: "
                    f"{decoded.get('error', '')}")
            return decoded
        finally:
            connection.close()

    # -- API --------------------------------------------------------------

    def healthz(self) -> bool:
        return bool(self._request("GET", "/healthz").get("ok"))

    def stats(self) -> Dict[str, object]:
        return self._request("GET", "/stats")

    def metrics(self) -> str:
        """Raw Prometheus text from ``GET /metrics``."""
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=self.timeout)
        try:
            try:
                connection.request("GET", "/metrics")
                response = connection.getresponse()
                raw = response.read()
            except OSError as error:
                raise ServeUnavailable(
                    f"cannot reach http://{self.host}:{self.port}: "
                    f"{error}") from None
            if response.status != 200:
                raise ServeError(f"HTTP {response.status} for /metrics")
            return raw.decode()
        finally:
            connection.close()

    def spans(self, job_id: str) -> Dict[str, object]:
        """The job's span records and (once done) its span tree."""
        return self._request("GET", f"/jobs/{job_id}/spans")

    def logs(self, job: Optional[str] = None,
             level: Optional[str] = None,
             limit: int = 200) -> Dict[str, object]:
        """Structured log records from the server's bounded ring."""
        params = {"limit": str(limit)}
        if job is not None:
            params["job"] = job
        if level is not None:
            params["level"] = level
        return self._request(
            "GET", "/logs?" + urllib.parse.urlencode(params))

    def submit(self, spec: Dict[str, object],
               trace: Optional[str] = None) -> Dict[str, object]:
        """POST a sweep spec; returns the job summary (with ``id``).

        ``trace`` joins the job to a client-side trace: it is sent as
        the ``X-Repro-Trace`` header and the server parents its spans
        under it.  The reply's ``heartbeat_s`` (the server's stream
        heartbeat interval) is attached to the returned summary so
        callers can size a stall timeout.
        """
        headers = {TRACE_HEADER: trace} if trace else None
        reply = self._request("POST", "/jobs", payload=spec,
                              headers=headers)
        job = reply.get("job")
        if not isinstance(job, dict):
            raise ServeError(f"malformed submit reply: {reply!r}")
        if "heartbeat_s" in reply:
            job.setdefault("heartbeat_s", reply["heartbeat_s"])
        return job

    def submit_with_retry(self, spec: Dict[str, object],
                          attempts: int = 60,
                          trace: Optional[str] = None,
                          ) -> Dict[str, object]:
        """Submit, sleeping out 429s — the well-behaved-client loop."""
        for attempt in range(max(attempts, 1)):
            try:
                return self.submit(spec, trace=trace)
            except Backpressure as backpressure:
                if attempt + 1 >= attempts:
                    raise
                time.sleep(max(backpressure.retry_after_s, 0.05))
        raise ServeError("unreachable")  # pragma: no cover

    def job(self, job_id: str) -> Dict[str, object]:
        reply = self._request("GET", f"/jobs/{job_id}")
        job = reply.get("job")
        if not isinstance(job, dict):
            raise ServeError(f"malformed job reply: {reply!r}")
        return job

    def result(self, job_id: str) -> Dict[str, object]:
        return self._request("GET", f"/jobs/{job_id}/result")

    def stream(self, job_id: str,
               stall_after_s: Optional[float] = None,
               ) -> Iterator[Dict[str, object]]:
        """Yield progress events (NDJSON) until the job is done.

        ``stall_after_s`` bounds the silence between consecutive lines
        (events *or* heartbeats); exceeding it raises
        :class:`ServeStalled`.  Size it as N missed heartbeats:
        ``misses * heartbeat_s`` from the submit reply.
        """
        timeout = self.timeout if stall_after_s is None \
            else max(stall_after_s, 0.05)
        connection = http.client.HTTPConnection(
            self.host, self.port, timeout=timeout)
        try:
            try:
                connection.request("GET", f"/jobs/{job_id}/stream")
                response = connection.getresponse()
            except OSError as error:
                raise ServeUnavailable(
                    f"cannot reach http://{self.host}:{self.port}: "
                    f"{error}") from None
            if response.status != 200:
                raise ServeError(
                    f"HTTP {response.status} for stream of {job_id}")
            try:
                for raw in response:
                    line = raw.strip()
                    if line:
                        yield json.loads(line.decode())
            except socket.timeout:  # 3.9-compatible (TimeoutError in 3.10+)
                raise ServeStalled(
                    f"stream of {job_id} silent for {timeout:.1f}s "
                    "(no events, no heartbeats)") from None
        finally:
            connection.close()

    def wait(self, job_id: str,
             stall_after_s: Optional[float] = None) -> Dict[str, object]:
        """Consume the progress stream, then return the full result."""
        for _event in self.stream(job_id, stall_after_s=stall_after_s):
            pass
        return self.result(job_id)


def _percentile(values: Sequence[float], fraction: float) -> float:
    if not values:
        return 0.0
    ordered = sorted(values)
    index = min(len(ordered) - 1,
                max(0, int(round(fraction * (len(ordered) - 1)))))
    return ordered[index]


def generate_load(host: str, port: int, specs: Sequence[Dict[str, object]],
                  clients: int = 4) -> Dict[str, object]:
    """Drive the server with ``clients`` threads submitting ``specs``
    round-robin, each streaming its job to completion.

    Returns a summary: jobs completed, cells by source, backpressure
    hits, and job-latency percentiles (milliseconds).  Used by the
    serving bench and the CI smoke; import-safe for notebooks.
    """
    lock = threading.Lock()
    latencies_ms: List[float] = []
    outcomes: List[Dict[str, object]] = []
    backpressured = [0]

    def _drive(spec: Dict[str, object]) -> None:
        client = ServeClient(host, port)
        started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        try:
            job = client.submit_with_retry(spec)
        except Backpressure:
            with lock:
                backpressured[0] += 1
            return
        final = client.wait(str(job["id"]))
        elapsed_ms = \
            (time.perf_counter() - started) * 1000.0  # sim-lint: ignore[SIM-D004]
        with lock:
            latencies_ms.append(elapsed_ms)
            outcomes.append(final)

    threads: List[threading.Thread] = []
    for index, spec in enumerate(specs):
        thread = threading.Thread(target=_drive, args=(spec,),
                                  name=f"loadgen-{index}")
        threads.append(thread)
    # Release in waves of ``clients`` so concurrency is bounded like a
    # real fleet front end, not an unbounded thundering herd.
    for wave_start in range(0, len(threads), max(clients, 1)):
        wave = threads[wave_start:wave_start + max(clients, 1)]
        for thread in wave:
            thread.start()
        for thread in wave:
            thread.join()

    sources: Dict[str, int] = {}
    failed = 0
    for final in outcomes:
        job = final.get("job")
        if isinstance(job, dict):
            failed += int(job.get("failed", 0) or 0)
            job_sources = job.get("sources")
            if isinstance(job_sources, dict):
                for name, count in job_sources.items():
                    sources[name] = sources.get(name, 0) + int(count)
    return {
        "jobs_submitted": len(specs),
        "jobs_completed": len(outcomes),
        "backpressured": backpressured[0],
        "failed_cells": failed,
        "sources": sources,
        "job_ms_p50": round(_percentile(latencies_ms, 0.50), 3),
        "job_ms_p90": round(_percentile(latencies_ms, 0.90), 3),
        "job_ms_max": round(max(latencies_ms), 3) if latencies_ms else 0.0,
    }
