"""Fleet telemetry bundle: the serve stack's spans + metrics + logs.

One :class:`FleetTelemetry` instance per :class:`~repro.serve.server.
ServeApp` owns the span tracer, the metrics registry (with the full
metric catalog declared up front — see ``docs/TELEMETRY.md``), and the
structured-log ring.

Two instrumentation styles coexist deliberately:

* **hot-path increments** — request/cell/heartbeat counters and the
  latency histograms are bumped inline where the event happens;
* **scrape-time mirrors** — subsystems that already keep authoritative
  counters (worker pool, single-flight table, job store, result cache)
  are *mirrored* into the exposition in :meth:`FleetTelemetry.refresh`,
  so the hot paths stay untouched and the numbers can never drift from
  ``/stats``.

Everything here is coordinator-side: worker processes keep their own
result caches and report nothing — their contribution is visible as
the ``worker.exec`` span and the per-worker pool gauges.
"""

from __future__ import annotations

from typing import Any, Optional, TextIO

from repro.obs.telemetry import (
    LogRing,
    MetricsRegistry,
    PROBE_BUCKETS_MS,
    SpanTracer,
)


class FleetTelemetry:
    """Tracer + registry + log ring, plus the serve metric catalog."""

    def __init__(self, echo: Optional[TextIO] = None) -> None:
        self.tracer = SpanTracer()
        self.registry = MetricsRegistry()
        self.ring = LogRing(echo=echo)
        registry = self.registry

        # -- admission / HTTP ------------------------------------------
        self.http_requests = registry.counter(
            "repro_http_requests_total", "HTTP requests served",
            ("route", "method", "status"))
        self.jobs_admitted = registry.counter(
            "repro_jobs_admitted_total", "Jobs accepted by admission")
        self.jobs_rejected = registry.counter(
            "repro_jobs_rejected_total",
            "Admissions refused with 429 (the backpressure rate)")
        self.jobs_active = registry.gauge(
            "repro_jobs_active", "Jobs currently queued or running")

        # -- cells / cache ---------------------------------------------
        self.cells = registry.counter(
            "repro_cells_total",
            "Cells resolved, by source (cache/computed/coalesced/failed)",
            ("source",))
        self.cell_service_ms = registry.histogram(
            "repro_cell_service_ms",
            "Per-cell service latency by source, milliseconds",
            ("source",))
        self.cache_probe_ms = registry.histogram(
            "repro_cache_probe_ms",
            "Inline result-cache probe latency by outcome, milliseconds",
            ("result",), buckets=PROBE_BUCKETS_MS)
        self.cache_hits = registry.counter(
            "repro_cache_hits_total", "Result-cache probe hits")
        self.cache_misses = registry.counter(
            "repro_cache_misses_total", "Result-cache probe misses")
        self.cache_stores = registry.counter(
            "repro_cache_stores_total",
            "Results written to the cache (coordinator stores plus one "
            "per computed cell — workers store from their own process)")

        # -- coalescing -------------------------------------------------
        self.singleflight = registry.counter(
            "repro_singleflight_total",
            "Single-flight outcomes (role=leader|joined)", ("role",))
        self.singleflight_inflight = registry.gauge(
            "repro_singleflight_inflight",
            "Computations currently in the single-flight table")
        self.coalescing_ratio = registry.gauge(
            "repro_coalescing_ratio",
            "Fraction of requested cells served by joining another "
            "request's flight")

        # -- worker pool ------------------------------------------------
        self.pool_steals = registry.counter(
            "repro_pool_steals_total",
            "Tasks stolen from another worker's backlog")
        self.pool_respawns = registry.counter(
            "repro_pool_respawns_total",
            "Workers respawned after a crash")
        self.pool_pending = registry.gauge(
            "repro_pool_pending", "Tasks queued or in flight in the pool")
        self.pool_backlog = registry.gauge(
            "repro_pool_backlog_depth", "Queued tasks per worker",
            ("worker",))
        self.worker_busy = registry.gauge(
            "repro_pool_worker_busy",
            "1 when the worker is computing a cell, else 0", ("worker",))
        self.worker_busy_s = registry.counter(
            "repro_pool_worker_busy_seconds_total",
            "Seconds each worker spent computing cells", ("worker",))
        self.worker_cells = registry.counter(
            "repro_pool_worker_cells_total",
            "Cells each worker finished successfully", ("worker",))

        # -- streams / telemetry self-accounting -----------------------
        self.heartbeats = registry.counter(
            "repro_stream_heartbeats_total",
            "Heartbeat records emitted on progress streams")
        self.log_records = registry.counter(
            "repro_log_records_total", "Structured log records by level",
            ("level",))
        self.spans_finished = registry.counter(
            "repro_spans_finished_total", "Spans finished by the tracer")

    # -- logging ----------------------------------------------------------

    def log(self, level: str, event: str, *,
            trace: Optional[str] = None, job: Optional[str] = None,
            cell: Optional[int] = None, **fields: object) -> None:
        self.ring.log(level, event, trace=trace, job=job, cell=cell,
                      **fields)
        self.log_records.inc(level=level)

    # -- scrape-time mirroring --------------------------------------------

    def refresh(self, app: Any) -> None:
        """Mirror live subsystem counters into the exposition.

        ``app`` is the owning ServeApp (duck-typed to avoid an import
        cycle).  Called on every ``/metrics`` scrape and by ``stats``.
        """
        store = app.store
        self.jobs_active.set(store.active())
        self.jobs_rejected.set_total(store.rejected)

        flights = app.flights
        self.singleflight.set_total(flights.leaders, role="leader")
        self.singleflight.set_total(flights.joined, role="joined")
        self.singleflight_inflight.set(flights.inflight())
        requested = max(app.cells_requested, 1)
        self.coalescing_ratio.set(
            round(app.cells_coalesced / requested, 6))

        pool = app.pool
        self.pool_steals.set_total(pool.steals)
        self.pool_respawns.set_total(pool.respawns)
        self.pool_pending.set(pool.pending())
        for row in pool.worker_rows():
            worker = str(row["id"])
            self.pool_backlog.set(int(row["backlog"]), worker=worker)
            self.worker_busy.set(1 if row["state"] == "busy" else 0,
                                 worker=worker)
            self.worker_busy_s.set_total(float(row["busy_s"]),
                                         worker=worker)
            self.worker_cells.set_total(int(row["done"]), worker=worker)

        cache = app.engine.cache
        if cache is not None:
            self.cache_hits.set_total(cache.hits)
            self.cache_misses.set_total(cache.misses)
            # Worker-side stores are invisible to the coordinator's
            # ResultCache, but every computed cell stored exactly once.
            self.cache_stores.set_total(cache.stores
                                        + app.cells_computed)

        self.spans_finished.set_total(self.tracer.finished)

    def render(self, app: Any) -> str:
        """The ``GET /metrics`` body (refreshes mirrors first)."""
        self.refresh(app)
        return self.registry.render()
