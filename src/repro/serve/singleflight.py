"""Single-flight request coalescing: one computation per cache digest.

Thousands of concurrent design-space jobs overlap heavily (the
speculative-allocation LSQ sweeps of arXiv 2311.08198 re-visit the same
(benchmark, machine, seed) cells from every search trajectory), so the
serving layer's throughput is decided by *dedupe*, not raw simulation
speed.  The :class:`SingleFlight` table holds one in-flight computation
per key — the engine's content-address digest — and every concurrent
request for the same key awaits that computation instead of starting
its own.  Completed cells are no longer in the table at all: they are
served from the on-disk cache in microseconds by the next leader.

The leader/joiner split is observable (``leaders``/``joined``
counters) because the serving bench's coalescing ratio is an SLO.
Errors propagate to every waiter: a failed flight fails every job that
was counting on it, silently succeeding for some is not an option.
"""

from __future__ import annotations

import asyncio
from typing import Awaitable, Callable, Dict, Optional, Tuple, TypeVar

T = TypeVar("T")


class _Flight:
    """One in-flight computation and the event its joiners wait on."""

    __slots__ = ("done", "value", "error")

    def __init__(self) -> None:
        self.done = asyncio.Event()
        self.value: Optional[object] = None
        self.error: Optional[BaseException] = None


class SingleFlight:
    """Keyed coalescing table for one event loop.

    ``run(key, compute)`` either starts ``compute()`` as the key's
    leader or joins the existing flight; either way it returns the
    leader's result (or raises the leader's error).  The table never
    retains finished flights — retention is the disk cache's job.
    """

    def __init__(self) -> None:
        self._flights: Dict[str, _Flight] = {}
        #: Computations started (one per unique in-flight key).
        self.leaders = 0
        #: Requests that joined an existing flight instead of computing.
        self.joined = 0
        #: High-water mark of concurrently in-flight keys — the
        #: telemetry layer exports it; a table that never grows past 1
        #: means the fleet is serializing, not coalescing.
        self.peak_inflight = 0

    def inflight(self) -> int:
        return len(self._flights)

    async def run(self, key: str,
                  compute: Callable[[], Awaitable[T]]) -> Tuple[bool, T]:
        """Coalesce ``compute`` on ``key``.

        Returns ``(led, value)`` where ``led`` says whether this call
        was the leader — the serving layer uses it to classify a cell
        as computed/cache versus coalesced.
        """
        existing = self._flights.get(key)
        if existing is not None:
            self.joined += 1
            await existing.done.wait()
            if existing.error is not None:
                raise existing.error
            return False, existing.value  # type: ignore[return-value]

        flight = _Flight()
        self._flights[key] = flight
        self.leaders += 1
        if len(self._flights) > self.peak_inflight:
            self.peak_inflight = len(self._flights)
        try:
            value = await compute()
        except BaseException as error:
            flight.error = error
            raise
        else:
            flight.value = value
            return True, value
        finally:
            del self._flights[key]
            flight.done.set()
