"""The asyncio HTTP front end: jobs in, progress streams out.

Stdlib only — ``asyncio.start_server`` plus a hand-rolled HTTP/1.1
handler (request line, headers, ``Content-Length`` bodies, chunked
responses).  One connection serves one request (``Connection: close``),
which keeps the parser honest and the streaming path trivial.

API (see ``docs/SERVING.md`` for the full contract)::

    GET  /healthz            liveness
    GET  /stats              server-wide counters (coalescing, cache,
                             workers, backpressure)
    POST /jobs               submit a sweep spec -> 202 {"job": {...}}
                             400 bad spec, 429 + Retry-After when full
    GET  /jobs/<id>          job snapshot (state + counts)
    GET  /jobs/<id>/stream   chunked NDJSON progress events, replayed
                             from the start, until the job is done
    GET  /jobs/<id>/result   per-cell rows once the job is done (409
                             while it is still running)

Per-cell flow: probe the on-disk result cache inline (microseconds —
the warm-hit path never touches a worker), else ship the cell to the
work-stealing pool; either way the computation is wrapped in the
single-flight table so identical cells across concurrent jobs resolve
to one computation.  Progress events for observed cells carry the
:mod:`repro.obs` interval sampler's tail via
:func:`repro.obs.metrics.stream_points`.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.harness.engine import CellResult, ResultCache, SweepEngine, \
    default_cache_dir
from repro.obs.metrics import stream_points
from repro.serve.jobs import Busy, CellRecord, Job, JobStore
from repro.serve.scheduler import WorkerPool
from repro.serve.singleflight import SingleFlight
from repro.serve.spec import SpecError, expand_cells, parse_spec

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
            429: "Too Many Requests", 500: "Internal Server Error"}


@dataclasses.dataclass
class ServeConfig:
    """Knobs for one server instance."""

    host: str = "127.0.0.1"
    port: int = 8642                 # 0 = ephemeral (tests/benches)
    workers: int = 2
    #: Active (queued+running) jobs admitted before 429.
    max_jobs: int = 8
    #: Cells a single job may expand to (400 beyond it).
    max_cells_per_job: int = 4096
    #: Retry-After hint handed to backpressured clients, seconds.
    retry_after_s: float = 1.0
    #: Result-cache directory; ``None`` = the engine default
    #: (REPRO_CACHE_DIR or .repro-cache).  ``no_cache`` disables disk
    #: caching entirely — coalescing still dedupes concurrent cells.
    cache_dir: Optional[str] = None
    no_cache: bool = False
    #: Interval-sampler rows per cell progress event (observed cells).
    stream_tail: int = 16


class ServeApp:
    """One server: job store + single-flight table + worker pool."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        cache_dir: Optional[Path]
        if self.config.no_cache:
            cache_dir = None
        elif self.config.cache_dir:
            cache_dir = Path(self.config.cache_dir)
        else:
            cache_dir = default_cache_dir()
        self._cache_dir = cache_dir
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        #: Serial engine used only for its microsecond cache probe.
        self.engine = SweepEngine(jobs=1, cache=cache)
        self.store = JobStore(max_active=self.config.max_jobs,
                              retry_after_s=self.config.retry_after_s)
        self.flights = SingleFlight()
        self.pool = WorkerPool(workers=self.config.workers,
                               cache_dir=cache_dir)
        self._server: Optional[asyncio.AbstractServer] = None
        self.port = self.config.port
        # Serving counters (the /stats payload and the bench's inputs).
        self.cells_requested = 0
        self.cells_cache = 0
        self.cells_computed = 0
        self.cells_coalesced = 0
        self.cells_failed = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host,
            port=self.config.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.close()

    # -- per-cell serving path --------------------------------------------

    async def _produce(self, record: CellRecord) -> Tuple[str, CellResult]:
        probed = self.engine.probe_cell(record.cell)
        if probed is not None:
            return "cache", probed
        outcome = await self.pool.submit(record.cell)
        return "computed", outcome

    async def _run_cell(self, job: Job, record: CellRecord) -> None:
        self.cells_requested += 1
        record.status = "running"
        started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        try:
            led, (source, outcome) = await self.flights.run(
                record.digest, lambda: self._produce(record))
        except Exception as error:  # noqa: BLE001 — fail the cell, not the job
            record.status = "failed"
            record.error = f"{type(error).__name__}: {error}"
            record.service_ms = \
                (time.perf_counter() - started) * 1000.0  # sim-lint: ignore[SIM-D004]
            self.cells_failed += 1
            job.failed_cells += 1
        else:
            if not led:
                source = "coalesced"
            stats = outcome.result.stats
            record.status = "done"
            record.source = source
            record.ipc = round(outcome.ipc, 6)
            record.cycles = stats.cycles
            record.committed = stats.committed
            record.sim_s = round(outcome.sim_s, 6)
            record.service_ms = round(
                (time.perf_counter() - started) * 1000.0, 3)  # sim-lint: ignore[SIM-D004]
            if source == "cache":
                self.cells_cache += 1
            elif source == "computed":
                self.cells_computed += 1
            else:
                self.cells_coalesced += 1
            job.done_cells += 1
        event = {"event": "cell", "job": job.id, **record.row()}
        if record.status == "done" and outcome.obs is not None:
            event["obs"] = {
                "samples": len(outcome.obs.samples),
                "tail": stream_points(outcome.obs.samples,
                                      self.config.stream_tail),
            }
        await job.publish(event)

    async def _run_job(self, job: Job) -> None:
        job.state = "running"
        await job.publish({"event": "job", **job.summary()})
        await asyncio.gather(*[self._run_cell(job, record)
                               for record in job.records])
        await job.finish()

    # -- HTTP plumbing ----------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, _headers, body = request
            await self._dispatch(method, target, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # noqa: BLE001 — a request must not kill the server
            try:
                self._write_json(writer, 500,
                                 {"error": f"{type(error).__name__}: "
                                           f"{error}"})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            try:
                writer.close()
            except RuntimeError:
                pass

    @staticmethod
    async def _read_request(
            reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length > 0 else b""
        return method, target, headers, body

    @staticmethod
    def _write_json(writer: asyncio.StreamWriter, status: int,
                    payload: Dict[str, object],
                    extra_headers: Optional[List[str]] = None) -> None:
        body = json.dumps(payload).encode()
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        lines.extend(extra_headers or [])
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)

    async def _dispatch(self, method: str, target: str, body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        if target == "/healthz" and method == "GET":
            self._write_json(writer, 200, {"ok": True})
        elif target == "/stats" and method == "GET":
            self._write_json(writer, 200, self.stats())
        elif target == "/jobs" and method == "POST":
            self._submit(body, writer)
        elif target.startswith("/jobs/"):
            await self._job_routes(method, target, writer)
        else:
            self._write_json(writer, 404, {"error": f"no route {target}"})
        await writer.drain()

    def _submit(self, body: bytes,
                writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as error:
            self._write_json(writer, 400,
                             {"error": f"body is not JSON: {error}"})
            return
        try:
            spec = parse_spec(payload)
        except SpecError as error:
            self._write_json(writer, 400, {"error": str(error)})
            return
        if spec.n_cells > self.config.max_cells_per_job:
            self._write_json(writer, 400, {
                "error": f"job expands to {spec.n_cells} cells, over the "
                         f"{self.config.max_cells_per_job}-cell cap; "
                         "split the sweep"})
            return
        try:
            job = self.store.admit(spec, expand_cells(spec))
        except Busy as error:
            self._write_json(
                writer, 429, {"error": str(error),
                              "retry_after_s": error.retry_after_s},
                extra_headers=[
                    f"Retry-After: {max(1, int(error.retry_after_s))}"])
            return
        asyncio.ensure_future(self._run_job(job))
        self._write_json(writer, 202, {"job": job.summary()})

    async def _job_routes(self, method: str, target: str,
                          writer: asyncio.StreamWriter) -> None:
        parts = target.strip("/").split("/")
        job = self.store.get(parts[1]) if len(parts) >= 2 else None
        if job is None or method != "GET":
            status = 405 if job is not None else 404
            self._write_json(writer, status,
                             {"error": f"no job at {target}"})
            return
        tail = parts[2] if len(parts) > 2 else ""
        if tail == "":
            self._write_json(writer, 200, {"job": job.summary()})
        elif tail == "stream":
            await self._stream_job(job, writer)
        elif tail == "result":
            if job.state != "done":
                self._write_json(writer, 409,
                                 {"error": f"job {job.id} is {job.state}; "
                                           "stream or poll until done"})
            else:
                self._write_json(writer, 200,
                                 {"job": job.summary(),
                                  "cells": job.result_rows()})
        else:
            self._write_json(writer, 404, {"error": f"no route {target}"})

    async def _stream_job(self, job: Job,
                          writer: asyncio.StreamWriter) -> None:
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head)
        index = 0
        while True:
            events = await job.events_after(index)
            if not events:
                break
            index += len(events)
            for event in events:
                data = (json.dumps(event) + "\n").encode()
                writer.write(b"%x\r\n" % len(data) + data + b"\r\n")
            try:
                await writer.drain()
            except ConnectionError:
                return
        writer.write(b"0\r\n\r\n")

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        cache = self.engine.cache
        return {
            "jobs": {"active": self.store.active(),
                     "total": self.store.total(),
                     "rejected": self.store.rejected,
                     "max_active": self.store.max_active},
            "cells": {"requested": self.cells_requested,
                      "cache": self.cells_cache,
                      "computed": self.cells_computed,
                      "coalesced": self.cells_coalesced,
                      "failed": self.cells_failed},
            "singleflight": {"leaders": self.flights.leaders,
                             "joined": self.flights.joined,
                             "inflight": self.flights.inflight()},
            "pool": {"workers": self.pool.workers,
                     "steals": self.pool.steals,
                     "respawns": self.pool.respawns,
                     "pending": self.pool.pending()},
            "cache": {"enabled": cache is not None,
                      "dir": str(cache.root) if cache is not None else None,
                      "hits": cache.hits if cache is not None else 0,
                      "misses": cache.misses if cache is not None else 0},
        }


def run_server(config: Optional[ServeConfig] = None) -> None:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop)."""
    async def _main() -> None:
        app = ServeApp(config)
        await app.start()
        print(f"repro serve: http://{app.config.host}:{app.port} "
              f"({app.pool.workers} worker(s), "
              f"cache={'off' if app.engine.cache is None else app.engine.cache.root})")
        try:
            await asyncio.Event().wait()
        finally:
            await app.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print("repro serve: shut down")
