"""The asyncio HTTP front end: jobs in, progress streams out.

Stdlib only — ``asyncio.start_server`` plus a hand-rolled HTTP/1.1
handler (request line, headers, ``Content-Length`` bodies, chunked
responses).  One connection serves one request (``Connection: close``),
which keeps the parser honest and the streaming path trivial.

API (see ``docs/SERVING.md`` and ``docs/TELEMETRY.md``)::

    GET  /healthz            liveness
    GET  /stats              server-wide counters (coalescing, cache,
                             per-worker state, backpressure)
    GET  /metrics            Prometheus text exposition of the fleet
                             metric catalog
    GET  /logs?job=&level=   structured JSON log records from the
                             bounded in-memory ring
    POST /jobs               submit a sweep spec -> 202 {"job": {...}}
                             400 bad spec, 429 + Retry-After when full;
                             an ``X-Repro-Trace`` header joins the
                             job to the client's trace
    GET  /jobs/<id>          job snapshot (state + counts)
    GET  /jobs/<id>/stream   chunked NDJSON progress events, replayed
                             from the start, until the job is done;
                             ``heartbeat`` records fill silent gaps
    GET  /jobs/<id>/result   per-cell rows once the job is done (409
                             while it is still running)
    GET  /jobs/<id>/spans    the job's finished span tree (latency
                             attribution; root duration == job wall
                             time)

Per-cell flow: probe the on-disk result cache inline (microseconds —
the warm-hit path never touches a worker), else ship the cell to the
work-stealing pool; either way the computation is wrapped in the
single-flight table so identical cells across concurrent jobs resolve
to one computation.  Every stage is a span (``cell`` -> ``flight`` ->
``cache.probe`` / ``queue.wait`` / ``worker.exec`` -> ``publish``), so
a job's latency decomposes the way a CPI stack decomposes cycles.
"""

from __future__ import annotations

import asyncio
import contextvars
import dataclasses
import json
import sys
import time
import urllib.parse
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.harness.engine import CellResult, ResultCache, SweepEngine, \
    default_cache_dir
from repro.obs.metrics import stream_points
from repro.obs.telemetry import build_tree, parse_trace_header
from repro.obs.telemetry.spans import Span
from repro.serve.jobs import Busy, CellRecord, Job, JobStore
from repro.serve.scheduler import WorkerPool
from repro.serve.singleflight import SingleFlight
from repro.serve.spec import SpecError, expand_cells, parse_spec
from repro.serve.telemetry import FleetTelemetry

_REASONS = {200: "OK", 202: "Accepted", 400: "Bad Request",
            404: "Not Found", 405: "Method Not Allowed", 409: "Conflict",
            429: "Too Many Requests", 500: "Internal Server Error"}

#: Status the current request has written (contextvar: every client
#: connection is its own task, so concurrent requests cannot race it).
_STATUS: "contextvars.ContextVar[int]" = \
    contextvars.ContextVar("repro_serve_status", default=0)


def _route_of(method: str, target: str) -> str:
    """Normalized route label for the request counter (bounded label
    cardinality: job ids and unknown paths never become labels)."""
    path = target.partition("?")[0]
    if path.startswith("/jobs/"):
        parts = path.strip("/").split("/")
        tail = parts[2] if len(parts) > 2 else ""
        if tail in ("stream", "result", "spans"):
            return f"/jobs/<id>/{tail}"
        return "/jobs/<id>"
    if path in ("/healthz", "/stats", "/metrics", "/logs", "/jobs"):
        return path
    return "<other>"


@dataclasses.dataclass
class ServeConfig:
    """Knobs for one server instance."""

    host: str = "127.0.0.1"
    port: int = 8642                 # 0 = ephemeral (tests/benches)
    workers: int = 2
    #: Active (queued+running) jobs admitted before 429.
    max_jobs: int = 8
    #: Cells a single job may expand to (400 beyond it).
    max_cells_per_job: int = 4096
    #: Retry-After hint handed to backpressured clients, seconds.
    retry_after_s: float = 1.0
    #: Result-cache directory; ``None`` = the engine default
    #: (REPRO_CACHE_DIR or .repro-cache).  ``no_cache`` disables disk
    #: caching entirely — coalescing still dedupes concurrent cells.
    cache_dir: Optional[str] = None
    no_cache: bool = False
    #: Interval-sampler rows per cell progress event (observed cells).
    stream_tail: int = 16
    #: Seconds of stream silence before a ``heartbeat`` record is
    #: emitted (<= 0 disables heartbeats).  Clients size their stall
    #: timeout as N missed heartbeats.
    heartbeat_s: float = 2.0
    #: Echo every structured log record to stdout as a JSON line
    #: (``repro serve`` turns this on; embedded harnesses keep quiet).
    echo_logs: bool = False


class ServeApp:
    """One server: job store + single-flight table + worker pool."""

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig()
        cache_dir: Optional[Path]
        if self.config.no_cache:
            cache_dir = None
        elif self.config.cache_dir:
            cache_dir = Path(self.config.cache_dir)
        else:
            cache_dir = default_cache_dir()
        self._cache_dir = cache_dir
        cache = ResultCache(cache_dir) if cache_dir is not None else None
        #: Serial engine used only for its microsecond cache probe.
        self.engine = SweepEngine(jobs=1, cache=cache)
        self.store = JobStore(max_active=self.config.max_jobs,
                              retry_after_s=self.config.retry_after_s)
        self.flights = SingleFlight()
        self.pool = WorkerPool(workers=self.config.workers,
                               cache_dir=cache_dir)
        self.telemetry = FleetTelemetry(
            echo=sys.stdout if self.config.echo_logs else None)
        self._server: Optional[asyncio.AbstractServer] = None
        self.port = self.config.port
        # Serving counters (the /stats payload and the bench's inputs).
        self.cells_requested = 0
        self.cells_cache = 0
        self.cells_computed = 0
        self.cells_coalesced = 0
        self.cells_failed = 0

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        await self.pool.start()
        self._server = await asyncio.start_server(
            self._handle_client, host=self.config.host,
            port=self.config.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def close(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        await self.pool.close()

    # -- per-cell serving path --------------------------------------------

    async def _produce(self, job: Job, record: CellRecord,
                       parent: Span) -> Tuple[str, CellResult]:
        """Leader-side production: probe the cache, else go through the
        pool — with each stage attributed to its own span."""
        tele = self.telemetry
        tracer = tele.tracer
        probe_span = tracer.start("cache.probe", parent=parent,
                                  cell=record.index)
        probed = self.engine.probe_cell(record.cell)
        probe_ms = (time.perf_counter()  # sim-lint: ignore[SIM-D004]
                    - probe_span.start_s) * 1000.0
        tracer.finish(probe_span,
                      status="hit" if probed is not None else "miss")
        tele.cache_probe_ms.observe(
            probe_ms, result="hit" if probed is not None else "miss")
        if probed is not None:
            return "cache", probed

        queue_span = tracer.start("queue.wait", parent=parent,
                                  cell=record.index)
        slot: Dict[str, Span] = {}

        def _dispatched(worker_id: int, stolen: bool) -> None:
            tracer.finish(queue_span, worker=worker_id, stolen=stolen)
            slot["exec"] = tracer.start("worker.exec", parent=parent,
                                        cell=record.index,
                                        worker=worker_id)

        try:
            outcome = await self.pool.submit(record.cell,
                                             on_dispatch=_dispatched)
        except Exception:
            exec_span = slot.get("exec")
            if exec_span is not None:
                tracer.finish(exec_span, status="error")
            else:
                tracer.finish(queue_span, status="error")
            raise
        exec_span = slot.get("exec")
        if exec_span is not None:
            end_s = time.perf_counter()  # sim-lint: ignore[SIM-D004]
            # Attribute the execution window: the worker's reported
            # pure-simulation seconds, then cache store + transport.
            sim_end = min(exec_span.start_s + outcome.sim_s, end_s)
            sim_span = tracer.start("simulate", parent=exec_span,
                                    cell=record.index,
                                    start_s=exec_span.start_s)
            tracer.finish(sim_span, end_s=sim_end,
                          sim_s=round(outcome.sim_s, 6))
            store_span = tracer.start("cache.store", parent=exec_span,
                                      cell=record.index, start_s=sim_end,
                                      note="store + result transport")
            tracer.finish(store_span, end_s=end_s)
            tracer.finish(exec_span, end_s=end_s)
        return "computed", outcome

    async def _run_cell(self, job: Job, record: CellRecord) -> None:
        tele = self.telemetry
        tracer = tele.tracer
        self.cells_requested += 1
        record.status = "running"
        root = job.root_span if isinstance(job.root_span, Span) else None
        cell_span = tracer.start("cell", parent=root, job=job.id,
                                 cell=record.index,
                                 benchmark=record.cell.benchmark,
                                 label=record.cell.label,
                                 seed=record.cell.seed,
                                 digest=record.digest[:12])
        flight_span = tracer.start("flight", parent=cell_span,
                                   cell=record.index)
        started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        outcome: Optional[CellResult] = None
        try:
            led, (source, outcome) = await self.flights.run(
                record.digest,
                lambda: self._produce(job, record, flight_span))
        except Exception as error:  # noqa: BLE001 — fail the cell, not the job
            record.status = "failed"
            record.error = f"{type(error).__name__}: {error}"
            record.service_ms = round(
                (time.perf_counter() - started) * 1000.0, 3)  # sim-lint: ignore[SIM-D004]
            self.cells_failed += 1
            job.failed_cells += 1
            tracer.finish(flight_span, status="error")
            tele.cells.inc(source="failed")
            tele.cell_service_ms.observe(record.service_ms,
                                         source="failed")
            tele.log("error", "cell.failed", trace=job.trace_id,
                     job=job.id, cell=record.index,
                     benchmark=record.cell.benchmark,
                     label=record.cell.label, error=record.error)
        else:
            if not led:
                source = "coalesced"
            stats = outcome.result.stats
            record.status = "done"
            record.source = source
            record.ipc = round(outcome.ipc, 6)
            record.cycles = stats.cycles
            record.committed = stats.committed
            record.sim_s = round(outcome.sim_s, 6)
            record.service_ms = round(
                (time.perf_counter() - started) * 1000.0, 3)  # sim-lint: ignore[SIM-D004]
            if source == "cache":
                self.cells_cache += 1
            elif source == "computed":
                self.cells_computed += 1
            else:
                self.cells_coalesced += 1
            job.done_cells += 1
            tracer.finish(flight_span, source=source, coalesced=not led)
            tele.cells.inc(source=source)
            tele.cell_service_ms.observe(record.service_ms, source=source)
            tele.log("info", "cell.done", trace=job.trace_id, job=job.id,
                     cell=record.index, benchmark=record.cell.benchmark,
                     label=record.cell.label, source=source,
                     ipc=record.ipc, service_ms=record.service_ms)
        event = {"event": "cell", "job": job.id, **record.row()}
        if record.status == "done" and outcome is not None \
                and outcome.obs is not None:
            event["obs"] = {
                "samples": len(outcome.obs.samples),
                "tail": stream_points(outcome.obs.samples,
                                      self.config.stream_tail),
            }
        publish_span = tracer.start("publish", parent=cell_span,
                                    cell=record.index)
        await job.publish(event)
        tracer.finish(publish_span)
        tracer.finish(cell_span, status=record.status)

    async def _run_job(self, job: Job) -> None:
        tele = self.telemetry
        job.state = "running"
        tele.log("info", "job.start", trace=job.trace_id, job=job.id,
                 n_cells=len(job.records))
        await job.publish({"event": "job", **job.summary()})
        await asyncio.gather(*[self._run_cell(job, record)
                               for record in job.records])
        await job.finish()
        root = job.root_span if isinstance(job.root_span, Span) else None
        if root is not None:
            # Root span == job wall time, exactly: same clock readings
            # the job summary's elapsed_s is computed from.
            tele.tracer.finish(root, end_s=job.finished_s, status="done",
                               done=job.done_cells,
                               failed=job.failed_cells)
        tele.log("info", "job.done", trace=job.trace_id, job=job.id,
                 done=job.done_cells, failed=job.failed_cells,
                 elapsed_s=job.summary()["elapsed_s"])

    # -- HTTP plumbing ----------------------------------------------------

    async def _handle_client(self, reader: asyncio.StreamReader,
                             writer: asyncio.StreamWriter) -> None:
        method = ""
        target = ""
        try:
            request = await self._read_request(reader)
            if request is None:
                return
            method, target, headers, body = request
            await self._dispatch(method, target, headers, body, writer)
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as error:  # noqa: BLE001 — a request must not kill the server
            self.telemetry.log("error", "http.error",
                               method=method, target=target,
                               error=f"{type(error).__name__}: {error}")
            try:
                self._write_json(writer, 500,
                                 {"error": f"{type(error).__name__}: "
                                           f"{error}"})
            except (ConnectionError, RuntimeError):
                pass
        finally:
            if method:
                status = _STATUS.get()
                self.telemetry.http_requests.inc(
                    route=_route_of(method, target), method=method,
                    status=str(status) if status else "aborted")
                if status >= 400:
                    self.telemetry.log("warning", "http.rejected",
                                       method=method, target=target,
                                       status=status)
            try:
                writer.close()
            except RuntimeError:
                pass

    @staticmethod
    async def _read_request(
            reader: asyncio.StreamReader,
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        line = await reader.readline()
        if not line:
            return None
        parts = line.decode("latin-1").split()
        if len(parts) < 2:
            return None
        method, target = parts[0].upper(), parts[1]
        headers: Dict[str, str] = {}
        while True:
            raw = await reader.readline()
            if raw in (b"\r\n", b"\n", b""):
                break
            name, _, value = raw.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length") or 0)
        body = await reader.readexactly(length) if length > 0 else b""
        return method, target, headers, body

    @staticmethod
    def _write_json(writer: asyncio.StreamWriter, status: int,
                    payload: Dict[str, object],
                    extra_headers: Optional[List[str]] = None) -> None:
        body = json.dumps(payload).encode()
        lines = [f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}",
                 "Content-Type: application/json",
                 f"Content-Length: {len(body)}",
                 "Connection: close"]
        lines.extend(extra_headers or [])
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        _STATUS.set(status)

    @staticmethod
    def _write_text(writer: asyncio.StreamWriter, status: int,
                    text: str) -> None:
        body = text.encode()
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'OK')}\r\n"
                "Content-Type: text/plain; version=0.0.4; "
                "charset=utf-8\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head + body)
        _STATUS.set(status)

    async def _dispatch(self, method: str, target: str,
                        headers: Dict[str, str], body: bytes,
                        writer: asyncio.StreamWriter) -> None:
        path, _, query = target.partition("?")
        if path == "/healthz" and method == "GET":
            self._write_json(writer, 200, {"ok": True})
        elif path == "/stats" and method == "GET":
            self._write_json(writer, 200, self.stats())
        elif path == "/metrics" and method == "GET":
            self._write_text(writer, 200, self.telemetry.render(self))
        elif path == "/logs" and method == "GET":
            self._logs(query, writer)
        elif path == "/jobs" and method == "POST":
            self._submit(body, headers, writer)
        elif path.startswith("/jobs/"):
            await self._job_routes(method, path, writer)
        else:
            self._write_json(writer, 404, {"error": f"no route {target}"})
        await writer.drain()

    def _logs(self, query: str, writer: asyncio.StreamWriter) -> None:
        params = urllib.parse.parse_qs(query)
        job = params.get("job", [None])[0]
        level = params.get("level", [None])[0]
        try:
            limit = int(params.get("limit", ["200"])[0])
        except ValueError:
            limit = 200
        rows = self.telemetry.ring.rows(job=job, level=level,
                                        limit=max(limit, 1))
        self._write_json(writer, 200,
                         {"records": rows,
                          "dropped": self.telemetry.ring.dropped})

    def _submit(self, body: bytes, headers: Dict[str, str],
                writer: asyncio.StreamWriter) -> None:
        tele = self.telemetry
        tracer = tele.tracer
        trace_id, parent_id = parse_trace_header(
            headers.get("x-repro-trace"))
        submit_span = tracer.start(
            "http.submit",
            trace_id=trace_id if trace_id else tracer.new_trace_id(),
            parent_id=parent_id)
        parse_span = tracer.start("spec.parse", parent=submit_span)

        def _reject(status: int, message: str,
                    extra: Optional[List[str]] = None,
                    payload_extra: Optional[Dict[str, object]] = None,
                    ) -> None:
            tracer.finish(submit_span, status="rejected", http=status)
            tele.log("warning", "submit.rejected",
                     trace=submit_span.trace_id, status=status,
                     error=message)
            reply: Dict[str, object] = {"error": message}
            reply.update(payload_extra or {})
            self._write_json(writer, status, reply, extra_headers=extra)

        try:
            payload = json.loads(body.decode() or "null")
        except (ValueError, UnicodeDecodeError) as error:
            tracer.finish(parse_span, status="error")
            _reject(400, f"body is not JSON: {error}")
            return
        try:
            spec = parse_spec(payload)
        except SpecError as error:
            tracer.finish(parse_span, status="error")
            _reject(400, str(error))
            return
        if spec.n_cells > self.config.max_cells_per_job:
            tracer.finish(parse_span, status="error")
            _reject(400, f"job expands to {spec.n_cells} cells, over "
                         f"the {self.config.max_cells_per_job}-cell "
                         "cap; split the sweep")
            return
        tracer.finish(parse_span, n_cells=spec.n_cells)
        admit_span = tracer.start("admit", parent=submit_span)
        try:
            job = self.store.admit(spec, expand_cells(spec))
        except Busy as error:
            tracer.finish(admit_span, status="busy")
            _reject(429, str(error),
                    extra=[f"Retry-After: "
                           f"{max(1, int(error.retry_after_s))}"],
                    payload_extra={"retry_after_s": error.retry_after_s})
            return
        tracer.finish(admit_span, job=job.id)
        tele.jobs_admitted.inc()
        job.trace_id = submit_span.trace_id
        # Re-home the admission-time spans under the job so they show
        # up in /jobs/<id>/spans, then open the job's root span pinned
        # to the same clock reading elapsed_s counts from.
        tracer.adopt(parse_span, job.id)
        tracer.adopt(admit_span, job.id)
        submit_span.job = job.id
        job.root_span = tracer.start("job", parent=submit_span,
                                     job=job.id, start_s=job.created_s,
                                     n_cells=len(job.records))
        asyncio.ensure_future(self._run_job(job))
        self._write_json(writer, 202, {
            "job": job.summary(),
            "heartbeat_s": self.config.heartbeat_s})
        tracer.finish(submit_span, job_id=job.id)

    async def _job_routes(self, method: str, path: str,
                          writer: asyncio.StreamWriter) -> None:
        parts = path.strip("/").split("/")
        job = self.store.get(parts[1]) if len(parts) >= 2 else None
        if job is None or method != "GET":
            status = 405 if job is not None else 404
            self._write_json(writer, status,
                             {"error": f"no job at {path}"})
            return
        tail = parts[2] if len(parts) > 2 else ""
        if tail == "":
            self._write_json(writer, 200, {"job": job.summary()})
        elif tail == "stream":
            await self._stream_job(job, writer)
        elif tail == "result":
            if job.state != "done":
                self._write_json(writer, 409,
                                 {"error": f"job {job.id} is {job.state}; "
                                           "stream or poll until done"})
            else:
                self._write_json(writer, 200,
                                 {"job": job.summary(),
                                  "cells": job.result_rows()})
        elif tail == "spans":
            spans = self.telemetry.tracer.job_spans(job.id)
            self._write_json(writer, 200, {
                "job": job.id,
                "trace": job.trace_id,
                "state": job.state,
                "spans": spans,
                # The tree roots at the "job" span, which is retained
                # when the job finishes — None while still running.
                "tree": build_tree(spans)})
        else:
            self._write_json(writer, 404, {"error": f"no route {path}"})

    async def _stream_job(self, job: Job,
                          writer: asyncio.StreamWriter) -> None:
        head = ("HTTP/1.1 200 OK\r\n"
                "Content-Type: application/x-ndjson\r\n"
                "Transfer-Encoding: chunked\r\n"
                "Connection: close\r\n\r\n").encode("latin-1")
        writer.write(head)
        _STATUS.set(200)

        def _chunk(payload: Dict[str, object]) -> bytes:
            data = (json.dumps(payload) + "\n").encode()
            return b"%x\r\n" % len(data) + data + b"\r\n"

        heartbeat_s = self.config.heartbeat_s
        index = 0
        while True:
            if heartbeat_s > 0:
                try:
                    events = await asyncio.wait_for(
                        job.events_after(index), timeout=heartbeat_s)
                except asyncio.TimeoutError:
                    # Nothing happened for a full interval: tell the
                    # client the server (and the job) are still alive.
                    self.telemetry.heartbeats.inc()
                    writer.write(_chunk({
                        "event": "heartbeat", "job": job.id,
                        "state": job.state, "done": job.done_cells,
                        "failed": job.failed_cells,
                        "n_cells": len(job.records),
                        "pending": self.pool.pending()}))
                    try:
                        await writer.drain()
                    except ConnectionError:
                        return
                    continue
            else:
                events = await job.events_after(index)
            if not events:
                break
            index += len(events)
            for event in events:
                writer.write(_chunk(event))
            try:
                await writer.drain()
            except ConnectionError:
                return
        writer.write(b"0\r\n\r\n")

    # -- introspection ----------------------------------------------------

    def stats(self) -> Dict[str, object]:
        cache = self.engine.cache
        ring = self.telemetry.ring
        return {
            "jobs": {"active": self.store.active(),
                     "total": self.store.total(),
                     "rejected": self.store.rejected,
                     "max_active": self.store.max_active},
            "cells": {"requested": self.cells_requested,
                      "cache": self.cells_cache,
                      "computed": self.cells_computed,
                      "coalesced": self.cells_coalesced,
                      "failed": self.cells_failed},
            "singleflight": {"leaders": self.flights.leaders,
                             "joined": self.flights.joined,
                             "inflight": self.flights.inflight(),
                             "peak_inflight": self.flights.peak_inflight},
            "pool": {"workers": self.pool.workers,
                     "steals": self.pool.steals,
                     "respawns": self.pool.respawns,
                     "pending": self.pool.pending(),
                     "backlogs": self.pool.backlogs(),
                     "worker_state": self.pool.worker_rows()},
            "cache": {"enabled": cache is not None,
                      "dir": str(cache.root) if cache is not None else None,
                      "hits": cache.hits if cache is not None else 0,
                      "misses": cache.misses if cache is not None else 0,
                      # Coordinator stores + one per computed cell (the
                      # workers store from their own processes).
                      "stores": (cache.stores + self.cells_computed)
                      if cache is not None else 0,
                      "hit_s": round(cache.hit_s, 6)
                      if cache is not None else 0.0,
                      "miss_s": round(cache.miss_s, 6)
                      if cache is not None else 0.0,
                      "store_s": round(cache.store_s, 6)
                      if cache is not None else 0.0},
            "telemetry": {
                "spans_started": self.telemetry.tracer.started,
                "spans_finished": self.telemetry.tracer.finished,
                "log_records": dict(ring.counts),
                "logs_dropped": ring.dropped,
                "heartbeats": int(self.telemetry.heartbeats.value()),
                "heartbeat_s": self.config.heartbeat_s},
        }


def run_server(config: Optional[ServeConfig] = None) -> None:
    """Blocking entry point for ``repro serve`` (Ctrl-C to stop).

    Emits structured JSON log lines on stdout (``echo_logs``) instead
    of ad-hoc prints, so a supervisor can ship them as-is.
    """
    config = config if config is not None else ServeConfig()
    config.echo_logs = True

    async def _main() -> None:
        app = ServeApp(config)
        await app.start()
        cache = app.engine.cache
        app.telemetry.log(
            "info", "serve.start",
            url=f"http://{app.config.host}:{app.port}",
            workers=app.pool.workers,
            cache=str(cache.root) if cache is not None else None,
            heartbeat_s=app.config.heartbeat_s)
        try:
            await asyncio.Event().wait()
        finally:
            await app.close()

    try:
        asyncio.run(_main())
    except KeyboardInterrupt:
        print(json.dumps({"event": "serve.stop", "reason": "interrupt"}))
