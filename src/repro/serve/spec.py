"""The sweep-spec grammar: what clients POST to ``/jobs``.

A spec is a JSON object naming a (benchmarks x presets x seeds) grid —
exactly the cell grammar of ``repro bench``, including ``litmus/...``
benchmark names — plus run length and the validate/obs switches.  It is
parsed and validated server-side into a frozen :class:`SweepSpec`;
every problem is a :class:`SpecError` with a client-facing message
(HTTP 400), never a stack trace.

``expand_cells`` turns a spec into the engine's :class:`Cell` list with
the same labels and paper port-pairing defaults as ``repro bench``, so
a job's cells are cache-compatible with every other consumer of the
engine — a cell simulated by the CLI is a warm hit for the server and
vice versa (labels are excluded from the digest by design).
"""

from __future__ import annotations

import dataclasses
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from repro.config import base_machine
from repro.harness.engine import Cell
from repro.obs import ObsConfig
from repro.workload import ALL_BENCHMARKS

#: Hard ceiling on instructions per cell accepted over the wire; a
#: single request must not be able to wedge a worker for minutes.
MAX_INSTRUCTIONS = 200_000

#: Fields a spec payload may carry; anything else is rejected loudly so
#: a typo (``"seed"`` for ``"seeds"``) cannot silently change meaning.
_KNOWN_FIELDS = frozenset({
    "benchmarks", "presets", "seeds", "n_instructions", "ports",
    "validate", "obs",
})


class SpecError(ValueError):
    """A client-facing sweep-spec validation problem (HTTP 400)."""


@dataclasses.dataclass(frozen=True)
class SweepSpec:
    """A validated sweep request: the job server's unit of admission."""

    benchmarks: Tuple[str, ...]
    presets: Tuple[str, ...]
    seeds: Tuple[int, ...]
    n_instructions: int = 6000
    #: Search ports for every preset; 0 keeps the paper's pairing
    #: (2-ported conventional/segmented vs 1-ported techniques/full).
    ports: int = 0
    validate: bool = False
    #: Attach the interval sampler to every cell so the progress stream
    #: carries per-cell IPC/occupancy time series.
    obs: bool = False

    @property
    def n_cells(self) -> int:
        return len(self.benchmarks) * len(self.presets) * len(self.seeds)

    def as_payload(self) -> Dict[str, object]:
        """The JSON form a client would POST for this spec."""
        return {
            "benchmarks": list(self.benchmarks),
            "presets": list(self.presets),
            "seeds": list(self.seeds),
            "n_instructions": self.n_instructions,
            "ports": self.ports,
            "validate": self.validate,
            "obs": self.obs,
        }


def _require_names(payload: Dict[str, object], field: str) -> List[str]:
    value = payload.get(field)
    if not isinstance(value, list) or not value:
        raise SpecError(f"'{field}' must be a non-empty list of names")
    names = []
    for item in value:
        if not isinstance(item, str) or not item:
            raise SpecError(f"'{field}' entries must be strings "
                            f"(got {item!r})")
        names.append(item)
    return names


def parse_spec(payload: object) -> SweepSpec:
    """Validate a client payload into a :class:`SweepSpec`.

    Every rejection raises :class:`SpecError` with a message precise
    enough to fix the request; an empty grid is a rejection, never a
    vacuously-successful job (the same rule ``repro bench`` enforces
    for ``--expect-cached``).
    """
    from repro.cli import PRESETS

    if not isinstance(payload, dict):
        raise SpecError("spec must be a JSON object")
    unknown = sorted(set(payload) - _KNOWN_FIELDS)
    if unknown:
        raise SpecError(f"unknown spec field(s): {', '.join(unknown)}; "
                        f"allowed: {', '.join(sorted(_KNOWN_FIELDS))}")

    benchmarks = _require_names(payload, "benchmarks")
    for name in benchmarks:
        if name.startswith("litmus/"):
            from repro.litmus import parse_litmus_name
            try:
                parse_litmus_name(name)
            except ValueError as error:
                raise SpecError(str(error)) from None
        elif name not in ALL_BENCHMARKS:
            raise SpecError(
                f"unknown benchmark {name!r}; choose from: "
                f"{', '.join(ALL_BENCHMARKS)} or a litmus/... name")

    presets = _require_names(payload, "presets") \
        if "presets" in payload else ["conventional", "full"]
    for name in presets:
        if name not in PRESETS:
            raise SpecError(f"unknown preset {name!r}; choose from: "
                            f"{', '.join(sorted(PRESETS))}")

    seeds_raw = payload.get("seeds", [0])
    if not isinstance(seeds_raw, list) or not seeds_raw:
        raise SpecError("'seeds' must be a non-empty list of integers")
    seeds = []
    for item in seeds_raw:
        if isinstance(item, bool) or not isinstance(item, int):
            raise SpecError(f"'seeds' entries must be integers "
                            f"(got {item!r})")
        seeds.append(item)

    n_instructions = payload.get("n_instructions", 6000)
    if isinstance(n_instructions, bool) or \
            not isinstance(n_instructions, int) or n_instructions < 1:
        raise SpecError("'n_instructions' must be a positive integer")
    if n_instructions > MAX_INSTRUCTIONS:
        raise SpecError(f"'n_instructions' capped at {MAX_INSTRUCTIONS}")

    ports = payload.get("ports", 0)
    if isinstance(ports, bool) or not isinstance(ports, int) or ports < 0:
        raise SpecError("'ports' must be a non-negative integer "
                        "(0 = the paper's pairing)")

    for flag in ("validate", "obs"):
        if flag in payload and not isinstance(payload[flag], bool):
            raise SpecError(f"'{flag}' must be a boolean")

    return SweepSpec(
        benchmarks=tuple(benchmarks),
        presets=tuple(presets),
        seeds=tuple(seeds),
        n_instructions=n_instructions,
        ports=ports,
        validate=bool(payload.get("validate", False)),
        obs=bool(payload.get("obs", False)),
    )


def expand_cells(spec: SweepSpec) -> List[Cell]:
    """A spec's cell grid, labelled exactly as ``repro bench`` labels
    it so reports from either surface line up cell for cell."""
    from repro.cli import BENCH_DEFAULT_PORTS, PRESETS

    obs: Optional[ObsConfig] = ObsConfig() if spec.obs else None
    cells: List[Cell] = []
    for bench in spec.benchmarks:
        for preset in spec.presets:
            ports = spec.ports or BENCH_DEFAULT_PORTS.get(preset, 2)
            machine = replace(base_machine(),
                              lsq=PRESETS[preset](ports=ports))
            for seed in spec.seeds:
                cells.append(Cell(
                    benchmark=bench, machine=machine, seed=seed,
                    n_instructions=spec.n_instructions,
                    validate=spec.validate,
                    label=f"{preset}-{ports}p", obs=obs))
    return cells


def smoke_spec(n_instructions: int = 800) -> Dict[str, object]:
    """The ``--smoke`` slice as a client payload (gzip,mgrid x
    conventional,full) — what CI submits and the docs' first example."""
    from repro.cli import SMOKE_BENCHMARKS, SMOKE_PRESETS
    return {
        "benchmarks": list(SMOKE_BENCHMARKS),
        "presets": list(SMOKE_PRESETS),
        "seeds": [0],
        "n_instructions": n_instructions,
    }
