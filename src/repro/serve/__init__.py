"""repro.serve — simulation-as-a-service over the sweep engine.

The harness already owns the hard parts of a serving stack: a
content-addressed on-disk result cache whose warm hits cost
microseconds (:mod:`repro.harness.engine`), picklable
:class:`~repro.harness.engine.CellResult` payloads, and perf/parity
gates.  This package wraps them in a long-running **asyncio job
server** so many concurrent clients can drive the same simulator
without each paying for the same cells:

* :mod:`repro.serve.spec` — the sweep-spec grammar (the same
  benchmark x preset x seed cell grammar as ``repro bench``, including
  ``litmus/...`` names), validated server-side;
* :mod:`repro.serve.singleflight` — the request-coalescing table:
  identical cells across concurrent jobs share one in-flight
  computation, keyed on the engine's cache digest;
* :mod:`repro.serve.scheduler` — a work-stealing worker-process pool;
  a crashing worker fails only the cell it was computing and is
  respawned, the job continues;
* :mod:`repro.serve.jobs` — the job store: admission control
  (bounded active jobs -> HTTP 429 + ``Retry-After``), per-cell
  states, and the event log behind the progress stream;
* :mod:`repro.serve.server` — the stdlib-only HTTP front end
  (``asyncio.start_server`` + hand-rolled HTTP/1.1): ``POST /jobs``
  returns a job id, ``GET /jobs/<id>/stream`` streams NDJSON progress
  over a chunked response fed by the :mod:`repro.obs` interval
  sampler;
* :mod:`repro.serve.client` — a stdlib ``http.client`` client plus a
  threaded load generator;
* :mod:`repro.serve.bench` — the serving bench: warm-hit latency,
  cold throughput and coalescing ratio, emitted as
  ``BENCH_service.json`` and gated by ``scripts/bench_diff.py``.

``repro serve`` starts the server; ``repro submit`` is the CLI client.
See ``docs/SERVING.md`` for the API and semantics.
"""

from __future__ import annotations

from repro.serve.bench import ServerHarness, diff_service_reports, \
    run_service_bench
from repro.serve.client import Backpressure, ServeClient, ServeError, \
    ServeUnavailable, SpecRejected
from repro.serve.jobs import Busy, Job, JobStore
from repro.serve.scheduler import WorkerCrash, WorkerPool
from repro.serve.server import ServeApp, ServeConfig, run_server
from repro.serve.singleflight import SingleFlight
from repro.serve.spec import SpecError, SweepSpec, expand_cells, \
    parse_spec, smoke_spec

__all__ = [
    "Backpressure", "Busy", "Job", "JobStore", "ServeApp", "ServeClient",
    "ServeConfig", "ServeError", "ServeUnavailable", "ServerHarness",
    "SingleFlight", "SpecError", "SpecRejected", "SweepSpec",
    "WorkerCrash", "WorkerPool", "diff_service_reports", "expand_cells",
    "parse_spec", "run_server", "run_service_bench", "smoke_spec",
]
