"""Serving SLO bench: cold throughput, coalescing ratio, warm-hit latency.

The load/store-queue sweeps this repo reproduces are embarrassingly
cacheable — the same (config, benchmark, seed) cell is requested over
and over as figures are re-plotted — so the serving layer lives or
dies on three numbers:

* **cold throughput** — cells/second through the worker pool with an
  empty cache (the first time anyone asks);
* **coalescing ratio** — computed/requested when concurrent jobs
  overlap (two clients asking for figure 7 must cost one figure 7);
* **warm-hit latency** — per-cell ``service_ms`` when every cell is on
  disk.  The SLO is p50 < 5 ms: a cached cell is a file read, and must
  price like one.

:func:`run_service_bench` spins a private server (fresh temp cache,
ephemeral port) and measures all three; the report lands in
``BENCH_service.json`` and :func:`diff_service_reports` gates it in CI
next to the core-loop baseline (see ``scripts/bench_diff.py``).
"""

from __future__ import annotations

import asyncio
import json
import tempfile
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.harness.engine import calibration_loop_s, code_version
from repro.serve.client import ServeClient, _percentile, generate_load
from repro.serve.server import ServeApp, ServeConfig

SERVICE_SCHEMA = 1

#: The serving SLO: p50 warm-hit service latency, milliseconds.
WARM_HIT_P50_SLO_MS = 5.0


class ServerHarness:
    """A ServeApp on a background thread with its own event loop.

    Lets synchronous code (benches, pytest, the CI smoke) stand up a
    real server — real sockets, real worker processes — talk to it
    with :class:`~repro.serve.client.ServeClient`, and tear it down:

        with ServerHarness(ServeConfig(port=0, ...)) as harness:
            client = ServeClient(port=harness.port)
    """

    def __init__(self, config: Optional[ServeConfig] = None) -> None:
        self.config = config if config is not None else ServeConfig(port=0)
        self.app: Optional[ServeApp] = None
        self.port = 0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def start(self) -> "ServerHarness":
        self._thread = threading.Thread(target=self._run,
                                        name="repro-serve-harness",
                                        daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=60.0):
            raise RuntimeError("server harness did not start in 60s")
        if self._startup_error is not None:
            raise RuntimeError(
                f"server harness failed to start: {self._startup_error}")
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        self.app = ServeApp(self.config)
        try:
            loop.run_until_complete(self.app.start())
            self.port = self.app.port
        except BaseException as error:  # noqa: BLE001 — reported to starter
            self._startup_error = error
            self._ready.set()
            return
        self._ready.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(self.app.close())
            loop.close()

    def stop(self) -> None:
        if self._loop is not None and self._loop.is_running():
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30.0)

    def __enter__(self) -> "ServerHarness":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()


def _bench_spec(n_instructions: int, seeds: Sequence[int],
                presets: Sequence[str]) -> Dict[str, object]:
    return {
        "benchmarks": ["gzip", "mgrid"],
        "presets": list(presets),
        "seeds": list(seeds),
        "n_instructions": n_instructions,
    }


def run_service_bench(n_instructions: int = 800,
                      warm_rounds: int = 5,
                      workers: int = 2) -> Dict[str, object]:
    """Measure the serving path end to end; returns the report dict."""
    with tempfile.TemporaryDirectory(prefix="repro-serve-bench-") as tmp:
        config = ServeConfig(port=0, workers=workers,
                             cache_dir=str(Path(tmp) / "cache"))
        with ServerHarness(config) as harness:
            client = ServeClient(port=harness.port)
            spec = _bench_spec(n_instructions, seeds=[1, 2],
                               presets=["conventional", "full"])

            # Cold: two concurrent clients ask for heavily-overlapping
            # sweeps against an empty cache.  Wall time prices the
            # worker pool; /stats prices the coalescing.
            cold_start = time.perf_counter()  # sim-lint: ignore[SIM-D004]
            load = generate_load(harness.config.host, harness.port,
                                 [spec, spec], clients=2)
            cold_wall = \
                time.perf_counter() - cold_start  # sim-lint: ignore[SIM-D004]
            stats = client.stats()
            cells = stats["cells"]
            assert isinstance(cells, dict)
            requested = int(cells["requested"])
            computed = int(cells["computed"])

            # Warm: resubmit the same sweep; every cell must come back
            # source=cache, and its service_ms is the number we gate.
            warm_ms: List[float] = []
            warm_sources: Dict[str, int] = {}
            for _round in range(warm_rounds):
                job = client.submit(spec)
                final = client.wait(str(job["id"]))
                for row in final.get("cells", []):
                    assert isinstance(row, dict)
                    source = str(row.get("source"))
                    warm_sources[source] = warm_sources.get(source, 0) + 1
                    if row.get("service_ms") is not None:
                        warm_ms.append(float(row["service_ms"]))

    return {
        "schema": SERVICE_SCHEMA,
        "kind": "service",
        "code_version": code_version(),
        "calibration_s": round(calibration_loop_s(), 6),
        "workers": workers,
        "n_instructions": n_instructions,
        "cold": {
            "n_cells": requested,
            "wall_s": round(cold_wall, 6),
            "cells_per_s": round(computed / cold_wall, 3)
            if cold_wall > 0 else 0.0,
            "failed": load["failed_cells"],
        },
        "coalescing": {
            "requested": requested,
            "computed": computed,
            "ratio": round(computed / requested, 4) if requested else 0.0,
        },
        "warm": {
            "rounds": warm_rounds,
            "cells": len(warm_ms),
            "sources": warm_sources,
            "p50_ms": round(_percentile(warm_ms, 0.50), 3),
            "p90_ms": round(_percentile(warm_ms, 0.90), 3),
            "max_ms": round(max(warm_ms), 3) if warm_ms else 0.0,
        },
        "slo": {"warm_hit_p50_ms": WARM_HIT_P50_SLO_MS},
    }


def diff_service_reports(old: Dict[str, object], new: Dict[str, object],
                         *, warm_slo_ms: float = WARM_HIT_P50_SLO_MS,
                         throughput_tol: float = 0.5,
                         normalize: bool = False) -> List[str]:
    """Compare two service reports; returns human-readable failures.

    Gates: (1) the warm-hit p50 SLO is absolute — cache reads do not
    get slower because the host does; (2) cold throughput may not drop
    below ``(1 - throughput_tol)`` of the baseline (optionally scaled
    by the calibration ratio when ``normalize`` is set); (3) every
    cell computed cold must have succeeded; (4) the coalescing ratio
    must not regress above the baseline (more duplicate computation).
    """
    failures: List[str] = []
    new_warm = new.get("warm")
    if not isinstance(new_warm, dict):
        return [f"new service report has no warm section: {new!r}"]
    p50 = float(new_warm.get("p50_ms") or 0.0)
    if p50 >= warm_slo_ms:
        failures.append(
            f"warm-hit p50 {p50:.3f} ms breaches the {warm_slo_ms:.1f} ms "
            "SLO")
    new_cold = new.get("cold")
    if isinstance(new_cold, dict) and int(new_cold.get("failed") or 0):
        failures.append(
            f"{new_cold['failed']} cell(s) failed during the cold run")
    old_cold = old.get("cold")
    if isinstance(old_cold, dict) and isinstance(new_cold, dict):
        old_rate = float(old_cold.get("cells_per_s") or 0.0)
        new_rate = float(new_cold.get("cells_per_s") or 0.0)
        scale = 1.0
        if normalize:
            try:
                old_cal = float(old.get("calibration_s") or 0.0)
                new_cal = float(new.get("calibration_s") or 0.0)
            except (TypeError, ValueError):
                old_cal = new_cal = 0.0
            if old_cal > 0.0 and new_cal > 0.0:
                # A slower host computes fewer cells/s; only ever
                # *relax* the bar (scale <= 1), never tighten it.
                scale = min(1.0, old_cal / new_cal)
        floor = old_rate * (1.0 - throughput_tol) * scale
        if old_rate > 0.0 and new_rate < floor:
            failures.append(
                f"cold throughput {new_rate:.3f} cells/s is below "
                f"{floor:.3f} (baseline {old_rate:.3f}, "
                f"tol {throughput_tol:.0%}, scale {scale:.3f})")
    old_co = old.get("coalescing")
    new_co = new.get("coalescing")
    if isinstance(old_co, dict) and isinstance(new_co, dict):
        old_ratio = float(old_co.get("ratio") or 1.0)
        new_ratio = float(new_co.get("ratio") or 1.0)
        if new_ratio > old_ratio + 1e-9:
            failures.append(
                f"coalescing ratio regressed: {new_ratio:.4f} computed per "
                f"requested vs baseline {old_ratio:.4f} (duplicate "
                "computation crept in)")
    return failures


def main(argv: Optional[Sequence[str]] = None) -> int:
    """``python -m repro.serve.bench [-o OUT]`` — emit a report."""
    import argparse
    parser = argparse.ArgumentParser(
        description="Run the serving SLO bench")
    parser.add_argument("-o", "--output", default="BENCH_service.json")
    parser.add_argument("--instructions", type=int, default=800)
    parser.add_argument("--warm-rounds", type=int, default=5)
    parser.add_argument("--workers", type=int, default=2)
    options = parser.parse_args(argv)
    report = run_service_bench(n_instructions=options.instructions,
                               warm_rounds=options.warm_rounds,
                               workers=options.workers)
    Path(options.output).write_text(json.dumps(report, indent=2) + "\n")
    warm = report["warm"]
    cold = report["cold"]
    coalescing = report["coalescing"]
    assert isinstance(warm, dict) and isinstance(cold, dict) \
        and isinstance(coalescing, dict)
    print(f"service bench: cold {cold['cells_per_s']} cells/s, "
          f"coalescing {coalescing['computed']}/{coalescing['requested']}, "
          f"warm p50 {warm['p50_ms']} ms -> {options.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
