"""Job store: admission control, per-cell state, and the event log.

A job is one admitted sweep spec.  Its lifecycle is
``queued -> running -> done`` (``done`` covers partial failure — the
per-cell records say which cells failed and why; a job never aborts as
a whole because one worker died).  Every state change appends a JSON
event to the job's log, and any number of stream clients replay that
log concurrently — late subscribers see the full history, so a
progress stream is reconnectable.

Admission is the backpressure point: the store caps *active*
(queued + running) jobs, and an admission beyond the cap raises
:class:`Busy`, which the HTTP layer turns into ``429`` with a
``Retry-After`` hint.  Nothing queues invisibly — a client is either
in, or told exactly when to come back.
"""

from __future__ import annotations

import asyncio
import dataclasses
import itertools
import time
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.harness.engine import Cell
from repro.serve.spec import SweepSpec


class Busy(RuntimeError):
    """Admission rejected: the active-job cap is reached."""

    def __init__(self, message: str, retry_after_s: float) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


@dataclasses.dataclass
class CellRecord:
    """One cell's serving state inside a job."""

    index: int
    cell: Cell
    digest: str
    status: str = "pending"            # pending | running | done | failed
    #: How the result was obtained: ``cache`` (disk warm hit),
    #: ``computed`` (worker pool), ``coalesced`` (joined another job's
    #: in-flight computation).  ``None`` until resolved.
    source: Optional[str] = None
    ipc: Optional[float] = None
    cycles: Optional[int] = None
    committed: Optional[int] = None
    sim_s: Optional[float] = None
    #: Submit-to-result latency as seen by the server, milliseconds.
    service_ms: Optional[float] = None
    error: Optional[str] = None

    def row(self) -> Dict[str, object]:
        return {
            "index": self.index,
            "benchmark": self.cell.benchmark,
            "label": self.cell.label,
            "seed": self.cell.seed,
            "n_instructions": self.cell.n_instructions,
            "digest": self.digest,
            "status": self.status,
            "source": self.source,
            "ipc": self.ipc,
            "cycles": self.cycles,
            "committed": self.committed,
            "sim_s": self.sim_s,
            "service_ms": self.service_ms,
            "error": self.error,
        }


class Job:
    """One admitted sweep: cell records plus the progress-event log."""

    def __init__(self, job_id: str, spec: SweepSpec,
                 cells: List[Cell]) -> None:
        self.id = job_id
        self.spec = spec
        self.records = [CellRecord(index=i, cell=cell, digest=cell.digest())
                        for i, cell in enumerate(cells)]
        self.state = "queued"
        self.created_s = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        self.finished_s: Optional[float] = None
        #: Trace id correlating this job's spans and log records
        #: (client-supplied via ``X-Repro-Trace`` or server-minted).
        self.trace_id: Optional[str] = None
        #: The job's root span (owned by the server's tracer); typed
        #: loosely so the job store stays import-light.
        self.root_span: Optional[object] = None
        self.done_cells = 0
        self.failed_cells = 0
        self._events: List[Dict[str, object]] = []
        self._changed: Optional[asyncio.Condition] = None

    def _condition(self) -> asyncio.Condition:
        # Created lazily so Job can be built before a loop exists.
        if self._changed is None:
            self._changed = asyncio.Condition()
        return self._changed

    # -- state ------------------------------------------------------------

    def summary(self) -> Dict[str, object]:
        sources: Dict[str, int] = {}
        for record in self.records:
            if record.source is not None:
                sources[record.source] = sources.get(record.source, 0) + 1
        return {
            "id": self.id,
            "state": self.state,
            "trace": self.trace_id,
            "n_cells": len(self.records),
            "done": self.done_cells,
            "failed": self.failed_cells,
            "sources": sources,
            "elapsed_s": round(
                ((self.finished_s or time.perf_counter())  # sim-lint: ignore[SIM-D004]
                 - self.created_s), 6),
        }

    def result_rows(self) -> List[Dict[str, object]]:
        return [record.row() for record in self.records]

    # -- event log --------------------------------------------------------

    async def publish(self, event: Dict[str, object]) -> None:
        condition = self._condition()
        async with condition:
            self._events.append(event)
            condition.notify_all()

    async def finish(self) -> None:
        self.state = "done"
        self.finished_s = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        await self.publish({"event": "done", **self.summary()})

    async def events_after(self, start: int) -> List[Dict[str, object]]:
        """Events from ``start`` on, waiting if none exist yet and the
        job is still running.  Returns ``[]`` only once the job is done
        and the log is fully consumed."""
        condition = self._condition()
        async with condition:
            while len(self._events) <= start and self.state != "done":
                await condition.wait()
            return list(self._events[start:])


class JobStore:
    """Bounded registry of jobs with FIFO retention of finished ones."""

    def __init__(self, max_active: int = 8, keep_done: int = 256,
                 retry_after_s: float = 1.0) -> None:
        self.max_active = max(1, max_active)
        self.keep_done = keep_done
        self.retry_after_s = retry_after_s
        self._jobs: "OrderedDict[str, Job]" = OrderedDict()
        self._ids = itertools.count(1)
        #: Admissions rejected with Busy (the backpressure counter).
        self.rejected = 0

    def active(self) -> int:
        return sum(1 for job in self._jobs.values()
                   if job.state != "done")

    def total(self) -> int:
        return len(self._jobs)

    def admit(self, spec: SweepSpec, cells: List[Cell]) -> Job:
        if self.active() >= self.max_active:
            self.rejected += 1
            raise Busy(
                f"admission queue full ({self.max_active} active jobs)",
                retry_after_s=self.retry_after_s)
        job = Job(f"job-{next(self._ids):06d}", spec, cells)
        self._jobs[job.id] = job
        self._evict_done()
        return job

    def get(self, job_id: str) -> Optional[Job]:
        return self._jobs.get(job_id)

    def _evict_done(self) -> None:
        done = [job_id for job_id, job in self._jobs.items()
                if job.state == "done"]
        excess = len(done) - self.keep_done
        for job_id in done[:max(excess, 0)]:
            del self._jobs[job_id]
