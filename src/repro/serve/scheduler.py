"""Work-stealing worker-process pool behind the job server.

Cells shard across long-lived worker processes by cache digest (cheap
affinity: a job resubmitted while its cells are still warm in a
worker's page cache lands on the same workers), and an idle worker
**steals** from the tail of the longest backlog, so one job full of
slow cells cannot strand the rest of the fleet.  The stealing decision
lives entirely in the coordinating (asyncio) process — workers are
dumb loops pulling one task at a time — which keeps the policy
deterministic, observable (``steals`` counter) and unit-testable
without processes.

Crash containment is the contract the server's availability rests on:
a worker that dies mid-cell (segfault, OOM kill, ``os._exit``) fails
*only* the cell it was computing — its future gets
:class:`WorkerCrash` — and a replacement worker is spawned; queued
cells and every other job continue.  An exception *inside* a cell
(bad config, validation error) is returned as a value and fails just
that cell, without costing a worker.

Workers use the ``spawn`` start method: the coordinator runs an event
loop plus a queue-reader thread, and forking a threaded process is a
deadlock lottery.
"""

from __future__ import annotations

import asyncio
import itertools
import os
import threading
import time
from collections import deque
from pathlib import Path
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

#: Called (in the event loop) the moment a task is handed to a worker:
#: ``(worker_id, stolen)``.  The serving layer uses it to split a
#: cell's latency into queue-wait and worker-execution spans.
DispatchFn = Callable[[int, bool], None]

from repro.harness.engine import Cell, CellResult

#: Benchmark name that makes a worker die abruptly — the fault hook the
#: crash-containment tests use.  The spec grammar can never produce it
#: (it is not a valid benchmark), so it is unreachable from the API.
CRASH_BENCHMARK = "__serve-crash__"


class WorkerCrash(RuntimeError):
    """The worker computing this cell died before returning a result."""


class CellFailed(RuntimeError):
    """The cell itself raised inside a (healthy) worker."""


def _worker_main(worker_id: int, task_queue: Any, result_queue: Any,
                 cache_dir: Optional[str]) -> None:
    """Worker body: pull (task_id, cell), run it cache-first, ship the
    picklable CellResult (or the error text) back."""
    from repro.harness.engine import ResultCache, SweepEngine
    cache = ResultCache(Path(cache_dir)) if cache_dir else None
    engine = SweepEngine(jobs=1, cache=cache)
    while True:
        item = task_queue.get()
        if item is None:
            return
        task_id, cell = item
        if cell.benchmark == CRASH_BENCHMARK:
            os._exit(13)
        try:
            outcome = engine.run_cell(cell)
        except BaseException as error:  # noqa: BLE001 — shipped, not hidden
            result_queue.put((task_id, worker_id, False,
                              f"{type(error).__name__}: {error}"))
        else:
            result_queue.put((task_id, worker_id, True, outcome))


class _Task:
    __slots__ = ("task_id", "cell", "future", "home", "digest",
                 "on_dispatch", "dispatched_s")

    def __init__(self, task_id: int, cell: Cell,
                 future: "asyncio.Future[CellResult]", home: int,
                 digest: str,
                 on_dispatch: Optional[DispatchFn] = None) -> None:
        self.task_id = task_id
        self.cell = cell
        self.future = future
        self.home = home
        self.digest = digest
        self.on_dispatch = on_dispatch
        #: perf_counter() when the task was handed to a worker.
        self.dispatched_s: Optional[float] = None


class WorkerPool:
    """Digest-sharded worker processes with parent-side work stealing.

    Lifecycle: ``await start()`` once an event loop is running, then
    ``await submit(cell)`` freely; ``await close()`` tears the fleet
    down.  At most one task is in flight per worker — backlog lives in
    the coordinator where it can still be stolen.
    """

    def __init__(self, workers: int = 2,
                 cache_dir: Optional[Path] = None) -> None:
        self.workers = max(1, workers)
        self._cache_dir = str(cache_dir) if cache_dir is not None else None
        import multiprocessing
        self._ctx = multiprocessing.get_context("spawn")
        self._procs: List[Optional[Any]] = [None] * self.workers
        self._task_queues: List[Any] = [None] * self.workers
        self._result_queue: Any = None
        self._backlog: List[Deque[_Task]] = [deque()
                                             for _ in range(self.workers)]
        self._inflight: Dict[int, _Task] = {}
        self._ids = itertools.count(1)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._reader: Optional[threading.Thread] = None
        self._monitor: Optional["asyncio.Task[None]"] = None
        self._closed = False
        #: Cells a worker finished successfully.
        self.computed = 0
        #: Cells failed (in-cell error or worker crash).
        self.failed = 0
        #: Tasks taken from another worker's backlog.
        self.steals = 0
        #: Workers respawned after a crash.
        self.respawns = 0
        # Per-worker telemetry (indexed by worker id; survives respawns
        # — a respawned worker keeps its slot's history).
        self.worker_done: List[int] = [0] * self.workers
        self.worker_failed: List[int] = [0] * self.workers
        self.worker_respawns: List[int] = [0] * self.workers
        self.worker_busy_s: List[float] = [0.0] * self.workers

    # -- lifecycle --------------------------------------------------------

    async def start(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._result_queue = self._ctx.Queue()
        for worker_id in range(self.workers):
            self._spawn(worker_id)
        self._reader = threading.Thread(target=self._drain_results,
                                        name="repro-serve-results",
                                        daemon=True)
        self._reader.start()
        self._monitor = self._loop.create_task(self._watch_workers())

    def _spawn(self, worker_id: int) -> None:
        queue = self._ctx.Queue()
        process = self._ctx.Process(
            target=_worker_main,
            args=(worker_id, queue, self._result_queue, self._cache_dir),
            name=f"repro-serve-worker-{worker_id}", daemon=True)
        process.start()
        self._task_queues[worker_id] = queue
        self._procs[worker_id] = process

    async def close(self) -> None:
        self._closed = True
        if self._monitor is not None:
            self._monitor.cancel()
        for queue in self._task_queues:
            if queue is not None:
                try:
                    queue.put(None)
                except (OSError, ValueError):
                    pass
        for process in self._procs:
            if process is not None:
                process.join(timeout=2.0)
                if process.is_alive():
                    process.terminate()
                    process.join(timeout=2.0)
        if self._result_queue is not None:
            try:
                self._result_queue.put(None)  # unblock the reader thread
            except (OSError, ValueError):
                pass
        if self._reader is not None:
            self._reader.join(timeout=2.0)

    # -- submission and dispatch ------------------------------------------

    async def submit(self, cell: Cell,
                     on_dispatch: Optional[DispatchFn] = None,
                     ) -> CellResult:
        """Queue one cell; resolves when a worker finishes it.

        ``on_dispatch`` (if given) fires in the event loop the moment
        the task leaves the backlog for a worker — the queue-wait /
        execution boundary.  Raises :class:`WorkerCrash` if the
        assigned worker dies mid-computation, :class:`CellFailed` if
        the cell itself raised.
        """
        if self._loop is None:
            raise RuntimeError("WorkerPool.start() has not run")
        digest = cell.digest()
        home = int(digest[:8], 16) % self.workers
        task = _Task(next(self._ids), cell,
                     self._loop.create_future(), home, digest,
                     on_dispatch=on_dispatch)
        self._backlog[home].append(task)
        self._pump()
        return await task.future

    def pending(self) -> int:
        return sum(len(backlog) for backlog in self._backlog) \
            + len(self._inflight)

    def backlogs(self) -> List[int]:
        """Queued (not yet dispatched) tasks per worker."""
        return [len(backlog) for backlog in self._backlog]

    def worker_rows(self) -> List[Dict[str, object]]:
        """Per-worker state for ``/stats`` and the metrics mirrors."""
        rows: List[Dict[str, object]] = []
        for worker_id in range(self.workers):
            process = self._procs[worker_id]
            task = self._inflight.get(worker_id)
            busy_s = self.worker_busy_s[worker_id]
            if task is not None and task.dispatched_s is not None:
                now_s = time.perf_counter()  # sim-lint: ignore[SIM-D004]
                busy_s += now_s - task.dispatched_s
            rows.append({
                "id": worker_id,
                "alive": bool(process is not None and process.is_alive()),
                "state": "busy" if task is not None else "idle",
                "digest": task.digest[:12] if task is not None else None,
                "benchmark": (task.cell.benchmark
                              if task is not None else None),
                "label": task.cell.label if task is not None else None,
                "done": self.worker_done[worker_id],
                "failed": self.worker_failed[worker_id],
                "respawns": self.worker_respawns[worker_id],
                "busy_s": round(busy_s, 6),
                "backlog": len(self._backlog[worker_id]),
            })
        return rows

    def _pump(self) -> None:
        """Hand every idle worker its next task (own queue first, then
        steal from the tail of the longest backlog)."""
        for worker_id in range(self.workers):
            if worker_id in self._inflight \
                    or self._procs[worker_id] is None:
                continue
            task = self._next_task(worker_id)
            if task is None:
                continue
            self._inflight[worker_id] = task
            task.dispatched_s = \
                time.perf_counter()  # sim-lint: ignore[SIM-D004]
            self._task_queues[worker_id].put((task.task_id, task.cell))
            if task.on_dispatch is not None:
                task.on_dispatch(worker_id, worker_id != task.home)

    def _next_task(self, worker_id: int) -> Optional[_Task]:
        own = self._backlog[worker_id]
        if own:
            return own.popleft()
        victim = -1
        longest = 0
        for other in range(self.workers):
            if other != worker_id and len(self._backlog[other]) > longest:
                victim, longest = other, len(self._backlog[other])
        if victim < 0:
            return None
        self.steals += 1
        # Steal from the tail: the victim keeps draining its own head,
        # so a stolen task is the one it would have reached last.
        return self._backlog[victim].pop()

    # -- results and crash containment ------------------------------------

    def _drain_results(self) -> None:
        """Reader-thread body: block on the result queue, hop each item
        onto the event loop."""
        while True:
            try:
                item = self._result_queue.get()
            except (OSError, EOFError, ValueError):
                return
            if item is None:
                return
            assert self._loop is not None
            self._loop.call_soon_threadsafe(self._on_result, item)

    def _on_result(self, item: Tuple[int, int, bool, object]) -> None:
        task_id, worker_id, ok, payload = item
        task = self._inflight.get(worker_id)
        if task is None or task.task_id != task_id:
            # A result from a worker we already declared dead; the cell
            # was failed when the crash was detected — drop the ghost
            # without touching whatever is live on that worker now.
            self._pump()
            return
        del self._inflight[worker_id]
        if task.dispatched_s is not None:
            self.worker_busy_s[worker_id] += \
                time.perf_counter() - task.dispatched_s  # sim-lint: ignore[SIM-D004]
        if not task.future.done():
            if ok:
                self.computed += 1
                self.worker_done[worker_id] += 1
                task.future.set_result(payload)
            else:
                self.failed += 1
                self.worker_failed[worker_id] += 1
                task.future.set_exception(CellFailed(str(payload)))
        self._pump()

    async def _watch_workers(self) -> None:
        """Detect dead workers, fail their in-flight cell, respawn."""
        while not self._closed:
            await asyncio.sleep(0.05)
            for worker_id in range(self.workers):
                process = self._procs[worker_id]
                if process is None or process.is_alive():
                    continue
                exitcode = process.exitcode
                task = self._inflight.pop(worker_id, None)
                if task is not None:
                    self.failed += 1
                    self.worker_failed[worker_id] += 1
                    if task.dispatched_s is not None:
                        self.worker_busy_s[worker_id] += \
                            time.perf_counter() - task.dispatched_s  # sim-lint: ignore[SIM-D004]
                    if not task.future.done():
                        task.future.set_exception(WorkerCrash(
                            f"worker {worker_id} died (exit {exitcode}) "
                            f"while computing {task.cell.benchmark} x "
                            f"{task.cell.label or 'cell'} "
                            f"seed {task.cell.seed}"))
                self.respawns += 1
                self.worker_respawns[worker_id] += 1
                self._spawn(worker_id)
                self._pump()
