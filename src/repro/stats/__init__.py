"""Simulation statistics: counters, derived metrics, and reporting."""

from repro.stats.analysis import (
    SweepSummary,
    calibration_report,
    correlation,
    rank_agreement,
    search_pressure,
)
from repro.stats.counters import SimStats
from repro.stats.report import format_table, geometric_mean, speedup

__all__ = [
    "SimStats",
    "format_table",
    "geometric_mean",
    "speedup",
    "correlation",
    "rank_agreement",
    "search_pressure",
    "SweepSummary",
    "calibration_report",
]
