"""Cross-run analysis helpers.

Built on top of :class:`~repro.stats.counters.SimStats`, these compare a
sweep of simulation results against each other and against the paper's
published numbers:

* :func:`correlation` — Pearson r between measured and target series
  (used to validate the synthetic calibration against Tables 2/4/5).
* :func:`rank_agreement` — Spearman-style rank correlation: do the same
  benchmarks win/lose in the same order?
* :func:`search_pressure` — decompose where a configuration's cycles
  went (port stalls, waits, squashes) relative to a baseline.
* :class:`SweepSummary` — tabulate a {config: {bench: result}} sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence

from repro.stats.counters import SimStats
from repro.stats.report import format_table, geometric_mean


def correlation(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Pearson correlation coefficient of two equal-length series."""
    if len(xs) != len(ys):
        raise ValueError("series must have equal length")
    n = len(xs)
    if n < 2:
        raise ValueError("need at least two points")
    mean_x = sum(xs) / n
    mean_y = sum(ys) / n
    cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
    var_x = sum((x - mean_x) ** 2 for x in xs)
    var_y = sum((y - mean_y) ** 2 for y in ys)
    if var_x == 0 or var_y == 0:
        raise ValueError("a series is constant")
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: Sequence[float]) -> List[float]:
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and \
                values[order[j + 1]] == values[order[i]]:
            j += 1
        rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = rank
        i = j + 1
    return ranks


def rank_agreement(xs: Sequence[float], ys: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over ranks, tie-aware)."""
    return correlation(_ranks(xs), _ranks(ys))


@dataclass
class PressureBreakdown:
    """Where a configuration's stall events sit relative to a baseline."""

    sq_port_stalls: int
    lq_port_stalls: int
    dcache_port_stalls: int
    store_set_waits: int
    load_buffer_full_stalls: int
    store_commit_delays: int
    violation_squashes: int
    dispatch_stalls: int
    membar_stalls: int = 0
    contention_stalls: int = 0

    def dominant(self) -> str:
        """The largest pressure source, by event count."""
        items = vars(self)
        return max(items, key=items.get)

    def format(self) -> str:
        rows = sorted(vars(self).items(), key=lambda kv: -kv[1])
        return format_table(["pressure source", "events"],
                            [[k, v] for k, v in rows])


def search_pressure(stats: SimStats) -> PressureBreakdown:
    """Summarise a run's structural-pressure counters."""
    return PressureBreakdown(
        sq_port_stalls=stats.sq_port_stalls,
        lq_port_stalls=stats.lq_port_stalls,
        dcache_port_stalls=stats.dcache_port_stalls,
        store_set_waits=stats.store_set_waits,
        load_buffer_full_stalls=stats.load_buffer_full_stalls,
        store_commit_delays=stats.store_commit_delays,
        violation_squashes=stats.violation_squashes,
        dispatch_stalls=(stats.lq_full_stalls + stats.sq_full_stalls
                         + stats.rob_full_stalls + stats.iq_full_stalls),
        membar_stalls=stats.membar_stalls,
        contention_stalls=stats.contention_stalls,
    )


@dataclass
class SweepSummary:
    """Tabulated view of a {config_label: {bench: ipc}} sweep."""

    ipc: Dict[str, Dict[str, float]]       # config -> bench -> IPC
    baseline: str                          # config label used as 1.0

    def speedups(self) -> Dict[str, Dict[str, float]]:
        base = self.ipc[self.baseline]
        return {label: {bench: ipc / base[bench]
                        for bench, ipc in per_bench.items()}
                for label, per_bench in self.ipc.items()}

    def averages(self) -> Dict[str, float]:
        """Geomean speedup per configuration (1.0 = baseline parity)."""
        return {label: geometric_mean(sorted(per_bench.values()))
                for label, per_bench in self.speedups().items()}

    def best_config(self) -> str:
        averages = self.averages()
        return max(averages, key=averages.get)

    def format(self) -> str:
        benches = sorted(self.ipc[self.baseline])
        headers = ["bench"] + list(self.ipc)
        rows = []
        for bench in benches:
            rows.append([bench] + [f"{self.ipc[label][bench]:.2f}"
                                   for label in self.ipc])
        averages = self.averages()
        rows.append(["geomean-speedup"]
                    + [f"{averages[label]:.3f}" for label in self.ipc])
        return format_table(headers, rows,
                            title=f"IPC sweep (baseline: {self.baseline})")


def calibration_report(measured: Mapping[str, float],
                       target: Mapping[str, float],
                       label: str = "metric") -> str:
    """Compare a measured per-benchmark series against paper targets."""
    names = [n for n in measured if n in target]
    xs = [measured[n] for n in names]
    ys = [target[n] for n in names]
    rows = [[n, f"{measured[n]:.2f}", f"{target[n]:.2f}",
             f"{measured[n] - target[n]:+.2f}"] for n in names]
    table = format_table(["bench", "measured", "paper", "delta"], rows,
                         title=f"Calibration: {label}")
    pearson = correlation(xs, ys)
    spearman = rank_agreement(xs, ys)
    return (f"{table}\nPearson r = {pearson:.3f}, "
            f"rank agreement = {spearman:.3f}")
