"""All counters collected during one simulation.

The counters map one-to-one onto the paper's reported metrics:

* ``sq_searches`` / ``lq_searches`` — the search-bandwidth demands of
  Figures 6 and 8 (events, not port-cycles; per-segment traffic is
  tracked separately in ``sq_segment_visits`` / ``lq_segment_visits``).
* ``segment_search_hist`` — Table 6's distribution of segments searched
  per load forwarding search.
* ``ooo_load_cycles`` — integral of out-of-order-issued loads in flight,
  for Table 4.
* ``lq_occupancy_cycles`` / ``sq_occupancy_cycles`` — Table 5.
* predictor counters — Table 3's misprediction and squash rates.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import asdict, dataclass, field
from typing import Dict


@dataclass
class SimStats:
    # -- progress ---------------------------------------------------------
    cycles: int = 0
    committed: int = 0
    committed_loads: int = 0
    committed_stores: int = 0
    committed_branches: int = 0
    committed_membars: int = 0

    # -- control flow -------------------------------------------------------
    branch_mispredicts: int = 0

    # -- squashes -----------------------------------------------------------
    store_load_squashes: int = 0
    load_load_squashes: int = 0
    contention_squashes: int = 0

    # -- LSQ search bandwidth -------------------------------------------------
    sq_searches: int = 0            # load -> store queue (forwarding)
    sq_segment_visits: int = 0
    lq_searches: int = 0            # store/load -> load queue (ordering)
    lq_segment_visits: int = 0
    load_buffer_searches: int = 0   # load -> load buffer (free bandwidth)
    forwarded_loads: int = 0
    sq_search_matches: int = 0

    # -- segmented queue behaviour ---------------------------------------------
    segment_search_hist: Dict[int, int] = field(default_factory=dict)
    store_commit_delays: int = 0
    contention_stalls: int = 0

    # -- predictor (Table 3) ------------------------------------------------
    membar_stalls: int = 0          # cycles memory ops waited on barriers
    invalidation_searches: int = 0  # scheme-(2) LQ searches

    loads_predicted_dependent: int = 0
    useless_searches: int = 0       # predicted dependent, no match found
    missed_dependences: int = 0     # predicted independent, squashed later
    store_set_waits: int = 0

    # -- port pressure ----------------------------------------------------
    sq_port_stalls: int = 0
    lq_port_stalls: int = 0
    dcache_port_stalls: int = 0

    # -- occupancy integrals (divide by cycles for averages) -----------------
    lq_occupancy_cycles: int = 0
    sq_occupancy_cycles: int = 0
    ooo_load_cycles: int = 0
    load_buffer_full_stalls: int = 0

    # -- dispatch stalls ------------------------------------------------------
    lq_full_stalls: int = 0
    sq_full_stalls: int = 0
    rob_full_stalls: int = 0
    iq_full_stalls: int = 0

    # -- derived -------------------------------------------------------------

    @property
    def ipc(self) -> float:
        return self.committed / self.cycles if self.cycles else 0.0

    @property
    def useful_ipc(self) -> float:
        """IPC over non-barrier instructions — the right basis when
        comparing membar-instrumented traces against barrier-free ones
        (barriers are overhead, not work)."""
        if not self.cycles:
            return 0.0
        return (self.committed - self.committed_membars) / self.cycles

    @property
    def avg_lq_occupancy(self) -> float:
        return self.lq_occupancy_cycles / self.cycles if self.cycles else 0.0

    @property
    def avg_sq_occupancy(self) -> float:
        return self.sq_occupancy_cycles / self.cycles if self.cycles else 0.0

    @property
    def avg_ooo_loads(self) -> float:
        return self.ooo_load_cycles / self.cycles if self.cycles else 0.0

    @property
    def branch_mispredict_rate(self) -> float:
        """Mispredicted branches per committed branch."""
        if not self.committed_branches:
            return 0.0
        return self.branch_mispredicts / self.committed_branches

    @property
    def forward_match_rate(self) -> float:
        """Fraction of SQ forwarding searches that found a matching
        older store — the hit rate of the paper's Figure 6 traffic."""
        if not self.sq_searches:
            return 0.0
        return self.sq_search_matches / self.sq_searches

    @property
    def violation_squashes(self) -> int:
        return (self.store_load_squashes + self.load_load_squashes
                + self.contention_squashes)

    @property
    def squash_rate(self) -> float:
        """Store-load order squashes per committed instruction (Table 3)."""
        if not self.committed:
            return 0.0
        return self.store_load_squashes / self.committed

    @property
    def predictor_mispredict_rate(self) -> float:
        """Table 3: mispredictions (useless searches + missed
        dependences) per committed load."""
        if not self.committed_loads:
            return 0.0
        return ((self.useless_searches + self.missed_dependences)
                / self.committed_loads)

    def segment_search_distribution(self) -> Dict[int, float]:
        """Table 6: fraction of forwarding searches touching k segments."""
        total = sum(self.segment_search_hist.values())
        if not total:
            return {}
        return {k: v / total
                for k, v in sorted(self.segment_search_hist.items())}


def canonical_stats(stats: "SimStats") -> str:
    """Canonical JSON encoding of every counter in ``stats``.

    Keys are sorted, histogram keys stringified in numeric order, and
    separators fixed, so two SimStats objects encode identically iff
    every counter is identical — the basis of the golden-digest parity
    suite that pins simulator semantics across performance work.
    """
    payload = asdict(stats)
    for key, value in payload.items():
        if isinstance(value, dict):
            payload[key] = {str(k): v for k, v in sorted(value.items())}
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def stats_digest(stats: "SimStats") -> str:
    """SHA-256 over :func:`canonical_stats` — one hex string per run."""
    return hashlib.sha256(canonical_stats(stats).encode()).hexdigest()
