"""Small reporting helpers shared by the harness and the benchmarks."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence


def speedup(test_ipc: float, base_ipc: float) -> float:
    """Relative performance change: +0.10 means 10% faster than base."""
    if base_ipc <= 0:
        raise ValueError("base IPC must be positive")
    return test_ipc / base_ipc - 1.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (ratios, IPC ratios)."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def mean_speedup(ratios: Iterable[float]) -> float:
    """Average speedup over a suite, computed as a geomean of ratios.

    ``ratios`` are test/base IPC ratios; the result is expressed as a
    relative change (0.05 == +5%), matching how the paper reports suite
    averages.
    """
    return geometric_mean(ratios) - 1.0


def format_table(headers: Sequence[str], rows: Iterable[Sequence],
                 title: str = "") -> str:
    """Render an aligned plain-text table (the benches print these)."""
    str_rows: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in str_rows:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_percent(value: float, digits: int = 1) -> str:
    """Format a ratio as a signed percentage string."""
    return f"{value * 100:+.{digits}f}%"


def cpi_stack_table(slots: Dict[str, int], commit_width: int,
                    committed: int, title: str = "CPI stack") -> str:
    """Render a CPI stall-attribution breakdown (see :mod:`repro.obs.cpi`).

    ``slots`` maps cause -> commit-slot cycles; rows show each cause's
    share of all commit slots and its cycles-per-instruction
    contribution.  The contributions sum to the run CPI because the
    slot buckets sum to ``cycles x commit_width``.
    """
    total = sum(slots.values())
    rows = []
    for cause, count in slots.items():
        share = count / total if total else 0.0
        cpi = (count / commit_width / committed) if committed else 0.0
        rows.append([cause, count, f"{share * 100:5.1f}%", f"{cpi:.4f}"])
    rows.append(["total", total, "100.0%" if total else "  0.0%",
                 f"{(total / commit_width / committed) if committed else 0.0:.4f}"])
    return format_table(["cause", "slot-cycles", "share", "CPI"],
                        rows, title=title)


def summarise_by_suite(per_benchmark: Dict[str, float],
                       int_names: Sequence[str],
                       fp_names: Sequence[str]) -> Dict[str, float]:
    """Suite averages in the paper's style (Int.Avg / Fp.Avg)."""
    out: Dict[str, float] = {}
    int_vals = [1.0 + per_benchmark[n] for n in int_names if n in per_benchmark]
    fp_vals = [1.0 + per_benchmark[n] for n in fp_names if n in per_benchmark]
    if int_vals:
        out["Int.Avg"] = geometric_mean(int_vals) - 1.0
    if fp_vals:
        out["Fp.Avg"] = geometric_mean(fp_vals) - 1.0
    return out
