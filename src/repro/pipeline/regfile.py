"""Physical register file accounting (Table 1: 356 INT / 356 FP).

The paper sizes the register files generously (356 + 356 against a
256-entry ROB) precisely so they never throttle the window; this module
models the free lists anyway so the constraint is enforced rather than
assumed.  Renaming itself is implicit in the simulator's dataflow
(RAW dependences resolve through per-register last-writer tracking,
which is what a rename table computes).
"""

from __future__ import annotations

from repro.workload.isa import FP_REG_BASE, NO_REG


class RegisterFile:
    """Free-list accounting for one physical register file pair."""

    def __init__(self, int_registers: int, fp_registers: int,
                 arch_registers: int = 32) -> None:
        if int_registers <= arch_registers or fp_registers <= arch_registers:
            raise ValueError("need more physical than architectural registers")
        self._int_free = int_registers - arch_registers
        self._fp_free = fp_registers - arch_registers
        self.rename_stalls = 0

    @staticmethod
    def _is_fp(reg: int) -> bool:
        return reg >= FP_REG_BASE

    def note_rename_stall(self) -> None:
        """Record one dispatch cycle lost to an empty free list."""
        self.rename_stalls += 1

    def can_rename(self, dest: int) -> bool:
        if dest == NO_REG:
            return True
        if self._is_fp(dest):
            return self._fp_free > 0
        return self._int_free > 0

    def rename(self, dest: int) -> None:
        """Claim a physical register for ``dest`` (NO_REG is free)."""
        if dest == NO_REG:
            return
        if self._is_fp(dest):
            if self._fp_free <= 0:
                raise RuntimeError("FP register file exhausted")
            self._fp_free -= 1
        else:
            if self._int_free <= 0:
                raise RuntimeError("INT register file exhausted")
            self._int_free -= 1

    def release(self, dest: int) -> None:
        """Return the previous mapping's register (at commit or squash)."""
        if dest == NO_REG:
            return
        if self._is_fp(dest):
            self._fp_free += 1
        else:
            self._int_free += 1
