"""The out-of-order core: fetch, dispatch, issue, memory, commit.

A trace-driven, cycle-accurate model of the Table 1 machine.  Control
flow is always correct-path (mispredicted branches create fetch
bubbles); memory-order violations squash and *replay* from the violating
instruction, rewinding the trace fetch pointer exactly as the paper's
squash-and-refetch recovery does.

Cycle phasing (per simulated cycle, in this order):

1. **commit** — retire completed instructions in order; stores write the
   cache and (pair mode) run the deferred store-load ordering search.
2. **complete** — scheduled writebacks wake dependents.
3. **memory** — loads/stores whose address generation finished arbitrate
   for LSQ search ports and the data cache; structural losers retry.
4. **issue** — oldest-first select of ready instructions onto
   functional units.
5. **dispatch** — rename into ROB + issue queue + LSQ.
6. **fetch** — fill the fetch buffer; branch predictor; I-cache.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.config import MachineConfig
from repro.core.hotpath import hotpath
from repro.core.lsq import LoadStoreQueue, Retry, Violation
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.branch_predictor import HybridBranchPredictor
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.functional_units import FunctionalUnits
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.regfile import RegisterFile
from repro.pipeline.rob import ReorderBuffer
from repro.stats.counters import SimStats
from repro.workload.isa import NO_REG, OP_FLAGS
from repro.workload.trace import Trace

#: Components any stage may touch directly (sim-lint SIM-M registry):
#: the observability layer, like stats/tracer, is write-from-anywhere.
SIM_LINT_INTERFACES = frozenset({"obs"})


@dataclass
class SimulationResult:
    """Everything a harness needs from one run."""

    trace_name: str
    config: MachineConfig
    stats: SimStats

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class Processor:
    """One configured machine ready to run one trace."""

    def __init__(self, machine: MachineConfig,
                 predictor_clear_interval: Optional[int] = None,
                 checker=None, obs=None) -> None:
        self.machine = machine
        #: Optional ValidationChecker (repro.validate) cross-checking
        #: every committed load against the memory-model oracle and the
        #: pipeline against its structural invariants.
        self.checker = checker
        #: Optional Observer (repro.obs): structured events, interval
        #: metrics and CPI stall attribution.  Every hook below is
        #: guarded by ``is not None`` so a bare run pays one comparison.
        self.obs = obs
        self.stats = SimStats()
        self.memory = MemoryHierarchy(machine.memory)
        kwargs = {}
        if predictor_clear_interval is not None:
            kwargs["clear_interval"] = predictor_clear_interval
        self.lsq = LoadStoreQueue(
            machine.lsq, machine.store_sets, self.memory, self.stats,
            pair_rollback_penalty=machine.core.pair_rollback_penalty,
            **kwargs)
        self.branch_predictor = HybridBranchPredictor(machine.branch)
        self.rob = ReorderBuffer(machine.core.rob_entries)
        self.iq = IssueQueue(machine.core.issue_queue_entries)
        self.fus = FunctionalUnits(machine.core.int_units,
                                   machine.core.fp_units)
        self.regfile = RegisterFile(machine.core.int_registers,
                                    machine.core.fp_registers)

        # Per-cycle loop bounds, hoisted out of the stage methods (the
        # config dataclass attribute chain is a measurable per-cycle
        # cost at ~hundreds of thousands of cycles per run).
        core = machine.core
        self._commit_width = core.commit_width
        self._issue_width = core.issue_width
        self._fetch_width = core.fetch_width

        self.cycle = 0
        self._seq = 0
        self._fetch_index = 0
        self._fetch_stall_until = 0
        self._fetch_buffer: Deque[DynInst] = deque()
        self._redirect_branch: Optional[DynInst] = None
        self._last_fetch_block = -1
        self._last_writer: Dict[int, DynInst] = {}
        self._events: Dict[int, List[DynInst]] = {}
        # memory stage: (seq, inst, attempt_cycle) sorted by seq
        self._mem_stage: List[list] = []
        self._last_commit_cycle = 0
        self._trace: Optional[Trace] = None
        #: Optional PipelineTracer (repro.pipeline.debug) recording
        #: per-instruction stage timestamps.
        self.tracer = None

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def warm_caches(self, trace: Trace) -> None:
        """Pre-touch every block the trace references, once.

        The paper measures 500M instructions after skipping 3 billion,
        i.e. with fully warm caches; our traces are short enough that
        serial first-touch misses would otherwise dominate.  Warming
        touches each unique block once, so capacity/conflict misses
        (streams larger than a cache level) still occur in steady state.
        """
        seen_code = set()
        seen_data = set()
        for inst in trace:
            block = inst.pc >> 5
            if block not in seen_code:
                seen_code.add(block)
                self.memory.instruction_access(inst.pc)
            if OP_FLAGS[inst.op][2] and not trace.is_cold_address(inst.addr):
                dblock = inst.addr >> 5
                if dblock not in seen_data:
                    seen_data.add(dblock)
                    self.memory.data_access(inst.addr)

    def warm_predictor(self, trace: Trace, window: int = 256) -> None:
        """Pre-train the memory-dependence predictor.

        The paper measures 500M instructions after skipping 3 billion, so
        stable store-load pairs are fully trained before measurement
        begins; on our short traces the one-violation-per-static-pair
        training cost would otherwise masquerade as steady-state
        overhead.  Every load whose address was last written by a store
        at most ``window`` instructions earlier (the ROB reach) gets its
        pair merged into the tables.  Periodic table clearing during the
        measured run still exercises re-training.
        """
        recent_stores = {}
        for index, inst in enumerate(trace):
            flags = OP_FLAGS[inst.op]
            if flags[1]:        # store
                recent_stores[inst.addr] = (index, inst.pc)
            elif flags[0]:      # load
                hit = recent_stores.get(inst.addr)
                if hit is not None and index - hit[0] <= window:
                    self.lsq.predictor.train_violation(inst.pc, hit[1])

    def run(self, trace: Trace, max_cycles: Optional[int] = None,
            warm: bool = True) -> SimulationResult:
        """Simulate the whole trace (or until ``max_cycles``)."""
        if warm:
            self.warm_caches(trace)
            self.warm_predictor(trace)
        self._trace = trace
        if self.checker is not None:
            self.checker.attach(self, trace)
        if self.obs is not None:
            # After warming, so warm-up traffic stays out of the events.
            self.obs.attach(self)
        watchdog = self.machine.core.watchdog_cycles
        while not self._finished():
            self.step()
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if self.cycle - self._last_commit_cycle > watchdog:
                from repro.validate.bundle import (SimulationDeadlock,
                                                   build_bundle)
                raise SimulationDeadlock(
                    f"no commit for {watchdog} cycles at cycle "
                    f"{self.cycle} (trace {trace.name!r})",
                    bundle=build_bundle(self))
        self.stats.cycles = self.cycle
        return SimulationResult(trace.name, self.machine, self.stats)

    def _finished(self) -> bool:
        return (self._trace is not None
                and self._fetch_index >= len(self._trace)
                and self.rob.empty and not self._fetch_buffer)

    def step(self) -> None:
        """Advance one cycle."""
        if self.obs is not None:
            self.obs.begin_cycle(self.cycle)
        self.lsq.begin_cycle(self.cycle)
        self._commit()
        self._complete()
        self._memory_stage()
        self._issue()
        self._dispatch()
        self._fetch()
        self.lsq.sample()
        if self.checker is not None:
            self.checker.end_cycle()
        if self.obs is not None:
            self.obs.end_cycle(self)
        self.cycle += 1

    # ------------------------------------------------------------------
    # 1. commit
    # ------------------------------------------------------------------

    @hotpath
    def _commit(self) -> None:
        rob = self.rob
        lsq = self.lsq
        cycle = self.cycle
        tracer = self.tracer
        checker = self.checker
        stats = self.stats
        for __ in range(self._commit_width):
            head = rob.head
            # ROB entries are never COMMITTED or SQUASHED (both leave
            # the ROB), so "complete" reduces to one state check.
            if head is None or head.state is not InstState.COMPLETE:
                return
            violation: Optional[Violation] = None
            if head.is_store:
                outcome = lsq.try_commit_store(head, cycle)
                if isinstance(outcome, Retry):
                    return
                violation = outcome.violation
            elif head.is_load:
                lsq.commit_load(head)
            rob.commit_head()
            self.regfile.release(head.inst.dest)
            if tracer is not None:
                tracer.note("commit", head, cycle)
            if checker is not None:
                checker.on_commit(head)
            stats.committed += 1
            if head.is_load:
                stats.committed_loads += 1
            elif head.is_store:
                stats.committed_stores += 1
            elif head.is_branch:
                stats.committed_branches += 1
            elif head.is_membar:
                stats.committed_membars += 1
            self._last_commit_cycle = cycle
            lsq.maybe_clear_predictor(stats.committed)
            if violation is not None:
                self._recover(violation)
                return

    # ------------------------------------------------------------------
    # 2. complete / writeback
    # ------------------------------------------------------------------

    @hotpath
    def _complete(self) -> None:
        events = self._events.pop(self.cycle, None)
        if events is None:
            return
        cycle = self.cycle
        tracer = self.tracer
        iq_wake = self.iq.wake
        for inst in events:
            if inst.state is InstState.SQUASHED:
                continue
            inst.state = InstState.COMPLETE
            inst.complete_cycle = cycle
            if tracer is not None:
                tracer.note("complete", inst, cycle)
            for consumer in inst.consumers:
                state = consumer.state
                if state is InstState.SQUASHED:
                    continue
                consumer.pending_sources -= 1
                if (consumer.pending_sources == 0
                        and state is InstState.DISPATCHED):
                    iq_wake(consumer)
            if inst is self._redirect_branch:
                self._redirect_branch = None
                bubble = max(self.machine.core.branch_mispredict_penalty - 2,
                             0)
                self._fetch_stall_until = max(self._fetch_stall_until,
                                              self.cycle + bubble)

    # ------------------------------------------------------------------
    # 3. memory stage
    # ------------------------------------------------------------------

    @hotpath
    def _memory_stage(self) -> None:
        lsq = self.lsq
        cycle = self.cycle
        invalidation = lsq.poll_invalidation(cycle)
        if invalidation is not None:
            self._recover(invalidation)
            return
        mem_stage = self._mem_stage
        stats = self.stats
        index = 0
        while index < len(mem_stage):
            entry = mem_stage[index]
            inst = entry[1]
            if inst.state is InstState.SQUASHED:
                mem_stage.pop(index)
                continue
            if entry[2] > cycle:
                index += 1
                continue
            if inst.is_load:
                reason = lsq.load_blocked(inst)
                if reason is not None:
                    if reason == "load_buffer_full":
                        stats.load_buffer_full_stalls += 1
                    elif reason == "store_set":
                        stats.store_set_waits += 1
                    index += 1
                    continue
                outcome = lsq.try_execute_load(inst, cycle)
                if isinstance(outcome, Retry):
                    entry[2] = outcome.next_cycle
                    index += 1
                    continue
                mem_stage.pop(index)
                inst.state = InstState.EXECUTING
                self._events.setdefault(cycle + outcome.latency,
                                        []).append(inst)
                if self.checker is not None:
                    self.checker.on_load_executed(inst, outcome.violation)
                if outcome.violation is not None:
                    self._recover(outcome.violation)
                    return
            elif inst.is_store:
                if lsq.store_blocked(inst) is not None:
                    index += 1
                    continue
                outcome = lsq.try_execute_store(inst, cycle)
                if isinstance(outcome, Retry):
                    entry[2] = outcome.next_cycle
                    index += 1
                    continue
                mem_stage.pop(index)
                inst.state = InstState.COMPLETE
                inst.complete_cycle = cycle
                if self.tracer is not None:
                    self.tracer.note("complete", inst, cycle)
                if outcome.violation is not None:
                    self._recover(outcome.violation)
                    return
            else:  # memory barrier
                outcome = lsq.try_execute_membar(inst, cycle)
                if isinstance(outcome, Retry):
                    entry[2] = outcome.next_cycle
                    index += 1
                    continue
                mem_stage.pop(index)
                inst.state = InstState.COMPLETE
                inst.complete_cycle = cycle
                if self.tracer is not None:
                    self.tracer.note("complete", inst, cycle)

    # ------------------------------------------------------------------
    # 4. issue
    # ------------------------------------------------------------------

    @hotpath
    def _issue(self) -> None:
        issued = 0
        deferred: List[DynInst] = []
        attempts = 0
        width = self._issue_width
        max_attempts = width * 3
        iq = self.iq
        fus = self.fus
        cycle = self.cycle
        tracer = self.tracer
        obs = self.obs
        mem_stage = self._mem_stage
        events = self._events
        while issued < width and attempts < max_attempts:
            attempts += 1
            inst = iq.pop_ready()
            if inst is None:
                break
            if not fus.try_issue(inst.inst.op, cycle):
                deferred.append(inst)
                continue
            iq.release()
            inst.state = InstState.ISSUED
            inst.issue_cycle = cycle
            if tracer is not None:
                tracer.note("issue", inst, cycle)
            if obs is not None:
                obs.on_issue(inst)
            issued += 1
            if inst.is_memory or inst.is_membar:
                # One cycle of address generation (memory ops), then the
                # LSQ access; barriers wait here for older memory ops.
                bisect.insort(mem_stage, [inst.seq, inst, cycle + 1])
            else:
                events.setdefault(cycle + inst.latency, []).append(inst)
        for inst in deferred:
            iq.unpop(inst)

    # ------------------------------------------------------------------
    # 5. dispatch
    # ------------------------------------------------------------------

    @hotpath
    def _dispatch(self) -> None:
        fetch_buffer = self._fetch_buffer
        if not fetch_buffer:
            return
        rob = self.rob
        iq = self.iq
        regfile = self.regfile
        lsq = self.lsq
        stats = self.stats
        tracer = self.tracer
        checker = self.checker
        for __ in range(self._issue_width):
            if not fetch_buffer:
                return
            inst = fetch_buffer[0]
            if rob.full:
                stats.rob_full_stalls += 1
                return
            if iq.full:
                stats.iq_full_stalls += 1
                return
            if inst.is_memory and not lsq.can_allocate(inst):
                if inst.is_load:
                    stats.lq_full_stalls += 1
                else:
                    stats.sq_full_stalls += 1
                return
            if not regfile.can_rename(inst.inst.dest):
                regfile.note_rename_stall()
                return
            fetch_buffer.popleft()
            if tracer is not None:
                tracer.note("dispatch", inst, self.cycle)
            self._wire_dependences(inst)
            regfile.rename(inst.inst.dest)
            rob.dispatch(inst)
            iq.dispatch(inst)
            if inst.is_memory:
                lsq.allocate(inst)
                if checker is not None:
                    checker.on_dispatch(inst)
            elif inst.is_membar:
                lsq.on_membar_dispatch(inst)

    @hotpath
    def _wire_dependences(self, inst: DynInst) -> None:
        last_writer = self._last_writer
        for src in inst.inst.srcs:
            if src == NO_REG:
                continue
            writer = last_writer.get(src)
            # state < COMPLETE means DISPATCHED/ISSUED/EXECUTING — i.e.
            # neither complete nor squashed — in one integer compare.
            if writer is not None and writer.state < InstState.COMPLETE:
                writer.consumers.append(inst)
                inst.pending_sources += 1
        dest = inst.inst.dest
        if dest != NO_REG:
            inst.prev_writer = last_writer.get(dest)
            last_writer[dest] = inst

    # ------------------------------------------------------------------
    # 6. fetch
    # ------------------------------------------------------------------

    @hotpath
    def _fetch(self) -> None:
        if self.cycle < self._fetch_stall_until:
            return
        if self._redirect_branch is not None:
            return
        trace = self._trace
        trace_len = len(trace)
        fetch_buffer = self._fetch_buffer
        fetched = 0
        limit = self._fetch_width
        buffer_cap = 2 * limit
        while (fetched < limit and len(fetch_buffer) < buffer_cap
                and self._fetch_index < trace_len):
            raw = trace[self._fetch_index]
            block = raw.pc >> 6
            if block != self._last_fetch_block:
                self._last_fetch_block = block
                access = self.memory.instruction_access(raw.pc)
                if not access.l1_hit:
                    self._fetch_stall_until = self.cycle + access.latency
                    return
            dyn = DynInst(self._seq, self._fetch_index, raw)
            self._seq += 1
            self._fetch_index += 1
            fetch_buffer.append(dyn)
            fetched += 1
            if dyn.is_branch:
                correct = self.branch_predictor.predict_and_update(
                    raw.pc, raw.taken)
                if not correct:
                    dyn.mispredicted = True
                    self.stats.branch_mispredicts += 1
                    self._redirect_branch = dyn
                    return
                if raw.taken:
                    return  # one taken branch per fetch group

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self, violation: Violation) -> None:
        """Squash from the violating instruction and replay."""
        seq = violation.squash_seq
        if self.checker is not None:
            self.checker.on_squash(seq, self.cycle)
        self.lsq.squash_from(seq)
        squashed = self.rob.squash_from(seq)  # youngest first
        in_queue = 0
        for inst in squashed:
            if self.tracer is not None:
                self.tracer.note("squash", inst, self.cycle)
            dest = inst.inst.dest
            if dest != NO_REG and self._last_writer.get(dest) is inst:
                if inst.prev_writer is not None:
                    self._last_writer[dest] = inst.prev_writer
                else:
                    del self._last_writer[dest]
            if dest != NO_REG:
                self.regfile.release(dest)
            in_queue += 1 if self._was_in_issue_queue(inst) else 0
        self.iq.squash(in_queue)
        self._mem_stage = [entry for entry in self._mem_stage
                           if entry[0] < seq]
        # Squashed instructions still in the fetch buffer: the buffer is
        # younger than anything in the ROB, so clear it wholesale.
        self._fetch_buffer.clear()
        # The squash may have swallowed the mispredicted branch we were
        # waiting on — including while it was still in the fetch buffer,
        # where it never transitions to SQUASHED.
        if self._redirect_branch is not None and \
                self._redirect_branch.seq >= seq:
            self._redirect_branch = None
        if squashed:
            self._fetch_index = squashed[-1].trace_index
        penalty = (self.machine.core.branch_mispredict_penalty
                   + violation.extra_penalty)
        if self.obs is not None:
            self.obs.on_recover(violation, self.cycle, penalty)
        self._fetch_stall_until = max(self._fetch_stall_until,
                                      self.cycle + penalty)
        self._last_fetch_block = -1

    @staticmethod
    def _was_in_issue_queue(inst: DynInst) -> bool:
        # rob.squash_from() already flipped states to SQUASHED; an
        # instruction occupied an IQ slot iff it had not yet issued.
        return inst.issue_cycle < 0


def simulate(trace: Trace, machine: MachineConfig,
             max_cycles: Optional[int] = None,
             predictor_clear_interval: Optional[int] = None,
             warm: bool = True, validate: bool = False,
             checker=None, obs=None) -> SimulationResult:
    """Run ``trace`` on ``machine`` and return the statistics.

    ``warm`` pre-touches caches (see :meth:`Processor.warm_caches`);
    disable it to study cold-start behaviour.  ``validate=True`` runs
    under the full memory-model oracle and cycle-level invariant
    checker (see :mod:`repro.validate`), raising ``ValidationError`` on
    the first discrepancy; pass an explicit ``checker`` to customise
    (e.g. record-only mode for fault campaigns).  ``obs`` attaches a
    :class:`repro.obs.Observer` collecting structured events, interval
    metrics and the CPI stall stack; the returned statistics are
    bit-identical with and without it.

    ``machine.backend`` selects the engine: ``"python"`` runs this
    module's per-cycle reference loop, ``"fast"`` the batched
    :mod:`repro.fastcore` engine (bit-identical ``SimStats`` by
    contract; it falls back to the reference loop whenever a checker,
    observer or tracer is attached).
    """
    if checker is None and validate:
        from repro.validate import ValidationChecker
        checker = ValidationChecker()
    if machine.backend == "fast":
        # Deferred import: repro.fastcore subclasses Processor.  The
        # fast engine falls back to this per-cycle one on its own when
        # a checker/observer/tracer needs per-cycle callbacks.
        from repro.fastcore import FastProcessor
        processor: Processor = FastProcessor(
            machine, predictor_clear_interval=predictor_clear_interval,
            checker=checker, obs=obs)
    else:
        processor = Processor(
            machine, predictor_clear_interval=predictor_clear_interval,
            checker=checker, obs=obs)
    return processor.run(trace, max_cycles=max_cycles, warm=warm)
