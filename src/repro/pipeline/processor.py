"""The out-of-order core: fetch, dispatch, issue, memory, commit.

A trace-driven, cycle-accurate model of the Table 1 machine.  Control
flow is always correct-path (mispredicted branches create fetch
bubbles); memory-order violations squash and *replay* from the violating
instruction, rewinding the trace fetch pointer exactly as the paper's
squash-and-refetch recovery does.

Cycle phasing (per simulated cycle, in this order):

1. **commit** — retire completed instructions in order; stores write the
   cache and (pair mode) run the deferred store-load ordering search.
2. **complete** — scheduled writebacks wake dependents.
3. **memory** — loads/stores whose address generation finished arbitrate
   for LSQ search ports and the data cache; structural losers retry.
4. **issue** — oldest-first select of ready instructions onto
   functional units.
5. **dispatch** — rename into ROB + issue queue + LSQ.
6. **fetch** — fill the fetch buffer; branch predictor; I-cache.
"""

from __future__ import annotations

import bisect
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional

from repro.config import MachineConfig
from repro.core.lsq import LoadStoreQueue, Retry, Violation
from repro.memory.hierarchy import MemoryHierarchy
from repro.pipeline.branch_predictor import HybridBranchPredictor
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.functional_units import FunctionalUnits
from repro.pipeline.issue_queue import IssueQueue
from repro.pipeline.regfile import RegisterFile
from repro.pipeline.rob import ReorderBuffer
from repro.stats.counters import SimStats
from repro.workload.isa import NO_REG
from repro.workload.trace import Trace

#: Components any stage may touch directly (sim-lint SIM-M registry):
#: the observability layer, like stats/tracer, is write-from-anywhere.
SIM_LINT_INTERFACES = frozenset({"obs"})


@dataclass
class SimulationResult:
    """Everything a harness needs from one run."""

    trace_name: str
    config: MachineConfig
    stats: SimStats

    @property
    def ipc(self) -> float:
        return self.stats.ipc


class Processor:
    """One configured machine ready to run one trace."""

    def __init__(self, machine: MachineConfig,
                 predictor_clear_interval: Optional[int] = None,
                 checker=None, obs=None) -> None:
        self.machine = machine
        #: Optional ValidationChecker (repro.validate) cross-checking
        #: every committed load against the memory-model oracle and the
        #: pipeline against its structural invariants.
        self.checker = checker
        #: Optional Observer (repro.obs): structured events, interval
        #: metrics and CPI stall attribution.  Every hook below is
        #: guarded by ``is not None`` so a bare run pays one comparison.
        self.obs = obs
        self.stats = SimStats()
        self.memory = MemoryHierarchy(machine.memory)
        kwargs = {}
        if predictor_clear_interval is not None:
            kwargs["clear_interval"] = predictor_clear_interval
        self.lsq = LoadStoreQueue(
            machine.lsq, machine.store_sets, self.memory, self.stats,
            pair_rollback_penalty=machine.core.pair_rollback_penalty,
            **kwargs)
        self.branch_predictor = HybridBranchPredictor(machine.branch)
        self.rob = ReorderBuffer(machine.core.rob_entries)
        self.iq = IssueQueue(machine.core.issue_queue_entries)
        self.fus = FunctionalUnits(machine.core.int_units,
                                   machine.core.fp_units)
        self.regfile = RegisterFile(machine.core.int_registers,
                                    machine.core.fp_registers)

        self.cycle = 0
        self._seq = 0
        self._fetch_index = 0
        self._fetch_stall_until = 0
        self._fetch_buffer: Deque[DynInst] = deque()
        self._redirect_branch: Optional[DynInst] = None
        self._last_fetch_block = -1
        self._last_writer: Dict[int, DynInst] = {}
        self._events: Dict[int, List[DynInst]] = {}
        # memory stage: (seq, inst, attempt_cycle) sorted by seq
        self._mem_stage: List[list] = []
        self._last_commit_cycle = 0
        self._trace: Optional[Trace] = None
        #: Optional PipelineTracer (repro.pipeline.debug) recording
        #: per-instruction stage timestamps.
        self.tracer = None

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------

    def warm_caches(self, trace: Trace) -> None:
        """Pre-touch every block the trace references, once.

        The paper measures 500M instructions after skipping 3 billion,
        i.e. with fully warm caches; our traces are short enough that
        serial first-touch misses would otherwise dominate.  Warming
        touches each unique block once, so capacity/conflict misses
        (streams larger than a cache level) still occur in steady state.
        """
        seen_code = set()
        seen_data = set()
        for inst in trace:
            block = inst.pc >> 5
            if block not in seen_code:
                seen_code.add(block)
                self.memory.instruction_access(inst.pc)
            if inst.is_memory and not trace.is_cold_address(inst.addr):
                dblock = inst.addr >> 5
                if dblock not in seen_data:
                    seen_data.add(dblock)
                    self.memory.data_access(inst.addr)

    def warm_predictor(self, trace: Trace, window: int = 256) -> None:
        """Pre-train the memory-dependence predictor.

        The paper measures 500M instructions after skipping 3 billion, so
        stable store-load pairs are fully trained before measurement
        begins; on our short traces the one-violation-per-static-pair
        training cost would otherwise masquerade as steady-state
        overhead.  Every load whose address was last written by a store
        at most ``window`` instructions earlier (the ROB reach) gets its
        pair merged into the tables.  Periodic table clearing during the
        measured run still exercises re-training.
        """
        recent_stores = {}
        for index, inst in enumerate(trace):
            if inst.is_store:
                recent_stores[inst.addr] = (index, inst.pc)
            elif inst.is_load:
                hit = recent_stores.get(inst.addr)
                if hit is not None and index - hit[0] <= window:
                    self.lsq.predictor.train_violation(inst.pc, hit[1])

    def run(self, trace: Trace, max_cycles: Optional[int] = None,
            warm: bool = True) -> SimulationResult:
        """Simulate the whole trace (or until ``max_cycles``)."""
        if warm:
            self.warm_caches(trace)
            self.warm_predictor(trace)
        self._trace = trace
        if self.checker is not None:
            self.checker.attach(self, trace)
        if self.obs is not None:
            # After warming, so warm-up traffic stays out of the events.
            self.obs.attach(self)
        watchdog = self.machine.core.watchdog_cycles
        while not self._finished():
            self.step()
            if max_cycles is not None and self.cycle >= max_cycles:
                break
            if self.cycle - self._last_commit_cycle > watchdog:
                from repro.validate.bundle import (SimulationDeadlock,
                                                   build_bundle)
                raise SimulationDeadlock(
                    f"no commit for {watchdog} cycles at cycle "
                    f"{self.cycle} (trace {trace.name!r})",
                    bundle=build_bundle(self))
        self.stats.cycles = self.cycle
        return SimulationResult(trace.name, self.machine, self.stats)

    def _finished(self) -> bool:
        return (self._trace is not None
                and self._fetch_index >= len(self._trace)
                and self.rob.empty and not self._fetch_buffer)

    def step(self) -> None:
        """Advance one cycle."""
        if self.obs is not None:
            self.obs.begin_cycle(self.cycle)
        self.lsq.begin_cycle(self.cycle)
        self._commit()
        self._complete()
        self._memory_stage()
        self._issue()
        self._dispatch()
        self._fetch()
        self.lsq.sample()
        if self.checker is not None:
            self.checker.end_cycle()
        if self.obs is not None:
            self.obs.end_cycle(self)
        self.cycle += 1

    # ------------------------------------------------------------------
    # 1. commit
    # ------------------------------------------------------------------

    def _commit(self) -> None:
        for __ in range(self.machine.core.commit_width):
            head = self.rob.head
            if head is None or not head.complete:
                return
            violation: Optional[Violation] = None
            if head.is_store:
                outcome = self.lsq.try_commit_store(head, self.cycle)
                if isinstance(outcome, Retry):
                    return
                violation = outcome.violation
            elif head.is_load:
                self.lsq.commit_load(head)
            self.rob.commit_head()
            self.regfile.release(head.inst.dest)
            if self.tracer is not None:
                self.tracer.note("commit", head, self.cycle)
            if self.checker is not None:
                self.checker.on_commit(head)
            self._count_commit(head)
            self._last_commit_cycle = self.cycle
            self.lsq.maybe_clear_predictor(self.stats.committed)
            if violation is not None:
                self._recover(violation)
                return

    def _count_commit(self, inst: DynInst) -> None:
        self.stats.committed += 1
        if inst.is_load:
            self.stats.committed_loads += 1
        elif inst.is_store:
            self.stats.committed_stores += 1
        elif inst.is_branch:
            self.stats.committed_branches += 1
        elif inst.inst.op.is_membar:
            self.stats.committed_membars += 1

    # ------------------------------------------------------------------
    # 2. complete / writeback
    # ------------------------------------------------------------------

    def _schedule_completion(self, inst: DynInst, at_cycle: int) -> None:
        self._events.setdefault(at_cycle, []).append(inst)

    def _complete(self) -> None:
        for inst in self._events.pop(self.cycle, []):
            if inst.squashed:
                continue
            inst.state = InstState.COMPLETE
            inst.complete_cycle = self.cycle
            if self.tracer is not None:
                self.tracer.note("complete", inst, self.cycle)
            for consumer in inst.consumers:
                if consumer.squashed:
                    continue
                consumer.pending_sources -= 1
                if (consumer.pending_sources == 0
                        and consumer.state is InstState.DISPATCHED):
                    self.iq.wake(consumer)
            if inst is self._redirect_branch:
                self._redirect_branch = None
                bubble = max(self.machine.core.branch_mispredict_penalty - 2,
                             0)
                self._fetch_stall_until = max(self._fetch_stall_until,
                                              self.cycle + bubble)

    # ------------------------------------------------------------------
    # 3. memory stage
    # ------------------------------------------------------------------

    def _memory_stage(self) -> None:
        invalidation = self.lsq.poll_invalidation(self.cycle)
        if invalidation is not None:
            self._recover(invalidation)
            return
        index = 0
        while index < len(self._mem_stage):
            entry = self._mem_stage[index]
            __, inst, attempt = entry
            if inst.squashed:
                self._mem_stage.pop(index)
                continue
            if attempt > self.cycle:
                index += 1
                continue
            if inst.is_load:
                reason = self.lsq.load_blocked(inst)
                if reason is not None:
                    if reason == "load_buffer_full":
                        self.stats.load_buffer_full_stalls += 1
                    elif reason == "store_set":
                        self.stats.store_set_waits += 1
                    index += 1
                    continue
                outcome = self.lsq.try_execute_load(inst, self.cycle)
                if isinstance(outcome, Retry):
                    entry[2] = outcome.next_cycle
                    index += 1
                    continue
                self._mem_stage.pop(index)
                inst.state = InstState.EXECUTING
                self._schedule_completion(inst, self.cycle + outcome.latency)
                if self.checker is not None:
                    self.checker.on_load_executed(inst, outcome.violation)
                if outcome.violation is not None:
                    self._recover(outcome.violation)
                    return
            elif inst.is_store:
                if self.lsq.store_blocked(inst) is not None:
                    index += 1
                    continue
                outcome = self.lsq.try_execute_store(inst, self.cycle)
                if isinstance(outcome, Retry):
                    entry[2] = outcome.next_cycle
                    index += 1
                    continue
                self._mem_stage.pop(index)
                inst.state = InstState.COMPLETE
                inst.complete_cycle = self.cycle
                if self.tracer is not None:
                    self.tracer.note("complete", inst, self.cycle)
                if outcome.violation is not None:
                    self._recover(outcome.violation)
                    return
            else:  # memory barrier
                outcome = self.lsq.try_execute_membar(inst, self.cycle)
                if isinstance(outcome, Retry):
                    entry[2] = outcome.next_cycle
                    index += 1
                    continue
                self._mem_stage.pop(index)
                inst.state = InstState.COMPLETE
                inst.complete_cycle = self.cycle
                if self.tracer is not None:
                    self.tracer.note("complete", inst, self.cycle)

    # ------------------------------------------------------------------
    # 4. issue
    # ------------------------------------------------------------------

    def _issue(self) -> None:
        issued = 0
        deferred: List[DynInst] = []
        attempts = 0
        max_attempts = self.machine.core.issue_width * 3
        while issued < self.machine.core.issue_width and \
                attempts < max_attempts:
            attempts += 1
            inst = self.iq.pop_ready()
            if inst is None:
                break
            if not self.fus.try_issue(inst.inst.op, self.cycle):
                deferred.append(inst)
                continue
            self.iq.release()
            inst.state = InstState.ISSUED
            inst.issue_cycle = self.cycle
            if self.tracer is not None:
                self.tracer.note("issue", inst, self.cycle)
            if self.obs is not None:
                self.obs.on_issue(inst)
            issued += 1
            if inst.is_memory or inst.inst.op.is_membar:
                # One cycle of address generation (memory ops), then the
                # LSQ access; barriers wait here for older memory ops.
                bisect.insort(self._mem_stage,
                              [inst.seq, inst, self.cycle + 1])
            else:
                self._schedule_completion(
                    inst, self.cycle + inst.inst.latency)
        for inst in deferred:
            self.iq.unpop(inst)

    # ------------------------------------------------------------------
    # 5. dispatch
    # ------------------------------------------------------------------

    def _dispatch(self) -> None:
        for __ in range(self.machine.core.issue_width):
            if not self._fetch_buffer:
                return
            inst = self._fetch_buffer[0]
            if self.rob.full:
                self.stats.rob_full_stalls += 1
                return
            if self.iq.full:
                self.stats.iq_full_stalls += 1
                return
            if inst.is_memory and not self.lsq.can_allocate(inst):
                if inst.is_load:
                    self.stats.lq_full_stalls += 1
                else:
                    self.stats.sq_full_stalls += 1
                return
            if not self.regfile.can_rename(inst.inst.dest):
                self.regfile.note_rename_stall()
                return
            self._fetch_buffer.popleft()
            if self.tracer is not None:
                self.tracer.note("dispatch", inst, self.cycle)
            self._wire_dependences(inst)
            self.regfile.rename(inst.inst.dest)
            self.rob.dispatch(inst)
            self.iq.dispatch(inst)
            if inst.is_memory:
                self.lsq.allocate(inst)
                if self.checker is not None:
                    self.checker.on_dispatch(inst)
            elif inst.inst.op.is_membar:
                self.lsq.on_membar_dispatch(inst)

    def _wire_dependences(self, inst: DynInst) -> None:
        for src in inst.inst.srcs:
            if src == NO_REG:
                continue
            writer = self._last_writer.get(src)
            if writer is not None and not writer.complete \
                    and not writer.squashed:
                writer.consumers.append(inst)
                inst.pending_sources += 1
        dest = inst.inst.dest
        if dest != NO_REG:
            inst.prev_writer = self._last_writer.get(dest)
            self._last_writer[dest] = inst

    # ------------------------------------------------------------------
    # 6. fetch
    # ------------------------------------------------------------------

    def _fetch(self) -> None:
        if self.cycle < self._fetch_stall_until:
            return
        if self._redirect_branch is not None:
            return
        trace = self._trace
        fetched = 0
        limit = self.machine.core.fetch_width
        buffer_cap = 2 * limit
        while (fetched < limit and len(self._fetch_buffer) < buffer_cap
                and self._fetch_index < len(trace)):
            raw = trace[self._fetch_index]
            block = raw.pc >> 6
            if block != self._last_fetch_block:
                self._last_fetch_block = block
                access = self.memory.instruction_access(raw.pc)
                if not access.l1_hit:
                    self._fetch_stall_until = self.cycle + access.latency
                    return
            dyn = DynInst(self._seq, self._fetch_index, raw)
            self._seq += 1
            self._fetch_index += 1
            self._fetch_buffer.append(dyn)
            fetched += 1
            if raw.is_branch:
                correct = self.branch_predictor.predict_and_update(
                    raw.pc, raw.taken)
                if not correct:
                    dyn.mispredicted = True
                    self.stats.branch_mispredicts += 1
                    self._redirect_branch = dyn
                    return
                if raw.taken:
                    return  # one taken branch per fetch group

    # ------------------------------------------------------------------
    # recovery
    # ------------------------------------------------------------------

    def _recover(self, violation: Violation) -> None:
        """Squash from the violating instruction and replay."""
        seq = violation.squash_seq
        if self.checker is not None:
            self.checker.on_squash(seq, self.cycle)
        self.lsq.squash_from(seq)
        squashed = self.rob.squash_from(seq)  # youngest first
        in_queue = 0
        for inst in squashed:
            if self.tracer is not None:
                self.tracer.note("squash", inst, self.cycle)
            dest = inst.inst.dest
            if dest != NO_REG and self._last_writer.get(dest) is inst:
                if inst.prev_writer is not None:
                    self._last_writer[dest] = inst.prev_writer
                else:
                    del self._last_writer[dest]
            if dest != NO_REG:
                self.regfile.release(dest)
            in_queue += 1 if self._was_in_issue_queue(inst) else 0
        self.iq.squash(in_queue)
        self._mem_stage = [entry for entry in self._mem_stage
                           if entry[0] < seq]
        # Squashed instructions still in the fetch buffer: the buffer is
        # younger than anything in the ROB, so clear it wholesale.
        self._fetch_buffer.clear()
        # The squash may have swallowed the mispredicted branch we were
        # waiting on — including while it was still in the fetch buffer,
        # where it never transitions to SQUASHED.
        if self._redirect_branch is not None and \
                self._redirect_branch.seq >= seq:
            self._redirect_branch = None
        if squashed:
            self._fetch_index = squashed[-1].trace_index
        penalty = (self.machine.core.branch_mispredict_penalty
                   + violation.extra_penalty)
        if self.obs is not None:
            self.obs.on_recover(violation, self.cycle, penalty)
        self._fetch_stall_until = max(self._fetch_stall_until,
                                      self.cycle + penalty)
        self._last_fetch_block = -1

    @staticmethod
    def _was_in_issue_queue(inst: DynInst) -> bool:
        # rob.squash_from() already flipped states to SQUASHED; an
        # instruction occupied an IQ slot iff it had not yet issued.
        return inst.issue_cycle < 0


def simulate(trace: Trace, machine: MachineConfig,
             max_cycles: Optional[int] = None,
             predictor_clear_interval: Optional[int] = None,
             warm: bool = True, validate: bool = False,
             checker=None, obs=None) -> SimulationResult:
    """Run ``trace`` on ``machine`` and return the statistics.

    ``warm`` pre-touches caches (see :meth:`Processor.warm_caches`);
    disable it to study cold-start behaviour.  ``validate=True`` runs
    under the full memory-model oracle and cycle-level invariant
    checker (see :mod:`repro.validate`), raising ``ValidationError`` on
    the first discrepancy; pass an explicit ``checker`` to customise
    (e.g. record-only mode for fault campaigns).  ``obs`` attaches a
    :class:`repro.obs.Observer` collecting structured events, interval
    metrics and the CPI stall stack; the returned statistics are
    bit-identical with and without it.
    """
    if checker is None and validate:
        from repro.validate import ValidationChecker
        checker = ValidationChecker()
    processor = Processor(machine,
                          predictor_clear_interval=predictor_clear_interval,
                          checker=checker, obs=obs)
    return processor.run(trace, max_cycles=max_cycles, warm=warm)
