"""Out-of-order superscalar core substrate.

The processor is a trace-driven, cycle-accurate model of the Table 1
machine: hybrid branch prediction, a reorder buffer, an issue queue with
wakeup/select, pipelined functional units, and in-order commit.  All
memory disambiguation is delegated to a pluggable load/store queue from
:mod:`repro.core`.
"""

from repro.pipeline.branch_predictor import HybridBranchPredictor
from repro.pipeline.dyninst import DynInst, InstState
from repro.pipeline.processor import Processor, SimulationResult, simulate

__all__ = [
    "HybridBranchPredictor",
    "DynInst",
    "InstState",
    "Processor",
    "SimulationResult",
    "simulate",
]
