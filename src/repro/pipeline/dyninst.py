"""Dynamic (in-flight) instruction state.

A :class:`DynInst` wraps one trace :class:`~repro.workload.isa.Instruction`
for one trip through the pipeline.  After a memory-order violation the
same trace instruction is re-fetched as a *new* DynInst with a larger
sequence number, so sequence numbers always reflect current program
order among in-flight instructions.
"""

from __future__ import annotations

import enum
from typing import List, Optional

from repro.workload.isa import OP_FLAGS, Instruction


class InstState(enum.IntEnum):
    DISPATCHED = 0   # in ROB + issue queue, waiting for operands
    ISSUED = 1       # selected; executing (memory ops: address generation)
    EXECUTING = 2    # memory ops: performing the LSQ/cache access
    COMPLETE = 3     # result available; waiting for in-order commit
    COMMITTED = 4
    SQUASHED = 5


class DynInst:
    """One in-flight dynamic instruction.

    The trace instruction's classification bits and operands
    (``is_load`` … ``latency``) are copied into slots at construction:
    the simulator reads them millions of times per run, and a plain
    slot read is several times cheaper than a property chained through
    ``Instruction`` and ``OpClass``.  They are immutable by contract
    (``inst`` is frozen).
    """

    __slots__ = (
        "seq", "trace_index", "inst", "state",
        "is_load", "is_store", "is_memory", "is_branch", "is_membar",
        "addr", "size", "pc", "latency",
        "pending_sources", "consumers", "prev_writer",
        "issue_cycle", "complete_cycle",
        "forwarded_from", "forwarded_from_pc", "ooo_issued",
        "load_buffer_slot", "wait_store_seq", "predicted_dependent",
        "searched_sq", "lsq_segment", "lsq_virtual", "ssid",
        "mem_attempt_cycle", "mispredicted", "mem_executed",
    )

    def __init__(self, seq: int, trace_index: int, inst: Instruction) -> None:
        self.seq = seq
        self.trace_index = trace_index
        self.inst = inst
        self.state = InstState.DISPATCHED
        (self.is_load, self.is_store, self.is_memory, self.is_branch,
         self.is_membar, self.latency) = OP_FLAGS[inst.op]
        self.addr = inst.addr
        self.size = inst.size
        self.pc = inst.pc
        self.pending_sources = 0
        self.consumers: List["DynInst"] = []
        self.prev_writer: Optional["DynInst"] = None
        self.issue_cycle = -1
        self.complete_cycle = -1
        # -- memory bookkeeping -----------------------------------------
        self.forwarded_from: Optional[int] = None  # seq of forwarding store
        self.forwarded_from_pc: Optional[int] = None
        self.ooo_issued = False          # issued while an older load wasn't
        self.load_buffer_slot = -1
        self.wait_store_seq: Optional[int] = None  # store-set synchronisation
        self.predicted_dependent = False
        self.searched_sq = False
        self.lsq_segment = -1            # segment holding this entry
        self.lsq_virtual = -1            # ring position (no-self-circular)
        self.ssid: Optional[int] = None  # store-set id at dispatch
        self.mem_attempt_cycle = -1
        self.mispredicted = False
        self.mem_executed = False        # address resolved at the LSQ

    # -- convenience ------------------------------------------------------

    @property
    def squashed(self) -> bool:
        return self.state is InstState.SQUASHED

    @property
    def issued(self) -> bool:
        state = self.state
        return (state is InstState.ISSUED or state is InstState.EXECUTING
                or state is InstState.COMPLETE
                or state is InstState.COMMITTED)

    @property
    def complete(self) -> bool:
        state = self.state
        return state is InstState.COMPLETE or state is InstState.COMMITTED

    def overlaps(self, other: "DynInst") -> bool:
        """Same byte-overlap test as ``Instruction.overlaps``, over the
        cached operand slots (the hottest predicate in the simulator)."""
        if not (self.is_memory and other.is_memory):
            return False
        return (self.addr < other.addr + other.size
                and other.addr < self.addr + self.size)

    def __repr__(self) -> str:
        return (f"DynInst(seq={self.seq}, pc={self.pc:#x}, "
                f"op={self.inst.op.name}, state={self.state.name})")
