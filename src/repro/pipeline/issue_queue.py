"""Issue queue: wakeup/select scheduling.

Dispatched instructions wait here until their source operands are
complete.  Wakeup is event driven: when a producer completes, the
processor decrements each consumer's pending-source count and hands
zero-pending instructions to the queue's ready heap.  Select is
oldest-first up to the machine's issue width (subject to functional-unit
and memory-port availability, which the processor enforces).
"""

from __future__ import annotations

import heapq
from typing import List, Optional

from repro.pipeline.dyninst import DynInst, InstState


class IssueQueue:
    """Occupancy tracking plus an oldest-first ready heap."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("issue queue capacity must be positive")
        self.capacity = capacity
        self._occupancy = 0
        self._ready: List[tuple] = []  # (seq, DynInst)

    def __len__(self) -> int:
        return self._occupancy

    @property
    def full(self) -> bool:
        return self._occupancy >= self.capacity

    def dispatch(self, inst: DynInst) -> None:
        if self.full:
            raise RuntimeError("dispatch into a full issue queue")
        self._occupancy += 1
        if inst.pending_sources == 0:
            self.wake(inst)

    def wake(self, inst: DynInst) -> None:
        """Mark ``inst`` ready for selection."""
        heapq.heappush(self._ready, (inst.seq, inst))

    def pop_ready(self) -> Optional[DynInst]:
        """Oldest ready instruction, or ``None``.

        Lazily discards squashed or already-issued entries (squash
        recovery and store-set re-wakes can leave stale heap entries).
        """
        while self._ready:
            __, inst = heapq.heappop(self._ready)
            # SQUASHED is covered: it is not DISPATCHED either.
            if inst.state is not InstState.DISPATCHED:
                continue
            return inst
        return None

    def unpop(self, inst: DynInst) -> None:
        """Return an instruction taken with :meth:`pop_ready` this cycle."""
        heapq.heappush(self._ready, (inst.seq, inst))

    def release(self) -> None:
        """Free one slot (called when an instruction leaves the queue)."""
        if self._occupancy <= 0:
            raise RuntimeError("release from an empty issue queue")
        self._occupancy -= 1

    def squash(self, count: int) -> None:
        """Drop ``count`` occupants (their heap entries die lazily)."""
        if count > self._occupancy:
            raise RuntimeError("squashing more entries than present")
        self._occupancy -= count
