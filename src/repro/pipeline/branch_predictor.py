"""Hybrid GAg + PAg branch predictor (Table 1: 4K entries each).

* **GAg** — a global history register indexes a table of 2-bit
  saturating counters.
* **PAg** — a per-address history table (first-level) indexes a shared
  second-level table of 2-bit counters.
* **Chooser** — a table of 2-bit counters indexed by PC selects between
  the two components, trained towards whichever component was correct.

The simulator is trace driven, so the predictor sees the committed
control flow; tables are updated immediately after each prediction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.config import BranchPredictorConfig


def _saturate(counter: int, taken: bool) -> int:
    if taken:
        return min(counter + 1, 3)
    return max(counter - 1, 0)


@dataclass
class BranchStats:
    predictions: int = 0
    mispredictions: int = 0

    @property
    def mispredict_rate(self) -> float:
        if not self.predictions:
            return 0.0
        return self.mispredictions / self.predictions


class HybridBranchPredictor:
    """McFarling-style chooser over GAg and PAg components."""

    def __init__(self, config: BranchPredictorConfig) -> None:
        self.config = config
        self._gag = [2] * config.gag_entries
        self._pag = [2] * config.pag_entries
        self._histories = [0] * config.pag_history_entries
        self._chooser = [2] * config.chooser_entries
        self._global_history = 0
        self._history_mask = (1 << config.history_bits) - 1
        self.stats = BranchStats()

    def _gag_index(self) -> int:
        return self._global_history & (self.config.gag_entries - 1)

    def _pag_index(self, pc: int) -> Tuple[int, int]:
        slot = (pc >> 2) & (self.config.pag_history_entries - 1)
        return self._histories[slot] & (self.config.pag_entries - 1), slot

    def predict_and_update(self, pc: int, taken: bool) -> bool:
        """Predict the branch at ``pc`` and train with the true outcome.

        Returns ``True`` when the prediction was correct.
        """
        gag_index = self._gag_index()
        pag_index, history_slot = self._pag_index(pc)
        gag_pred = self._gag[gag_index] >= 2
        pag_pred = self._pag[pag_index] >= 2

        chooser_index = (pc >> 2) & (self.config.chooser_entries - 1)
        use_pag = self._chooser[chooser_index] >= 2
        prediction = pag_pred if use_pag else gag_pred

        # Train components.
        self._gag[gag_index] = _saturate(self._gag[gag_index], taken)
        self._pag[pag_index] = _saturate(self._pag[pag_index], taken)
        gag_correct = gag_pred == taken
        pag_correct = pag_pred == taken
        if gag_correct != pag_correct:
            self._chooser[chooser_index] = _saturate(
                self._chooser[chooser_index], pag_correct)

        # Update histories.
        self._global_history = ((self._global_history << 1) | int(taken)) \
            & self._history_mask
        self._histories[history_slot] = (
            (self._histories[history_slot] << 1) | int(taken)
        ) & self._history_mask

        self.stats.predictions += 1
        correct = prediction == taken
        if not correct:
            self.stats.mispredictions += 1
        return correct
