"""Functional-unit pools (Table 1: 8 integer, 8 pipelined floating point).

All units are fully pipelined, so each unit accepts one new operation
per cycle: availability is a per-cycle issue-slot count per pool.
Integer units double as address-generation units for memory operations
and as branch-resolution units, which matches the paper's configuration
(no separate AGU pool is listed).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.workload.isa import OpClass

#: ``True`` for op classes executed by the FP pool, indexable by the
#: ``OpClass`` value (replaces a tuple-membership test on the hot path).
_USES_FP_POOL = tuple(op in (OpClass.FP_ALU, OpClass.FP_MUL)
                      for op in OpClass)


@dataclass
class FunctionalUnitStats:
    int_issued: int = 0
    fp_issued: int = 0
    structural_stalls: int = 0


class FunctionalUnits:
    """Per-cycle issue-slot accounting for the INT and FP pools."""

    def __init__(self, int_units: int, fp_units: int) -> None:
        if int_units <= 0 or fp_units <= 0:
            raise ValueError("unit counts must be positive")
        self.int_units = int_units
        self.fp_units = fp_units
        self._cycle = -1
        self._int_used = 0
        self._fp_used = 0
        self.stats = FunctionalUnitStats()

    def _roll(self, cycle: int) -> None:
        if cycle != self._cycle:
            self._cycle = cycle
            self._int_used = 0
            self._fp_used = 0

    @staticmethod
    def pool_for(op: OpClass) -> str:
        """Which pool executes ``op`` ("int" or "fp")."""
        if _USES_FP_POOL[op]:
            return "fp"
        # Loads/stores (including FP loads/stores) use integer units for
        # address generation; branches resolve on integer units.
        return "int"

    def try_issue(self, op: OpClass, cycle: int) -> bool:
        """Claim a unit slot for this cycle; False when the pool is busy."""
        self._roll(cycle)
        if _USES_FP_POOL[op]:
            if self._fp_used >= self.fp_units:
                self.stats.structural_stalls += 1
                return False
            self._fp_used += 1
            self.stats.fp_issued += 1
            return True
        if self._int_used >= self.int_units:
            self.stats.structural_stalls += 1
            return False
        self._int_used += 1
        self.stats.int_issued += 1
        return True
