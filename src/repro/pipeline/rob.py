"""Reorder buffer: in-order dispatch and commit window."""

from __future__ import annotations

from collections import deque
from typing import Deque, Iterator, List, Optional

from repro.pipeline.dyninst import DynInst, InstState


class ReorderBuffer:
    """A bounded FIFO of in-flight instructions in program order."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("ROB capacity must be positive")
        self.capacity = capacity
        self._entries: Deque[DynInst] = deque()

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[DynInst]:
        return iter(self._entries)

    @property
    def full(self) -> bool:
        return len(self._entries) >= self.capacity

    @property
    def empty(self) -> bool:
        return not self._entries

    @property
    def head(self) -> Optional[DynInst]:
        return self._entries[0] if self._entries else None

    def dispatch(self, inst: DynInst) -> None:
        if self.full:
            raise RuntimeError("dispatch into a full ROB")
        self._entries.append(inst)

    def commit_head(self) -> DynInst:
        inst = self._entries.popleft()
        inst.state = InstState.COMMITTED
        return inst

    def squash_from(self, seq: int) -> List[DynInst]:
        """Remove and return every instruction with ``seq`` or younger,
        youngest first (so dataflow state can be unwound in order)."""
        squashed: List[DynInst] = []
        while self._entries and self._entries[-1].seq >= seq:
            inst = self._entries.pop()
            inst.state = InstState.SQUASHED
            squashed.append(inst)
        return squashed
