"""Pipeline tracing: per-instruction stage timelines.

Attach a :class:`PipelineTracer` to a :class:`~repro.pipeline.processor
.Processor` before running and it records when each dynamic instruction
was dispatched, issued, completed, committed, or squashed.  ``render``
draws the classic pipetrace diagram — one row per instruction, one
column per cycle — which makes LSQ behaviour (port retries, store-set
waits, violation squashes) directly visible.

>>> processor = Processor(base_machine())
>>> processor.tracer = PipelineTracer(limit=200)
>>> processor.run(trace)
>>> print(processor.tracer.render(0, 40))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.pipeline.dyninst import DynInst

#: Stage glyphs in the rendered diagram.
GLYPHS = {
    "dispatch": "D",
    "issue": "I",
    "complete": "C",
    "commit": "R",       # retire
    "squash": "x",
}


@dataclass
class InstRecord:
    """Stage timestamps for one dynamic instruction."""

    seq: int
    pc: int
    op: str
    dispatch: Optional[int] = None
    issue: Optional[int] = None
    complete: Optional[int] = None
    commit: Optional[int] = None
    squash: Optional[int] = None

    def events(self):
        for name in ("dispatch", "issue", "complete", "commit", "squash"):
            cycle = getattr(self, name)
            if cycle is not None:
                yield name, cycle


class PipelineTracer:
    """Records stage events for ``limit`` dynamic instructions.

    With ``rolling=False`` (default) the *first* ``limit`` instructions
    are kept — the classic pipetrace of a run's start.  With
    ``rolling=True`` the *most recent* ``limit`` instructions are kept
    instead, which is what diagnostic bundles want: the window of
    activity leading up to a failure.
    """

    def __init__(self, limit: int = 512, rolling: bool = False) -> None:
        self.limit = limit
        self.rolling = rolling
        self.records: Dict[int, InstRecord] = {}

    def note(self, event: str, inst: DynInst, cycle: int) -> None:
        """Called by the processor at each pipeline event."""
        record = self.records.get(inst.seq)
        if record is None:
            if len(self.records) >= self.limit:
                if not self.rolling:
                    return
                # Records are inserted in dispatch order, so the first
                # key is always the oldest instruction.
                self.records.pop(next(iter(self.records)))
            record = InstRecord(seq=inst.seq, pc=inst.pc,
                                op=inst.inst.op.name)
            self.records[inst.seq] = record
        setattr(record, event, cycle)

    # -- queries ----------------------------------------------------------

    def record(self, seq: int) -> Optional[InstRecord]:
        return self.records.get(seq)

    def latency(self, seq: int) -> Optional[int]:
        """Dispatch-to-commit latency of one instruction."""
        record = self.records.get(seq)
        if record is None or record.dispatch is None \
                or record.commit is None:
            return None
        return record.commit - record.dispatch

    def squashed_seqs(self) -> List[int]:
        return [seq for seq, rec in self.records.items()
                if rec.squash is not None]

    def render_recent(self, count: int = 64) -> str:
        """Pipetrace of the youngest ``count`` recorded instructions."""
        if not self.records:
            return "(no recorded instructions)"
        seqs = sorted(self.records)[-count:]
        return self.render(seqs[0], seqs[-1])

    # -- rendering -----------------------------------------------------------

    def render(self, first_seq: int, last_seq: int,
               max_width: int = 100) -> str:
        """Pipetrace diagram for instructions in ``[first_seq, last_seq]``."""
        rows = [rec for seq, rec in sorted(self.records.items())
                if first_seq <= seq <= last_seq]
        if not rows:
            return "(no recorded instructions in range)"
        start = min(cycle for rec in rows for __, cycle in rec.events())
        end = max(cycle for rec in rows for __, cycle in rec.events())
        span = min(end - start + 1, max_width)
        lines = [f"cycles {start}..{start + span - 1} "
                 f"(D=dispatch I=issue C=complete R=retire x=squash)"]
        for rec in rows:
            strip = [" "] * span
            for name, cycle in rec.events():
                offset = cycle - start
                if 0 <= offset < span:
                    strip[offset] = GLYPHS[name]
            lines.append(f"{rec.seq:5d} {rec.op:9s} {''.join(strip)}")
        return "\n".join(lines)
