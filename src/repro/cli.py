"""Command-line interface: ``python -m repro.cli <command>``.

Commands
--------

``run``       simulate one benchmark on a chosen LSQ design and print a
              full report (IPC, search bandwidth, pressure breakdown).
``figure``    regenerate one of the paper's figures/tables (optionally
              as an ASCII bar chart).
``sweep``     compare several LSQ presets on one benchmark.
``gentrace``  generate a synthetic trace, report its characteristics,
              optionally save it as ``.lsqtrace``.
``trace``     run one benchmark under the observability layer
              (:mod:`repro.obs`): structured events, interval metrics,
              a CPI stall-attribution stack, and a Chrome-trace/Perfetto
              ``trace.json``.
``profile``   cProfile one sweep cell and merge the hot-function table
              into ``BENCH_sweep.json``.
``pipetrace`` draw the per-instruction pipeline diagram for the first
              instructions of a run.
``check``     run benchmarks × LSQ presets under the full validation
              stack (memory-model oracle + cycle-level invariants,
              optionally fault injection); exit nonzero on any failure.
``bench``     run a benchmarks × presets × seeds sweep through the
              parallel, disk-cached engine (``--jobs``, ``--cache``,
              ``--progress``) and write a machine-readable
              ``BENCH_sweep.json`` with per-cell wall time, IPC and
              cache hit/miss counts; ``--compare OLD.json`` gates on
              per-cell sim-time (>20%) and IPC (>0.1%) regressions.
``lint``      run the simulator-aware static analyzer
              (:mod:`repro.analyze`) over the repro sources; exit
              nonzero on any non-baselined finding.
``serve``     run the simulation-as-a-service job server
              (:mod:`repro.serve`): clients POST sweep specs, identical
              cells coalesce, results stream back as NDJSON.
``submit``    submit a sweep spec to a running server and stream the
              job to completion (heartbeats surface stalls).
``top``       one-screen fleet view of a running server — jobs, cache
              and coalescing counters, per-worker busy/idle state —
              refreshed in place (``--once`` for scripts/CI).
``timeline``  fetch a finished job's span tree and merge it with
              deterministic re-simulations of its cells into a single
              Perfetto/Chrome trace: server latency attribution on top,
              per-cell pipeline microstructure below.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace
from typing import Dict, List

from repro.config import (
    SIM_BACKENDS,
    MachineConfig,
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    scaled_machine,
    segmented_lsq,
    techniques_lsq,
)
from repro.pipeline.processor import Processor, simulate
from repro.stats.analysis import SweepSummary, search_pressure
from repro.workload import ALL_BENCHMARKS, generate_trace
from repro.workload.tools import mix_report
from repro.workload.trace import Trace

PRESETS: Dict[str, callable] = {
    "conventional": conventional_lsq,
    "techniques": techniques_lsq,
    "segmented": lambda ports: segmented_lsq(ports=ports),
    "full": full_techniques_lsq,
}

#: Exit codes, one meaning per number so CI and scripts can tell the
#: failure classes apart.  Usage errors are always ``2`` (argparse's
#: own convention) no matter which verb raised them; the validation
#: verbs add 3/4, the serving verbs 5/6.
EXIT_VALIDATION = 1
EXIT_USAGE = 2
EXIT_FORBIDDEN = 3
EXIT_WATCHDOG = 4
EXIT_UNAVAILABLE = 5   # submit: the server cannot be reached
EXIT_BUSY = 6          # submit: backpressured (429) past all retries


def _usage_error(message: str) -> None:
    """Reject bad arguments the way argparse does: message on stderr,
    exit :data:`EXIT_USAGE`.  (``sys.exit(message)`` would exit 1 with
    the text *as* the code — indistinguishable from a validation
    failure.)"""
    print(message, file=sys.stderr)
    sys.exit(EXIT_USAGE)


def _machine(args) -> MachineConfig:
    core = scaled_machine() if getattr(args, "scaled", False) \
        else base_machine()
    if args.lsq not in PRESETS:
        _usage_error(f"unknown LSQ preset {args.lsq!r}; choose from: "
                     f"{', '.join(sorted(PRESETS))}")
    lsq = PRESETS[args.lsq](ports=args.ports)
    return replace(core, lsq=lsq,
                   backend=getattr(args, "backend", "python"))


def _load_trace(args) -> Trace:
    name = args.benchmark
    if name.endswith(".lsqtrace"):
        if not os.path.exists(name):
            _usage_error(f"trace file not found: {name}")
        return Trace.load(name)
    if name.startswith("litmus/"):
        from repro.litmus import parse_litmus_name
        try:
            parse_litmus_name(name)
        except ValueError as error:
            _usage_error(str(error))
        return generate_trace(name, n_instructions=args.instructions,
                              seed=getattr(args, "seed", 0))
    if name not in ALL_BENCHMARKS:
        _usage_error(f"unknown benchmark {name!r}; choose from: "
                     f"{', '.join(ALL_BENCHMARKS)}, a litmus/... name, "
                     f"or a .lsqtrace file")
    return generate_trace(name, n_instructions=args.instructions)


def _resolve_benchmarks(name: str) -> List[str]:
    if name == "all":
        return list(ALL_BENCHMARKS)
    if name not in ALL_BENCHMARKS:
        _usage_error(f"unknown benchmark {name!r}; choose from: "
                     f"{', '.join(ALL_BENCHMARKS)} or 'all'")
    return [name]


def cmd_run(args) -> None:
    trace = _load_trace(args)
    result = simulate(trace, _machine(args))
    stats = result.stats
    print(f"{trace.name}: {stats.committed} instructions in "
          f"{stats.cycles} cycles -> IPC {stats.ipc:.2f}")
    print(f"  mix: {stats.committed_loads} loads, "
          f"{stats.committed_stores} stores, "
          f"{stats.committed_branches} branches")
    print(f"  searches: SQ {stats.sq_searches}, LQ {stats.lq_searches}, "
          f"load buffer {stats.load_buffer_searches}, "
          f"invalidation {stats.invalidation_searches}")
    print(f"  forwarding: {stats.forwarded_loads} loads "
          f"(SQ match rate {stats.forward_match_rate:.2f}); "
          f"violations: {stats.violation_squashes}; "
          f"branch mispredicts: {stats.branch_mispredicts} "
          f"(rate {stats.branch_mispredict_rate:.3f})")
    print(f"  occupancy: LQ {stats.avg_lq_occupancy:.1f} / "
          f"SQ {stats.avg_sq_occupancy:.1f}; "
          f"OOO loads {stats.avg_ooo_loads:.2f}")
    print("\n" + search_pressure(stats).format())


def _engine(args):
    """Build a SweepEngine from the shared --jobs/--cache/--no-cache
    options (disk cache on unless --no-cache)."""
    from repro.harness.engine import ResultCache, SweepEngine
    cache = None
    if not getattr(args, "no_cache", False):
        cache_dir = getattr(args, "cache_dir", None)
        cache = ResultCache(cache_dir) if cache_dir else ResultCache()
    return SweepEngine(jobs=getattr(args, "jobs", 1) or 1, cache=cache)


def cmd_figure(args) -> None:
    from repro.harness import ExperimentRunner, figures
    from repro.harness.plots import bar_chart
    names = (list(figures.ALL_EXPERIMENTS) if args.name == "all"
             else [args.name])
    unknown = [name for name in names
               if name not in figures.ALL_EXPERIMENTS]
    if unknown:
        _usage_error(f"unknown figure {unknown[0]!r}; choose from: "
                     f"{', '.join(sorted(figures.ALL_EXPERIMENTS))} "
                     f"or 'all'")
    runner = ExperimentRunner(n_instructions=args.instructions,
                              engine=_engine(args))
    for name in names:
        result = figures.ALL_EXPERIMENTS[name](runner)
        print(bar_chart(result) if args.chart else result.format())
        print()


def cmd_sweep(args) -> None:
    trace = _load_trace(args)
    ipc: Dict[str, Dict[str, float]] = {}
    for label, preset in PRESETS.items():
        for ports in (1, 2):
            machine = replace(base_machine(), lsq=preset(ports=ports))
            ipc[f"{label}-{ports}p"] = {
                trace.name: simulate(trace, machine).ipc}
    summary = SweepSummary(ipc=ipc, baseline="conventional-2p")
    print(summary.format())
    print(f"best: {summary.best_config()}")


def cmd_gentrace(args) -> None:
    trace = _load_trace(args)
    print(mix_report(trace))
    if args.output:
        trace.save(args.output)
        print(f"saved to {args.output}")


def cmd_trace(args) -> None:
    """Observe one run: events + metrics + CPI stack + Perfetto trace."""
    from repro.obs import ObsConfig, Observer
    from repro.obs.chrometrace import (
        export_chrome_trace,
        validate_chrome_trace,
        write_chrome_trace,
    )
    from repro.stats.report import cpi_stack_table, format_table

    if args.smoke:
        args.benchmark = args.benchmark or SMOKE_BENCHMARKS[0]
        args.instructions = SMOKE_INSTRUCTIONS
    if not args.benchmark:
        _usage_error("trace: benchmark required (or pass --smoke)")
    trace = _load_trace(args)
    machine = _machine(args)
    if machine.backend == "fast":
        print("trace: backend=fast has no observer/pipetrace hooks; "
              "running this observation under the python engine "
              "(SimStats are bit-identical either way)", file=sys.stderr)
        machine = machine.with_backend("python")
    observer = Observer(ObsConfig(sample_interval=args.sample_interval,
                                  event_limit=args.event_limit))
    processor = Processor(machine, obs=observer)
    tracer = None
    if args.pipetrace:
        from repro.pipeline.debug import PipelineTracer
        tracer = PipelineTracer(limit=args.pipetrace)
        processor.tracer = tracer
    result = processor.run(trace)
    summary = observer.summary()

    label = f"{trace.name} x {args.lsq}-{args.ports}p"
    doc = export_chrome_trace(observer, tracer=tracer, label=label)
    problems = validate_chrome_trace(doc)
    if problems:
        for problem in problems:
            print(f"invalid trace: {problem}", file=sys.stderr)
        sys.exit(1)
    write_chrome_trace(args.output, doc)

    stats = result.stats
    print(f"{label}: {stats.committed} instructions in {stats.cycles} "
          f"cycles -> IPC {stats.ipc:.2f}")
    print(cpi_stack_table(summary.cpi_slots, summary.commit_width,
                          stats.committed,
                          title="\nCPI stall attribution"))
    counts = [(kind, summary.event_counts.get(kind, 0))
              for kind in sorted(summary.event_counts)]
    print("\n" + format_table(["event", "count"], counts, title="Events"))
    if summary.dropped_events:
        print(f"  ({summary.dropped_events} events beyond the "
              f"--event-limit were counted but not stored)")
    print(f"\n{len(summary.samples)} metric samples every "
          f"{args.sample_interval} cycles; trace -> {args.output} "
          f"(load in ui.perfetto.dev)")
    if args.pipetrace and tracer is not None:
        print("\n" + tracer.render_recent())


def cmd_profile(args) -> None:
    """cProfile one sweep cell; merge the hot spots into the report."""
    import json

    from repro.harness.engine import Cell, profile_cell, sweep_report
    from repro.stats.report import format_table

    if args.benchmark not in ALL_BENCHMARKS:
        _usage_error(f"unknown benchmark {args.benchmark!r}; choose "
                     f"from: {', '.join(ALL_BENCHMARKS)} (profile "
                     "regenerates the trace by name, so .lsqtrace files "
                     "are not accepted)")
    if getattr(args, "backend", "python") == "fast":
        # Refusing beats profiling the wrong thing: the fast engine's
        # batched kernels would swamp the model functions the profile
        # table exists to rank, and a profiled fast run would merge
        # misleading hot-function rows into the report.
        _usage_error("profile: backend=fast is not supported — the "
                     "profile table ranks the python model's functions; "
                     "rerun with --backend python")
    machine = _machine(args)
    label = f"{args.lsq}-{args.ports}p"
    cell = Cell(benchmark=args.benchmark, machine=machine, seed=args.seed,
                n_instructions=args.instructions, label=label)
    cell_result, rows = profile_cell(cell, top=args.top)
    print(f"{args.benchmark} x {label}: IPC {cell_result.ipc:.2f}, "
          f"{cell_result.sim_s:.2f}s under cProfile")
    print(format_table(
        ["function", "calls", "tottime (s)", "cumtime (s)"],
        [[row["function"], row["calls"], row["tottime_s"],
          row["cumtime_s"]] for row in rows],
        title="\nHot functions (by internal time)"))

    report = None
    if os.path.exists(args.output):
        try:
            with open(args.output) as handle:
                report = json.load(handle)
        except (OSError, ValueError):
            report = None
    if not isinstance(report, dict):
        report = sweep_report([cell_result], jobs=1, cache=None,
                              wall_s=cell_result.wall_s)
    report["profile"] = {
        "benchmark": args.benchmark,
        "label": label,
        "seed": args.seed,
        "n_instructions": args.instructions,
        "sim_s": round(cell_result.sim_s, 6),
        "hot_functions": rows,
    }
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"\nprofile merged into {args.output}")


def cmd_pipetrace(args) -> None:
    from repro.pipeline.debug import PipelineTracer
    trace = _load_trace(args)
    machine = _machine(args)
    if machine.backend == "fast":
        print("pipetrace: backend=fast has no pipetrace hooks; running "
              "this diagram under the python engine", file=sys.stderr)
        machine = machine.with_backend("python")
    processor = Processor(machine)
    processor.tracer = PipelineTracer(limit=args.last + 1)
    processor.run(trace)
    print(processor.tracer.render(args.first, args.last))


def cmd_check(args) -> None:
    from repro.validate import (
        SimulationDeadlock,
        ValidationChecker,
        ValidationError,
        run_all_fault_classes,
    )
    benchmarks = _resolve_benchmarks(args.benchmark)
    presets = sorted(PRESETS) if args.lsq == "all" else [args.lsq]
    if getattr(args, "backend", "python") == "fast":
        print("check: validation is checker-attached, which always "
              "runs the python engine; backend=fast noted but the "
              "reference engine is used", file=sys.stderr)
    failed = 0
    hung = 0
    for bench in benchmarks:
        trace = generate_trace(bench, n_instructions=args.instructions)
        for preset in presets:
            machine = replace(base_machine(),
                              lsq=PRESETS[preset](ports=args.ports),
                              backend=getattr(args, "backend", "python"))
            checker = ValidationChecker()
            try:
                result = simulate(trace, machine, checker=checker)
            except SimulationDeadlock as error:
                hung += 1
                print(f"HUNG {bench} x {preset}\n{error}")
                continue
            except ValidationError as error:
                failed += 1
                print(f"FAIL {bench} x {preset}\n{error}")
                continue
            print(f"ok   {bench} x {preset}: IPC {result.ipc:.2f}; "
                  f"{checker.report()}")
            if args.faults:
                reports = run_all_fault_classes(trace, machine,
                                                seed=args.seed)
                for __, report in sorted(reports.items()):
                    if not report.ok:
                        failed += 1
                        print(f"FAIL {report.format()}")
                        print(report.checker.bundle().format())
                    else:
                        print(f"     {report.format()}")
    total = len(benchmarks) * len(presets)
    print(f"\ncheck: {total - failed - hung}/{total} configuration(s) "
          f"passed"
          + (f", {failed} FAILED" if failed else "")
          + (f", {hung} HUNG" if hung else ""))
    if hung:
        sys.exit(EXIT_WATCHDOG)
    if failed:
        sys.exit(EXIT_VALIDATION)


#: The litmus --smoke slice: two shapes, both fence modes, two seeds —
#: seconds of work, exercises generator, interleaver, checker and the
#: fault campaigns end to end.
LITMUS_SMOKE_SHAPES = ("mp", "sb")
LITMUS_SMOKE_SEEDS = (0, 1)
LITMUS_SMOKE_INSTRUCTIONS = 160


def _parse_seed_range(text: str) -> List[int]:
    """``A:B`` -> ``[A, B)``; a single integer -> that one seed."""
    try:
        if ":" in text:
            lo_text, hi_text = text.split(":", 1)
            lo, hi = int(lo_text), int(hi_text)
            if hi <= lo:
                raise ValueError
            return list(range(lo, hi))
        return [int(text)]
    except ValueError:
        print(f"bad --seed-range {text!r}; expected A:B (half-open) "
              f"or a single integer", file=sys.stderr)
        sys.exit(EXIT_USAGE)


def _litmus_lsq(preset: str, ports: int):
    """LSQ presets for litmus runs: the global four plus ``membar``,
    the paper's software-ordering design (Section 2.2) — the one preset
    whose declared ordering model is relaxed."""
    if preset == "membar":
        from repro.config import LoadQueueSearchMode
        return replace(conventional_lsq(ports=ports),
                       lq_search=LoadQueueSearchMode.MEMBAR)
    return PRESETS[preset](ports=ports)


def cmd_litmus(args) -> None:
    from repro.config import OrderingModel
    from repro.litmus import SHAPES, run_battery, run_litmus_fault_campaign
    from repro.validate import SimulationDeadlock

    if args.smoke:
        shapes = list(LITMUS_SMOKE_SHAPES)
        seeds = list(LITMUS_SMOKE_SEEDS)
        args.instructions = LITMUS_SMOKE_INSTRUCTIONS
        args.faults = True
    else:
        shapes = list(SHAPES) if args.shape == "all" else [args.shape]
        seeds = _parse_seed_range(args.seed_range)
    fence_modes = {"off": (False,), "on": (True,),
                   "both": (False, True)}[args.fence]
    if getattr(args, "backend", "python") == "fast":
        print("litmus: the battery is checker-attached, which always "
              "runs the python engine; backend=fast noted but the "
              "reference engine is used", file=sys.stderr)
    machine = replace(base_machine(), lsq=_litmus_lsq(args.lsq, args.ports),
                      backend=getattr(args, "backend", "python"))
    model = (None if args.model == "auto"
             else OrderingModel(args.model))
    try:
        battery = run_battery(
            machine, shapes=shapes, fence_modes=fence_modes, seeds=seeds,
            contexts=args.contexts, interleave=args.interleave,
            padding=args.padding, n_instructions=args.instructions,
            model=model)
    except SimulationDeadlock as error:
        print(f"HUNG: {error}")
        sys.exit(EXIT_WATCHDOG)
    for report in battery.reports:
        print(report.format())
    print(f"\nlitmus: {len(battery.reports)} cell(s) under "
          f"{battery.model.value}: "
          f"{'ok' if battery.ok else 'FORBIDDEN OUTCOMES'}")
    for witness in battery.witnesses:
        print(f"  {witness.format()}")
        if witness.bundle is not None:
            print(witness.bundle.format())
    exit_code = 0
    if battery.witnesses:
        exit_code = EXIT_FORBIDDEN
    elif not battery.ok:
        exit_code = EXIT_VALIDATION   # oracle failures without a witness
    if args.faults:
        try:
            campaigns = run_litmus_fault_campaign(
                machine, shapes=[s for s in shapes if s in ("mp", "corr")]
                or ["mp"], seeds=seeds[:2],
                n_instructions=args.instructions, rate=args.fault_rate,
                fault_seed=args.seed)
        except SimulationDeadlock as error:
            print(f"HUNG (fault campaign): {error}")
            sys.exit(EXIT_WATCHDOG)
        for name, reports in sorted(campaigns.items()):
            for report in reports:
                if not report.ok:
                    exit_code = exit_code or EXIT_VALIDATION
                    print(f"FAIL {report.format()}")
                else:
                    print(f"     {report.format()}")
    if exit_code:
        sys.exit(exit_code)


#: Preset → default search-port count for the bench sweep, following the
#: paper's pairing: conventional/segmented are evaluated 2-ported,
#: techniques/full are the 1-ported designs they are compared against.
BENCH_DEFAULT_PORTS = {"conventional": 2, "segmented": 2,
                       "techniques": 1, "full": 1}

#: The --smoke slice: two benchmarks (one INT, one FP) x the two
#: bracketing presets, short traces — seconds of work, exercises the
#: whole engine + cache path.  CI runs it twice and asserts the second
#: pass is served entirely from cache.
SMOKE_BENCHMARKS = ("gzip", "mgrid")
SMOKE_PRESETS = ("conventional", "full")
SMOKE_INSTRUCTIONS = 800


def cmd_bench(args) -> None:
    import json
    import time

    from repro.harness.engine import Cell, sweep_report
    from repro.harness.experiment import default_instructions

    if args.output is None:
        args.output = ("BENCH_core.json" if args.baseline
                       else "BENCH_sweep.json")
    if args.smoke:
        benchmarks = list(SMOKE_BENCHMARKS)
        presets = list(SMOKE_PRESETS)
        seeds = [0]
        n_instructions = args.instructions or SMOKE_INSTRUCTIONS
    else:
        benchmarks = (list(ALL_BENCHMARKS) if args.benchmarks == "all"
                      else [b.strip() for b in args.benchmarks.split(",")
                            if b.strip()])
        presets = (sorted(PRESETS) if args.presets == "all"
                   else [p.strip() for p in args.presets.split(",")
                         if p.strip()])
        seeds = [int(s) for s in args.seeds.split(",") if s.strip()]
        n_instructions = args.instructions or default_instructions()
    for name in benchmarks:
        if name not in ALL_BENCHMARKS:
            _usage_error(f"unknown benchmark {name!r}; choose from: "
                         f"{', '.join(ALL_BENCHMARKS)}")
    for name in presets:
        if name not in PRESETS:
            _usage_error(f"unknown preset {name!r}; choose from: "
                         f"{', '.join(sorted(PRESETS))}")
    if not benchmarks or not presets or not seeds:
        # An empty grid is a usage error, never a vacuous success —
        # in particular `--expect-cached` over zero cells must not
        # report a warm cache it never touched.
        empty = ("benchmarks" if not benchmarks
                 else "presets" if not presets else "seeds")
        _usage_error(f"bench: --{empty} selected zero cells; nothing "
                     "to run (and nothing to assert with "
                     "--expect-cached)")
    if args.compare and not os.path.isfile(args.compare):
        # Fail before the sweep, not after minutes of simulation.
        _usage_error(f"bench: --compare baseline not found: "
                     f"{args.compare}")

    cells = []
    for bench in benchmarks:
        for preset in presets:
            ports = args.ports or BENCH_DEFAULT_PORTS.get(preset, 2)
            machine = replace(base_machine(),
                              lsq=PRESETS[preset](ports=ports),
                              backend=args.backend)
            for seed in seeds:
                cells.append(Cell(benchmark=bench, machine=machine,
                                  seed=seed, n_instructions=n_instructions,
                                  validate=args.validate,
                                  label=f"{preset}-{ports}p"))

    if args.baseline:
        _bench_baseline(args, cells, benchmarks, presets, seeds,
                        n_instructions)
        return

    engine = _engine(args)
    print(f"bench: {len(cells)} cells ({len(benchmarks)} benchmarks x "
          f"{len(presets)} presets x {len(seeds)} seed(s), "
          f"n={n_instructions}), jobs={engine.jobs}, "
          f"cache={'off' if engine.cache is None else engine.cache.root}")

    def show(cell_result, done, total) -> None:
        cell = cell_result.cell
        source = "cache" if cell_result.cached else "simulated"
        print(f"  [{done}/{total}] {cell.benchmark} x {cell.label} "
              f"seed {cell.seed}: IPC {cell_result.ipc:.2f} "
              f"({cell_result.sim_s:.2f}s sim, {source})")

    started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
    results = engine.run_cells(cells, progress=show if args.progress
                               else None)
    wall_s = time.perf_counter() - started  # sim-lint: ignore[SIM-D004]

    report = sweep_report(results, jobs=engine.jobs, cache=engine.cache,
                          wall_s=wall_s)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    hits = engine.cache.hits if engine.cache is not None else 0
    simulated = report["simulated"]
    print(f"bench: {simulated} simulated, {hits} cache hit(s); "
          f"sim {report['sim_s']:.2f}s, wall {wall_s:.2f}s -> "
          f"{args.output}")
    if args.expect_cached and simulated:
        missed = [item.cell for item in results if not item.cached]
        print(f"bench: --expect-cached but {len(missed)} cell(s) were "
              "simulated: "
              + ", ".join(f"{c.benchmark} x {c.label} seed {c.seed}"
                          for c in missed))
        sys.exit(1)
    if args.compare:
        _compare_report(args.compare, report)


def _compare_report(old_path: str, report) -> None:
    """The inline perf-regression gate (same as scripts/bench_diff.py)."""
    import json

    from repro.harness.engine import ReportBackendMismatch, diff_reports
    try:
        with open(old_path) as handle:
            old_report = json.load(handle)
    except (OSError, ValueError) as error:
        _usage_error(f"bench: cannot read --compare baseline: {error}")
        return
    try:
        problems = diff_reports(old_report, report)
    except ReportBackendMismatch as error:
        _usage_error(f"bench: {error}")
        return
    if problems:
        print(f"bench: {len(problems)} regression(s) vs {old_path}:")
        for problem in problems:
            print(f"  {problem}")
        sys.exit(1)
    print(f"bench: no regressions vs {old_path}")


def _bench_baseline(args, cells, benchmarks, presets, seeds,
                    n_instructions) -> None:
    """``repro bench --baseline``: measure a fresh perf baseline.

    Always simulates live (the result cache would hand back *old*
    timings), min-of-``--reps`` per cell, plus one tracemalloc-
    instrumented repetition for the allocation footprint.
    """
    import json

    from repro.harness.engine import baseline_report

    print(f"bench: measuring baseline over {len(cells)} cells "
          f"({len(benchmarks)} benchmarks x {len(presets)} presets x "
          f"{len(seeds)} seed(s), n={n_instructions}), "
          f"min of {args.reps} rep(s)")
    report = baseline_report(cells, reps=args.reps)
    with open(args.output, "w") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")
    for row in report["cells"]:
        print(f"  {row['benchmark']} x {row['label']} seed {row['seed']}: "
              f"IPC {row['ipc']:.2f}, {row['sim_s']:.3f}s sim, "
              f"{row['cycles_per_sec']:,} cycles/s, "
              f"peak {row['alloc_peak_kb']:.0f} KiB")
    print(f"bench: baseline sim {report['sim_s']:.2f}s "
          f"(calibration {report['calibration_s']:.3f}s) -> {args.output}")
    if args.compare:
        _compare_report(args.compare, report)


def cmd_lint(args) -> None:
    from repro.analyze.runner import run_lint
    code = run_lint(namespace=args)
    if code:
        sys.exit(code)


def cmd_serve(args) -> None:
    """Run the simulation job server until interrupted."""
    from repro.serve.server import ServeConfig, run_server
    if args.workers < 1:
        _usage_error("serve: --workers must be >= 1")
    if args.max_jobs < 1:
        _usage_error("serve: --max-jobs must be >= 1")
    run_server(ServeConfig(
        host=args.host, port=args.port, workers=args.workers,
        max_jobs=args.max_jobs, retry_after_s=args.retry_after,
        cache_dir=args.cache_dir, no_cache=args.no_cache,
        heartbeat_s=args.heartbeat))


def cmd_submit(args) -> None:
    """Submit a sweep spec to a running server; stream it to done."""
    import json

    from repro.serve.client import (
        Backpressure,
        ServeClient,
        ServeStalled,
        ServeUnavailable,
        SpecRejected,
    )
    from repro.serve.spec import smoke_spec

    if args.smoke:
        spec = smoke_spec(args.instructions or SMOKE_INSTRUCTIONS)
    else:
        spec = {
            "benchmarks": [b.strip() for b in args.benchmarks.split(",")
                           if b.strip()],
            "presets": [p.strip() for p in args.presets.split(",")
                        if p.strip()],
            "seeds": [],
            "n_instructions": args.instructions or SMOKE_INSTRUCTIONS,
            "validate": args.validate,
            "obs": args.obs,
        }
        for text in args.seeds.split(","):
            if text.strip():
                try:
                    spec["seeds"].append(int(text))
                except ValueError:
                    _usage_error(f"submit: bad seed {text.strip()!r}")
        if args.ports:
            spec["ports"] = args.ports
    client = ServeClient(host=args.host, port=args.port)
    # Client-side trace id: pid-derived, no wall clock or RNG.  It is
    # sent as X-Repro-Trace so the server's spans and log records for
    # this job correlate back to this invocation.
    trace = f"cli-{os.getpid():08x}"
    try:
        job = client.submit_with_retry(
            spec, attempts=args.retries if args.wait_busy else 1,
            trace=trace)
    except SpecRejected as error:
        _usage_error(f"submit: spec rejected: {error}")
        return
    except Backpressure as error:
        print(f"submit: server busy ({error}); retry in "
              f"{error.retry_after_s:.0f}s or pass --wait-busy",
              file=sys.stderr)
        sys.exit(EXIT_BUSY)
    except ServeUnavailable as error:
        print(f"submit: {error}", file=sys.stderr)
        sys.exit(EXIT_UNAVAILABLE)
    job_id = str(job["id"])
    # Stall budget: N missed heartbeats.  A healthy server heartbeats
    # every heartbeat_s even when no cell finished, so silence longer
    # than misses * heartbeat_s means wedged, not slow.
    heartbeat_s = float(job.get("heartbeat_s") or 0.0)
    stall_after_s = heartbeat_s * max(args.heartbeat_misses, 1) \
        if heartbeat_s > 0 else None
    print(f"submit: {job_id} ({job['n_cells']} cells, trace {trace}) -> "
          f"http://{args.host}:{args.port}/jobs/{job_id}")
    try:
        for event in client.stream(job_id, stall_after_s=stall_after_s):
            if event.get("event") == "cell":
                status = event.get("status")
                mark = "ok  " if status == "done" else "FAIL"
                print(f"  {mark} [{event.get('index')}] "
                      f"{event.get('benchmark')} x {event.get('label')} "
                      f"seed {event.get('seed')}: "
                      f"IPC {event.get('ipc')} "
                      f"({event.get('source') or event.get('error')}, "
                      f"{event.get('service_ms')} ms)")
            elif event.get("event") == "heartbeat":
                print(f"  ...  {event.get('done')}/{event.get('n_cells')} "
                      f"done, {event.get('pending')} queued "
                      "(server alive)")
        final = client.result(job_id)
    except ServeStalled as error:
        print(f"submit: {error} — {max(args.heartbeat_misses, 1)} "
              "heartbeats missed; the server or its workers are wedged",
              file=sys.stderr)
        sys.exit(EXIT_UNAVAILABLE)
    except ServeUnavailable as error:
        print(f"submit: lost the server mid-stream: {error}",
              file=sys.stderr)
        sys.exit(EXIT_UNAVAILABLE)
    summary = final["job"]
    assert isinstance(summary, dict)
    if args.output:
        with open(args.output, "w") as handle:
            json.dump(final, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"submit: result -> {args.output}")
    print(f"submit: {job_id} {summary['state']}: {summary['done']} done, "
          f"{summary['failed']} failed "
          f"(sources {summary['sources']}) in {summary['elapsed_s']}s")
    if int(summary.get("failed", 0) or 0):
        sys.exit(EXIT_VALIDATION)


def _render_top(stats: Dict[str, object], host: str, port: int) -> str:
    """Format one /stats snapshot as the ``repro top`` screen."""
    jobs = stats.get("jobs") or {}
    cells = stats.get("cells") or {}
    flight = stats.get("singleflight") or {}
    cache = stats.get("cache") or {}
    pool = stats.get("pool") or {}
    tele = stats.get("telemetry") or {}
    assert isinstance(jobs, dict) and isinstance(cells, dict)
    assert isinstance(flight, dict) and isinstance(cache, dict)
    assert isinstance(pool, dict) and isinstance(tele, dict)
    requested = int(cells.get("requested", 0) or 0)
    coalesced = int(cells.get("coalesced", 0) or 0)
    hits = int(cache.get("hits", 0) or 0)
    misses = int(cache.get("misses", 0) or 0)
    probes = hits + misses
    lines = [
        f"repro top — http://{host}:{port}",
        f"jobs   : {jobs.get('active', 0)}/{jobs.get('max_active', 0)} "
        f"active, {jobs.get('total', 0)} known, "
        f"{jobs.get('rejected', 0)} rejected (429)",
        f"cells  : {requested} requested — "
        f"{cells.get('cache', 0)} cache, {cells.get('computed', 0)} "
        f"computed, {coalesced} coalesced, {cells.get('failed', 0)} "
        "failed",
        f"flight : {flight.get('leaders', 0)} leaders, "
        f"{flight.get('joined', 0)} joined, "
        f"{flight.get('inflight', 0)} in flight "
        f"(peak {flight.get('peak_inflight', 0)}); coalescing "
        f"{(coalesced / requested) if requested else 0.0:.0%}",
        f"cache  : {hits}/{probes} hit"
        f" ({(hits / probes) if probes else 0.0:.0%}),"
        f" {cache.get('stores', 0)} stores"
        f" [{cache.get('dir') or 'disabled'}]",
        f"spans  : {tele.get('spans_finished', 0)} finished, "
        f"logs {tele.get('log_records', {})}, "
        f"heartbeats {tele.get('heartbeats', 0)}",
        "",
        "  id state alive  backlog  done fail resp   busy_s  current",
    ]
    workers = pool.get("worker_state")
    for row in workers if isinstance(workers, list) else []:
        current = "-"
        if row.get("state") == "busy":
            current = (f"{row.get('benchmark')} x {row.get('label')} "
                       f"[{row.get('digest')}]")
        lines.append(
            f"  {row.get('id'):>2} {str(row.get('state')):<5} "
            f"{'yes' if row.get('alive') else 'NO ':<5} "
            f"{row.get('backlog', 0):>7}  {row.get('done', 0):>4} "
            f"{row.get('failed', 0):>4} {row.get('respawns', 0):>4} "
            f"{float(row.get('busy_s', 0.0) or 0.0):>8.2f}  {current}")
    lines.append(
        f"\npool   : {pool.get('pending', 0)} pending, "
        f"{pool.get('steals', 0)} steals, "
        f"{pool.get('respawns', 0)} respawns")
    return "\n".join(lines)


def cmd_top(args) -> None:
    """Live (or one-shot) fleet view rendered from ``GET /stats``."""
    import time as _time

    from repro.serve.client import ServeClient, ServeUnavailable
    client = ServeClient(host=args.host, port=args.port)
    while True:
        try:
            stats = client.stats()
        except ServeUnavailable as error:
            print(f"top: {error}", file=sys.stderr)
            sys.exit(EXIT_UNAVAILABLE)
        screen = _render_top(stats, args.host, args.port)
        if args.once:
            print(screen)
            return
        # Clear + home, then redraw — flicker-free enough for a tty.
        print("\x1b[2J\x1b[H" + screen, flush=True)
        _time.sleep(max(args.interval, 0.2))


def cmd_timeline(args) -> None:
    """Merge a finished job's spans with re-simulated cell traces into
    one Perfetto/Chrome trace file."""
    import json

    from repro.obs.chrometrace import write_chrome_trace
    from repro.obs.telemetry.timeline import (
        merge_timeline,
        resimulate_cell_trace,
    )
    from repro.serve.client import ServeClient, ServeError, ServeUnavailable

    client = ServeClient(host=args.host, port=args.port)
    try:
        job = client.job(args.job_id)
        if job.get("state") != "done":
            print(f"timeline: {args.job_id} is {job.get('state')}; "
                  "wait for it to finish", file=sys.stderr)
            sys.exit(EXIT_VALIDATION)
        spans_reply = client.spans(args.job_id)
        result = client.result(args.job_id)
    except ServeUnavailable as error:
        print(f"timeline: {error}", file=sys.stderr)
        sys.exit(EXIT_UNAVAILABLE)
    except ServeError as error:
        print(f"timeline: {error}", file=sys.stderr)
        sys.exit(EXIT_VALIDATION)
    spans = spans_reply.get("spans")
    if not isinstance(spans, list) or not spans:
        print(f"timeline: no spans retained for {args.job_id} "
              "(server restarted?)", file=sys.stderr)
        sys.exit(EXIT_VALIDATION)
    rows = result.get("cells")
    assert isinstance(rows, list)
    done_rows = [row for row in rows if row.get("status") == "done"]
    # Prefer cells that actually executed here — their worker.exec
    # window is real wall time; cache hits only have the probe.
    done_rows.sort(key=lambda row: 0 if row.get("source") == "computed"
                   else 1)
    picked = done_rows[:max(args.cells, 1)]
    cell_traces = []
    for row in picked:
        try:
            doc = resimulate_cell_trace(row, pipetrace=args.pipetrace)
        except ValueError as error:
            print(f"timeline: skipping cell {row.get('index')}: {error}",
                  file=sys.stderr)
            continue
        cell_traces.append((int(str(row.get("index"))), doc))
    summary = result.get("job")
    assert isinstance(summary, dict)
    try:
        doc = merge_timeline(summary, spans, cell_traces)
    except ValueError as error:
        print(f"timeline: {error}", file=sys.stderr)
        sys.exit(EXIT_VALIDATION)
    output = args.output or f"timeline-{args.job_id}.json"
    write_chrome_trace(output, doc)
    n_events = len(doc["traceEvents"])
    print(f"timeline: {args.job_id}: {len(spans)} spans + "
          f"{len(cell_traces)} re-simulated cells -> {output} "
          f"({n_events} events; open in https://ui.perfetto.dev)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(p, with_lsq=True):
        p.add_argument("benchmark",
                       help=f"benchmark name ({', '.join(ALL_BENCHMARKS)}) "
                            "or a .lsqtrace file")
        p.add_argument("-n", "--instructions", type=int, default=6000)
        if with_lsq:
            p.add_argument("--lsq", choices=sorted(PRESETS),
                           default="conventional")
            p.add_argument("--ports", type=int, default=2)
            p.add_argument("--scaled", action="store_true",
                           help="use the 12-wide scaled machine (Sec. 4.3)")
            p.add_argument("--backend", choices=list(SIM_BACKENDS),
                           default="python",
                           help="simulation engine: 'python' (reference) "
                                "or 'fast' (repro.fastcore; bit-identical "
                                "SimStats, enforced by the golden-parity "
                                "suite)")

    run = sub.add_parser("run", help="simulate one benchmark")
    add_common(run)
    run.set_defaults(func=cmd_run)

    def add_engine_options(p):
        p.add_argument("-j", "--jobs", type=int, default=1,
                       help="worker processes for cache misses "
                            "(default 1 = serial)")
        p.add_argument("--cache", dest="cache_dir", metavar="DIR",
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR or .repro-cache)")
        p.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache")

    figure = sub.add_parser("figure", help="regenerate a paper figure")
    figure.add_argument("name", help="fig6..fig12, table2..table6, or 'all'")
    figure.add_argument("-n", "--instructions", type=int, default=6000)
    figure.add_argument("--chart", action="store_true",
                        help="render as an ASCII bar chart")
    add_engine_options(figure)
    figure.set_defaults(func=cmd_figure)

    bench = sub.add_parser(
        "bench", help="benchmarks x presets x seeds sweep through the "
                      "parallel, disk-cached engine")
    bench.add_argument("--benchmarks", default="all",
                       help="comma-separated names (default: all 18)")
    bench.add_argument("--presets", default="all",
                       help="comma-separated preset names (default: all 4)")
    bench.add_argument("--seeds", default="0",
                       help="comma-separated generator seeds (default: 0)")
    bench.add_argument("-n", "--instructions", type=int, default=0,
                       help="instructions per trace (default: "
                            "$REPRO_BENCH_INSTRUCTIONS or 6000)")
    bench.add_argument("--ports", type=int, default=0,
                       help="search ports for every preset (default: "
                            "the paper's pairing, 2p conventional/"
                            "segmented vs 1p techniques/full)")
    bench.add_argument("--backend", choices=list(SIM_BACKENDS),
                       default="python",
                       help="simulation engine for every cell (part of "
                            "the cache key; reports carry the tag and "
                            "bench-diff refuses cross-backend compares)")
    bench.add_argument("--validate", action="store_true",
                       help="run every cell under the memory-model "
                            "oracle and invariant checker")
    bench.add_argument("--smoke", action="store_true",
                       help="tiny fixed slice (gzip,mgrid x conventional,"
                            "full, 800 instructions) for CI cache checks")
    bench.add_argument("--progress", action="store_true",
                       help="print each cell as it finishes")
    bench.add_argument("--expect-cached", action="store_true",
                       help="exit nonzero if any cell had to be "
                            "simulated (CI warm-cache assertion)")
    bench.add_argument("--compare", metavar="OLD.json",
                       help="perf-regression gate: exit nonzero if any "
                            "cell's sim time grew >20%% or IPC moved "
                            ">0.1%% vs this earlier report")
    bench.add_argument("--baseline", action="store_true",
                       help="measure a fresh perf baseline (always "
                            "simulates live; min of --reps repetitions "
                            "per cell plus a tracemalloc pass) and write "
                            "it as BENCH_core.json")
    bench.add_argument("--reps", type=int, default=3,
                       help="timing repetitions per cell for --baseline "
                            "(default 3; fastest wins)")
    bench.add_argument("-o", "--output", default=None,
                       help="machine-readable report path (default: "
                            "BENCH_sweep.json, or BENCH_core.json "
                            "with --baseline)")
    add_engine_options(bench)
    bench.set_defaults(func=cmd_bench)

    sweep = sub.add_parser("sweep", help="compare LSQ presets")
    add_common(sweep, with_lsq=False)
    sweep.set_defaults(func=cmd_sweep)

    gentrace = sub.add_parser("gentrace", help="generate/inspect a trace")
    add_common(gentrace, with_lsq=False)
    gentrace.add_argument("-o", "--output", help="save as .lsqtrace")
    gentrace.set_defaults(func=cmd_gentrace)

    trace = sub.add_parser(
        "trace", help="observe one run: structured events, interval "
                      "metrics, CPI stack, Perfetto trace.json")
    trace.add_argument("benchmark", nargs="?", default="",
                       help=f"benchmark name ({', '.join(ALL_BENCHMARKS)}) "
                            "or a .lsqtrace file")
    trace.add_argument("-n", "--instructions", type=int, default=6000)
    trace.add_argument("--lsq", choices=sorted(PRESETS),
                       default="conventional")
    trace.add_argument("--ports", type=int, default=2)
    trace.add_argument("--scaled", action="store_true",
                       help="use the 12-wide scaled machine (Sec. 4.3)")
    trace.add_argument("--backend", choices=list(SIM_BACKENDS),
                       default="python",
                       help="accepted for symmetry; observation always "
                            "runs the python engine (the fast engine "
                            "has no observer hooks) with a notice")
    trace.add_argument("--smoke", action="store_true",
                       help="fixed tiny run (gzip, 800 instructions) "
                            "for the CI trace-smoke gate")
    trace.add_argument("-o", "--output", default="trace.json",
                       help="Chrome-trace output path (default: "
                            "trace.json; load in ui.perfetto.dev)")
    trace.add_argument("--sample-interval", type=int, default=64,
                       help="cycles between metric samples (default 64)")
    trace.add_argument("--event-limit", type=int, default=65536,
                       help="stored-event cap; per-kind counts stay "
                            "exact beyond it (default 65536)")
    trace.add_argument("--pipetrace", type=int, default=0, metavar="N",
                       help="also record the last N instructions as "
                            "pipeline slices and print the diagram")
    trace.set_defaults(func=cmd_trace)

    profile = sub.add_parser(
        "profile", help="cProfile one sweep cell; hot-function table "
                        "into BENCH_sweep.json")
    add_common(profile)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--top", type=int, default=15,
                         help="hot functions to keep (default 15)")
    profile.add_argument("-o", "--output", default="BENCH_sweep.json",
                         help="report to merge the profile into "
                              "(default: BENCH_sweep.json)")
    profile.set_defaults(func=cmd_profile)

    pipe = sub.add_parser("pipetrace", help="per-instruction pipeline view")
    add_common(pipe)
    pipe.add_argument("--first", type=int, default=0)
    pipe.add_argument("--last", type=int, default=40)
    pipe.set_defaults(func=cmd_pipetrace)

    check = sub.add_parser(
        "check", help="run benchmarks under full validation")
    check.add_argument("benchmark",
                       help=f"benchmark name ({', '.join(ALL_BENCHMARKS)}) "
                            "or 'all'")
    check.add_argument("-n", "--instructions", type=int, default=6000)
    check.add_argument("--lsq", choices=sorted(PRESETS) + ["all"],
                       default="all")
    check.add_argument("--ports", type=int, default=2)
    check.add_argument("--backend", choices=list(SIM_BACKENDS),
                       default="python",
                       help="accepted for symmetry; validation is "
                            "checker-attached, which always uses the "
                            "python engine (printed as a notice)")
    check.add_argument("--faults", action="store_true",
                       help="also run the fault-injection campaigns and "
                            "assert zero silent corruptions")
    check.add_argument("--seed", type=int, default=0,
                       help="fault-injection RNG seed")
    check.set_defaults(func=cmd_check)

    from repro.litmus.shapes import SHAPES as _shapes
    litmus = sub.add_parser(
        "litmus", help="memory-consistency torture battery: litmus "
                       "shapes x fencing x interleaving seeds, outcomes "
                       "checked against the declared ordering model")
    litmus.add_argument("shape", nargs="?", default="all",
                        choices=sorted(_shapes) + ["all"],
                        help="litmus shape (default: all)")
    litmus.add_argument("--fence", choices=["off", "on", "both"],
                        default="both",
                        help="run unfenced, fenced, or both variants "
                             "(default: both)")
    litmus.add_argument("--contexts", type=int, default=0,
                        help="context count (default: the shape's own)")
    litmus.add_argument("--interleave", choices=["random", "round_robin"],
                        default="random")
    litmus.add_argument("--padding", type=int, default=0,
                        help="filler ALU ops before each litmus op")
    litmus.add_argument("--seed-range", default="0:8", dest="seed_range",
                        help="interleaving seeds as half-open A:B or a "
                             "single integer (default: 0:8)")
    litmus.add_argument("-n", "--instructions", type=int, default=320,
                        help="instructions per cell (default: 320)")
    litmus.add_argument("--lsq", choices=sorted(PRESETS) + ["membar"],
                        default="conventional",
                        help="LSQ preset; 'membar' is the Section 2.2 "
                             "software-ordering design (relaxed model)")
    litmus.add_argument("--ports", type=int, default=2)
    litmus.add_argument("--backend", choices=list(SIM_BACKENDS),
                        default="python",
                        help="accepted for symmetry; litmus runs are "
                             "checker-attached, which always uses the "
                             "python engine (printed as a notice)")
    litmus.add_argument("--model",
                        choices=["auto", "sc", "tso", "relaxed"],
                        default="auto",
                        help="ordering model to hold outcomes to "
                             "(default: the machine's declared model)")
    litmus.add_argument("--faults", action="store_true",
                        help="also run the litmus fault campaigns "
                             "(drop-membar, corrupt-nilp) and assert "
                             "zero silent corruptions")
    litmus.add_argument("--fault-rate", type=float, default=0.25,
                        dest="fault_rate")
    litmus.add_argument("--seed", type=int, default=0,
                        help="fault-injection RNG seed")
    litmus.add_argument("--smoke", action="store_true",
                        help="fixed tiny slice (mp,sb x both fences x "
                             "2 seeds + fault campaigns) for CI")
    litmus.set_defaults(func=cmd_litmus)

    from repro.analyze.runner import build_parser as build_lint_parser
    lint = sub.add_parser(
        "lint", help="simulator-aware static analysis over repro sources")
    build_lint_parser(lint)
    lint.set_defaults(func=cmd_lint)

    serve = sub.add_parser(
        "serve", help="run the simulation job server (POST sweep specs "
                      "to /jobs; progress streams as NDJSON)")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8642,
                       help="listen port (default 8642; 0 = ephemeral)")
    serve.add_argument("--workers", type=int, default=2,
                       help="worker processes for cache misses "
                            "(default 2)")
    serve.add_argument("--max-jobs", type=int, default=8,
                       dest="max_jobs",
                       help="active jobs admitted before 429 "
                            "(default 8)")
    serve.add_argument("--retry-after", type=float, default=1.0,
                       dest="retry_after",
                       help="Retry-After hint for backpressured "
                            "clients, seconds (default 1)")
    serve.add_argument("--cache", dest="cache_dir", metavar="DIR",
                       help="result-cache directory (default: "
                            "$REPRO_CACHE_DIR or .repro-cache)")
    serve.add_argument("--no-cache", action="store_true",
                       help="disable the on-disk result cache "
                            "(coalescing still dedupes concurrent "
                            "cells)")
    serve.add_argument("--heartbeat", type=float, default=2.0,
                       help="stream heartbeat interval, seconds "
                            "(default 2; 0 disables)")
    serve.set_defaults(func=cmd_serve)

    submit = sub.add_parser(
        "submit", help="submit a sweep to a running server and stream "
                       "the job to completion")
    submit.add_argument("--host", default="127.0.0.1")
    submit.add_argument("--port", type=int, default=8642)
    submit.add_argument("--benchmarks", default="gzip",
                        help="comma-separated names, litmus/... allowed "
                             "(default: gzip)")
    submit.add_argument("--presets", default="conventional,full",
                        help="comma-separated preset names "
                             "(default: conventional,full)")
    submit.add_argument("--seeds", default="0",
                        help="comma-separated seeds (default: 0)")
    submit.add_argument("-n", "--instructions", type=int, default=0,
                        help="instructions per cell (default: 800)")
    submit.add_argument("--ports", type=int, default=0,
                        help="search ports (default: the paper's "
                             "pairing)")
    submit.add_argument("--validate", action="store_true",
                        help="run every cell under the validation stack")
    submit.add_argument("--obs", action="store_true",
                        help="attach the interval sampler; progress "
                             "events carry IPC/occupancy tails")
    submit.add_argument("--smoke", action="store_true",
                        help="submit the fixed CI smoke slice")
    submit.add_argument("--wait-busy", action="store_true",
                        dest="wait_busy",
                        help="sleep out 429 backpressure instead of "
                             "exiting 6")
    submit.add_argument("--retries", type=int, default=60,
                        help="max submission attempts with --wait-busy "
                             "(default 60)")
    submit.add_argument("-o", "--output", default=None,
                        help="also write the full result JSON here")
    submit.add_argument("--heartbeat-misses", type=int, default=3,
                        dest="heartbeat_misses",
                        help="consecutive missed heartbeats before the "
                             "stream is declared stalled (default 3)")
    submit.set_defaults(func=cmd_submit)

    top = sub.add_parser(
        "top", help="live per-worker fleet view of a running server")
    top.add_argument("--host", default="127.0.0.1")
    top.add_argument("--port", type=int, default=8642)
    top.add_argument("--once", action="store_true",
                     help="print one snapshot and exit (scripts/CI)")
    top.add_argument("--interval", type=float, default=1.0,
                     help="refresh interval, seconds (default 1)")
    top.set_defaults(func=cmd_top)

    timeline = sub.add_parser(
        "timeline", help="merge a finished job's span tree with "
                         "re-simulated cell pipeline traces into one "
                         "Perfetto/Chrome trace")
    timeline.add_argument("job_id", help="job id (e.g. job-000001)")
    timeline.add_argument("--host", default="127.0.0.1")
    timeline.add_argument("--port", type=int, default=8642)
    timeline.add_argument("--cells", type=int, default=2,
                          help="cells to re-simulate into the timeline "
                               "(default 2; computed cells first)")
    timeline.add_argument("--pipetrace", type=int, default=48,
                          help="instructions of pipeline diagram per "
                               "cell (default 48)")
    timeline.add_argument("-o", "--output", default=None,
                          help="output file (default "
                               "timeline-<job>.json)")
    timeline.set_defaults(func=cmd_timeline)
    return parser


def main(argv=None) -> None:
    args = build_parser().parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
