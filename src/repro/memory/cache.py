"""A set-associative, write-back, write-allocate cache with true LRU.

The simulator is timing-only: caches track tags, not data.  ``lookup``
returns whether a block is present and updates recency; ``fill`` inserts
a block and reports the victim (for write-back traffic accounting).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.config import CacheConfig
from repro.obs.events import EventBus

#: Components any stage may touch directly (sim-lint SIM-M registry):
#: the observability layer, like stats/tracer, is write-from-anywhere.
SIM_LINT_INTERFACES = frozenset({"obs"})


@dataclass
class CacheStats:
    """Hit/miss counters for one cache."""

    hits: int = 0
    misses: int = 0
    writebacks: int = 0

    @property
    def accesses(self) -> int:
        return self.hits + self.misses

    @property
    def miss_rate(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class Cache:
    """Tag store for one cache level.

    Each set is an ordered list of ``(tag, dirty)`` entries, most
    recently used last.  True LRU replacement.
    """

    __slots__ = ("config", "name", "_block_shift", "_set_mask",
                 "_tag_shift", "_sets", "stats", "obs")

    def __init__(self, config: CacheConfig, name: str = "cache") -> None:
        self.config = config
        self.name = name
        self._block_shift = config.block_bytes.bit_length() - 1
        if (1 << self._block_shift) != config.block_bytes:
            raise ValueError("block size must be a power of two")
        self._set_mask = config.num_sets - 1
        self._tag_shift = self._set_mask.bit_length()
        # sets[i] is a list of [tag, dirty] pairs, LRU first.  Sets are
        # materialised on first fill: short runs touch a tiny fraction
        # of a big L2, so eagerly building num_sets empty lists per
        # simulation is measurable host cost for no model effect.
        self._sets: Dict[int, List[list]] = {}
        self.stats = CacheStats()
        #: Optional event bus (repro.obs); wired by Observer.attach().
        self.obs: Optional[EventBus] = None

    def _index_tag(self, addr: int):
        block = addr >> self._block_shift
        return block & self._set_mask, block >> self._tag_shift

    def lookup(self, addr: int, write: bool = False) -> bool:
        """Probe for the block holding ``addr``; update LRU on hit."""
        index, tag = self._index_tag(addr)
        entries = self._sets.get(index)
        if entries:
            for i, entry in enumerate(entries):
                if entry[0] == tag:
                    entries.append(entries.pop(i))
                    if write:
                        entry[1] = True
                    self.stats.hits += 1
                    return True
        self.stats.misses += 1
        if self.obs is not None:
            self.obs.emit("cache_miss", arg=addr, note=self.name)
        return False

    def fill(self, addr: int, dirty: bool = False) -> Optional[int]:
        """Insert the block for ``addr``; return the victim block address
        if a dirty block was evicted (write-back), else ``None``."""
        index, tag = self._index_tag(addr)
        entries = self._sets.get(index)
        if entries is None:
            entries = self._sets[index] = []
        for entry in entries:
            if entry[0] == tag:  # already present (e.g. racing fill)
                entry[1] = entry[1] or dirty
                return None
        victim_addr = None
        if len(entries) >= self.config.associativity:
            victim_tag, victim_dirty = entries.pop(0)
            if victim_dirty:
                self.stats.writebacks += 1
                victim_addr = ((victim_tag << self._tag_shift | index)
                               << self._block_shift)
        entries.append([tag, dirty])
        return victim_addr

    def contains(self, addr: int) -> bool:
        """Non-destructive probe (no LRU update, no stats)."""
        index, tag = self._index_tag(addr)
        return any(entry[0] == tag
                   for entry in self._sets.get(index, ()))

    def invalidate_all(self) -> None:
        """Drop every block (used between independent simulations)."""
        self._sets = {}
