"""The L1/L2/memory stack of Table 1.

Timing model: an access that hits in L1 costs ``l1.hit_latency``; an L1
miss adds the L2 hit latency; an L2 miss adds the main-memory latency.
All levels are pipelined, so concurrent misses overlap (the paper
deliberately provisions a 4-ported L1-D so the cache never throttles the
load/store queue; miss overlap follows the same spirit).

Port accounting is per cycle: ``try_reserve_port`` grants up to
``config.ports`` accesses in one cycle and must be called with
monotonically non-decreasing cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.config import MemoryConfig
from repro.memory.cache import Cache


@dataclass(frozen=True)
class AccessResult:
    """Outcome of a data access: total latency and the level that served it."""

    latency: int
    level: str  # "L1", "L2", or "MEM"

    @property
    def l1_hit(self) -> bool:
        return self.level == "L1"


class _PortMeter:
    """Per-cycle port usage counter."""

    def __init__(self, ports: int) -> None:
        self.ports = ports
        self._cycle = -1
        self._used = 0

    def try_reserve(self, cycle: int) -> bool:
        if cycle != self._cycle:
            self._cycle = cycle
            self._used = 0
        if self._used >= self.ports:
            return False
        self._used += 1
        return True

    def available(self, cycle: int) -> bool:
        """Peek without reserving."""
        return cycle != self._cycle or self._used < self.ports


class MemoryHierarchy:
    """Instruction and data paths through the Table 1 hierarchy."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config
        self.l1i = Cache(config.l1i, "L1-I")
        self.l1d = Cache(config.l1d, "L1-D")
        self.l2 = Cache(config.l2, "L2")
        self.d_ports = _PortMeter(config.l1d.ports)
        self.i_ports = _PortMeter(config.l1i.ports)
        # In-flight L1-D misses (block -> data-ready cycle) when MSHRs
        # are modelled; accesses to an in-flight block merge onto it.
        self._outstanding: Dict[int, int] = {}
        self.mshr_merges = 0
        self.mshr_queue_delays = 0

    # -- data side -------------------------------------------------------

    def try_reserve_data_port(self, cycle: int) -> bool:
        """Claim one L1-D port for this cycle (False when exhausted)."""
        return self.d_ports.try_reserve(cycle)

    def data_access(self, addr: int, write: bool = False,
                    cycle: Optional[int] = None) -> AccessResult:
        """Access the data path, filling caches on the way back.

        With ``l1d_mshrs`` configured and ``cycle`` supplied, misses are
        subject to MSHR semantics: an access to a block already in
        flight *merges* (its latency is the remaining time of that
        miss), and a miss arriving while all MSHRs are busy queues
        behind the earliest-completing one.
        """
        if self.l1d.lookup(addr, write=write):
            # Tags fill eagerly in this model, so an access to a block
            # whose miss is still in flight *hits* here; with MSHRs
            # modelled it must instead merge onto the outstanding miss.
            if self.config.l1d_mshrs and cycle is not None:
                ready = self._outstanding.get(addr >> 6)
                if ready is not None and ready > cycle:
                    self.mshr_merges += 1
                    return AccessResult(
                        max(ready - cycle, self.config.l1d.hit_latency),
                        "L1")
            return AccessResult(self.config.l1d.hit_latency, "L1")
        if self.l2.lookup(addr):
            self._fill_l1d(addr, write)
            latency = self.config.l1d.hit_latency + self.config.l2.hit_latency
            return self._missed(addr, latency, "L2", cycle)
        self.l2.fill(addr)
        self._fill_l1d(addr, write)
        latency = (self.config.l1d.hit_latency + self.config.l2.hit_latency
                   + self.config.memory_latency)
        return self._missed(addr, latency, "MEM", cycle)

    def _missed(self, addr: int, latency: int, level: str,
                cycle: Optional[int]) -> AccessResult:
        mshrs = self.config.l1d_mshrs
        if not mshrs or cycle is None:
            return AccessResult(latency, level)
        block = addr >> 6
        ready = self._outstanding.get(block)
        if ready is not None and ready > cycle:
            # Merge onto the in-flight miss for this block.
            self.mshr_merges += 1
            return AccessResult(max(ready - cycle,
                                    self.config.l1d.hit_latency), level)
        live = sorted(r for r in self._outstanding.values() if r > cycle)
        if len(self._outstanding) > 4 * mshrs:
            self._outstanding = {b: r for b, r in self._outstanding.items()
                                 if r > cycle}
        delay = 0
        if len(live) >= mshrs:
            # All MSHRs busy: queue behind the one freeing soonest.
            delay = live[len(live) - mshrs] - cycle
            self.mshr_queue_delays += 1
        self._outstanding[block] = cycle + delay + latency
        return AccessResult(delay + latency, level)

    def _fill_l1d(self, addr: int, write: bool) -> None:
        victim = self.l1d.fill(addr, dirty=write)
        if victim is not None:
            # Dirty victim written back into L2 (timing-neutral here).
            self.l2.fill(victim, dirty=True)

    # -- instruction side --------------------------------------------------

    def instruction_access(self, pc: int) -> AccessResult:
        """Access the instruction path (fetch)."""
        if self.l1i.lookup(pc):
            return AccessResult(self.config.l1i.hit_latency, "L1")
        if self.l2.lookup(pc):
            self.l1i.fill(pc)
            latency = self.config.l1i.hit_latency + self.config.l2.hit_latency
            return AccessResult(latency, "L2")
        self.l2.fill(pc)
        self.l1i.fill(pc)
        latency = (self.config.l1i.hit_latency + self.config.l2.hit_latency
                   + self.config.memory_latency)
        return AccessResult(latency, "MEM")
