"""Memory-hierarchy substrate: set-associative caches and the Table 1 stack."""

from repro.memory.cache import Cache, CacheStats
from repro.memory.hierarchy import AccessResult, MemoryHierarchy

__all__ = ["Cache", "CacheStats", "MemoryHierarchy", "AccessResult"]
