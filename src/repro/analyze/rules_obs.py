"""SIM-O: observability purity — zero cost when detached.

The repro.obs contract (PR 4) is that instrumentation is *free when
off*: a simulation constructed without an observer must execute the
exact same work as an instrumented one minus the emissions.  Two ways
code drifts from that:

``SIM-O001`` — an emission call on an observer handle
    (``self.obs.emit(...)``, ``obs.on_issue(...)``) that is not
    dominated by a ``... is not None`` guard on that exact handle.
    Detached components hold ``obs = None``, so an unguarded emission
    is a latent ``AttributeError`` on every un-instrumented run — the
    common path.

``SIM-O002`` — an emission argument that is not side-effect free: a
    call outside the pure whitelist (``len``/``max``/arithmetic-style
    builtins), a walrus, an await/yield.  Arguments are evaluated even
    when the observer drops the event, and a side-effecting argument
    makes model behaviour depend on whether tracing is attached —
    exactly the divergence the golden-digest parity tests exist to
    catch.

Guard recognition uses the CFG guard-fact must-analysis
(:mod:`repro.analyze.dataflow.cfg`): ``if self.obs is not None:``
blocks, the hot-path alias form ``obs = self.obs`` / ``if obs is not
None:``, conditional expressions (``x.summary() if x is not None else
None``) and ``and`` short-circuits all count.  A handle bound directly
to a constructor call (``observer = Observer(cfg)``) is provably
non-null and needs no guard.  The ``repro/obs`` package itself is out
of scope — inside the observer, the handle is ``self``.
"""

from __future__ import annotations

import ast
from typing import FrozenSet, List, Optional, Set, Tuple

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.dataflow.callgraph import callee_name, own_nodes
from repro.analyze.dataflow.cfg import build_cfg, canonical_expr, test_facts
from repro.analyze.dataflow.defuse import DefUse
from repro.analyze.engine import Analysis, SourceModule, functions_of
from repro.analyze.findings import Finding

#: Trailing names that mark an observer handle.
OBSERVER_NAMES = frozenset({"obs", "observer"})

#: Calls allowed inside emission arguments (read-only builtins).
PURE_ARG_CALLS = frozenset({
    "len", "min", "max", "abs", "sum", "round", "int", "float", "str",
    "bool", "repr", "format", "hex", "oct", "bin", "id", "hash",
    "tuple", "list", "dict", "sorted", "getattr", "isinstance",
})


def _finding(rule: str, module: SourceModule, node: ast.AST,
             message: str) -> Finding:
    return Finding(rule=rule, path=module.path,
                   line=getattr(node, "lineno", 1),
                   column=getattr(node, "col_offset", 0),
                   message=message, fixit=RULE_CATALOG[rule].fixit)


def _emission_receiver(call: ast.Call) -> Optional[str]:
    """Canonical observer path when ``call`` is an emission, else None."""
    func = call.func
    if not isinstance(func, ast.Attribute):
        return None
    path = canonical_expr(func.value)
    if path is None:
        return None
    if path.split(".")[-1] in OBSERVER_NAMES:
        return path
    return None


def _constructor_bound(path: str, receiver: ast.AST,
                       defuse: DefUse) -> bool:
    """True when a bare-name handle is only ever bound to a direct
    constructor call (``obs = Observer(...)``) — provably non-null."""
    if "." in path or not isinstance(receiver, ast.Name):
        return False
    defs = defuse.defs_of_use(receiver)
    if not defs:
        return False
    for definition in defs:
        if len(definition.value_exprs) != 1:
            return False
        value = definition.value_exprs[0]
        if not isinstance(value, ast.Call):
            return False
        name = callee_name(value)
        if name is None or not name[:1].isupper():
            return False
    return True


def _expression_guards(module: SourceModule,
                       call: ast.Call) -> Tuple[FrozenSet[str],
                                                Optional[ast.stmt]]:
    """Facts asserted by conditional *expressions* enclosing ``call``
    (IfExp arms, ``and`` short-circuits), plus the enclosing statement."""
    facts: Set[str] = set()
    node: ast.AST = call
    parent = module.parent(node)
    while parent is not None and not isinstance(node, ast.stmt):
        if isinstance(parent, ast.IfExp):
            if node is parent.body:
                facts |= test_facts(parent.test)[0]
            elif node is parent.orelse:
                facts |= test_facts(parent.test)[1]
        elif isinstance(parent, ast.BoolOp) and \
                isinstance(parent.op, ast.And):
            for index, value in enumerate(parent.values):
                if value is node:
                    for prior in parent.values[:index]:
                        facts |= test_facts(prior)[0]
                    break
        node, parent = parent, module.parent(parent)
    stmt = node if isinstance(node, ast.stmt) else None
    return frozenset(facts), stmt


def _impure_argument(call: ast.Call) -> Optional[Tuple[ast.AST, str]]:
    """First impure expression among the emission's arguments."""
    exprs = list(call.args) + [keyword.value for keyword in call.keywords]
    for expr in exprs:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                name = callee_name(node)
                if name is None or name not in PURE_ARG_CALLS:
                    shown = name + "()" if name else "call"
                    return node, f"impure call '{shown}'"
            elif isinstance(node, ast.NamedExpr):
                return node, "walrus assignment"
            elif isinstance(node, (ast.Await, ast.Yield, ast.YieldFrom)):
                return node, "await/yield"
    return None


def check(analysis: Analysis) -> List[Finding]:
    findings: List[Finding] = []
    for module in analysis.modules:
        if module.in_scope("obs"):
            continue            # inside the observer, the handle is self
        for func in functions_of(module.tree):
            cfg = None
            defuse = None
            for node in own_nodes(func):
                if not isinstance(node, ast.Call):
                    continue
                path = _emission_receiver(node)
                if path is None:
                    continue
                if cfg is None:
                    cfg = build_cfg(func)
                    defuse = DefUse.build(func, cfg)
                assert defuse is not None
                method = node.func.attr \
                    if isinstance(node.func, ast.Attribute) else "?"
                expr_facts, stmt = _expression_guards(module, node)
                facts: Set[str] = set(expr_facts)
                if stmt is not None:
                    facts |= cfg.guard_facts_at(stmt)
                guarded = f"nonnull:{path}" in facts or \
                    _constructor_bound(path, node.func.value, defuse)
                if not guarded:
                    findings.append(_finding(
                        "SIM-O001", module, node,
                        f"emission '{method}()' on '{path}' is not "
                        f"dominated by an 'if {path} is not None' "
                        f"guard"))
                impure = _impure_argument(node)
                if impure is not None:
                    where, why = impure
                    findings.append(_finding(
                        "SIM-O002", module, where,
                        f"argument of emission '{method}()' on "
                        f"'{path}' has a side effect risk: {why}"))
    return findings
