"""SIM-D: run-to-run determinism rules.

A cycle-accurate simulator must produce bit-identical statistics for
identical (trace, config, seed) inputs — it is the property every test,
calibration, and A/B experiment in this repo leans on.  The three ways
Python code silently loses it:

* iterating an *unordered* container (``set``, ``dict.keys()``,
  ``dict.values()``) into an order-sensitive consumer — ``SIM-D001`` /
  ``SIM-D002``;
* drawing randomness from the global ``random`` module instead of a
  seeded ``random.Random`` instance — ``SIM-D003``;
* deriving ordering (sort keys, comparisons) from wall-clock time or
  CPython ``id()`` values — ``SIM-D004``.

``dict.items()`` iteration is deliberately *not* flagged: items carry
their keys, so downstream code can (and the fix-it for D002 says to)
impose a deterministic order; and CPython dicts iterate in insertion
order, which is reproducible for identical inputs.  The views flagged
here are the ones that drop the key context entirely.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.engine import Analysis, SourceModule, functions_of
from repro.analyze.findings import Finding

#: Builtins whose result does not depend on argument iteration order.
ORDER_INSENSITIVE = {"sorted", "sum", "min", "max", "any", "all", "len",
                     "set", "frozenset", "dict", "Counter"}
#: Builtins that bake the iteration order into their result.
ORDER_SENSITIVE = {"list", "tuple"}

#: time-module functions that read the wall clock / CPU clock.
WALL_CLOCK = {"time", "time_ns", "perf_counter", "perf_counter_ns",
              "monotonic", "monotonic_ns", "process_time",
              "process_time_ns"}

_ORDERING_OPS = (ast.Lt, ast.Gt, ast.LtE, ast.GtE)


def _finding(module: SourceModule, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(rule=rule, path=module.path,
                   line=getattr(node, "lineno", 1),
                   column=getattr(node, "col_offset", 0),
                   message=message, fixit=RULE_CATALOG[rule].fixit)


def _callee(node: ast.Call) -> Optional[str]:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset"))


def _walk_scope(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function scopes.

    ``functions_of`` yields the module *and* every function, so each
    scope must own its nodes exclusively or findings double-report.
    """
    stack: List[ast.AST] = [func]
    while stack:
        node = stack.pop()
        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            stack.append(child)


def _set_names(func: ast.AST) -> Set[str]:
    """Names assigned a set expression in ``func``'s own scope."""
    names: Set[str] = set()
    for node in _walk_scope(func):
        if isinstance(node, ast.Assign) and _is_set_expr(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and _is_set_expr(node.value) \
                and isinstance(node.target, ast.Name):
            names.add(node.target.id)
    return names


def _consumption_verdict(module: SourceModule, node: ast.AST) -> str:
    """How an unordered iterable at ``node`` is consumed.

    Returns ``"flag"`` (order-sensitive), ``"ok"`` (order-insensitive),
    or ``"unknown"`` (conservatively not reported).
    """
    parent = module.parent(node)
    if isinstance(parent, (ast.For, ast.AsyncFor)) and parent.iter is node:
        return "flag"
    if isinstance(parent, ast.comprehension) and parent.iter is node:
        comp = module.parent(parent)
        if isinstance(comp, (ast.SetComp, ast.DictComp)):
            return "ok"
        consumer = module.parent(comp) if comp is not None else None
        if isinstance(consumer, ast.Call):
            name = _callee(consumer)
            if name in ORDER_INSENSITIVE:
                return "ok"
            if name in ORDER_SENSITIVE:
                return "flag"
            return "flag" if isinstance(comp, ast.ListComp) else "unknown"
        return "flag" if isinstance(comp, ast.ListComp) else "unknown"
    if isinstance(parent, ast.Call) and node in parent.args:
        name = _callee(parent)
        if name in ORDER_INSENSITIVE:
            return "ok"
        if name in ORDER_SENSITIVE:
            return "flag"
        return "unknown"
    if isinstance(parent, ast.Compare):
        return "ok"            # membership test: order-free
    if isinstance(parent, ast.Starred):
        return "flag"          # *view unpacks in iteration order
    return "unknown"


def _check_set_iteration(module: SourceModule) -> Iterator[Finding]:
    for func in functions_of(module.tree):
        known_sets = _set_names(func)
        for node in _walk_scope(func):
            target: Optional[ast.AST] = None
            if isinstance(node, (ast.For, ast.AsyncFor)):
                target = node.iter
            elif isinstance(node, ast.comprehension):
                target = node.iter
            if target is None:
                continue
            is_set = _is_set_expr(target) or (
                isinstance(target, ast.Name) and target.id in known_sets)
            if not is_set:
                continue
            if _consumption_verdict(module, target) == "ok" and \
                    isinstance(node, ast.comprehension):
                continue
            if isinstance(node, ast.comprehension):
                comp = module.parent(node)
                if isinstance(comp, (ast.SetComp, ast.DictComp)):
                    continue
                verdict = _consumption_verdict(module, target)
                if verdict != "flag":
                    continue
            yield _finding(
                module, target, "SIM-D001",
                "iteration over an unordered set reaches an order-sensitive "
                "consumer; issue/search decisions derived from it differ "
                "between runs")


def _check_dict_views(module: SourceModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Call) and not node.args
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in ("keys", "values")):
            continue
        if _consumption_verdict(module, node) != "flag":
            continue
        yield _finding(
            module, node, "SIM-D002",
            f"dict .{node.func.attr}() view feeds an order-sensitive "
            "consumer; the result order is the dict's insertion history, "
            "not a deterministic key order")


def _random_import_aliases(module: SourceModule) -> Set[str]:
    aliases: Set[str] = set()
    for node in ast.walk(module.tree):
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name != "Random":
                    aliases.add(alias.asname or alias.name)
    return aliases


def _check_random(module: SourceModule) -> Iterator[Finding]:
    from_aliases = _random_import_aliases(module)
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if isinstance(func, ast.Attribute) and \
                isinstance(func.value, ast.Name) and func.value.id == "random":
            if func.attr == "Random":
                if not node.args and not node.keywords:
                    yield _finding(
                        module, node, "SIM-D003",
                        "random.Random() constructed without a seed draws "
                        "from OS entropy; two runs diverge")
            else:
                yield _finding(
                    module, node, "SIM-D003",
                    f"random.{func.attr}() uses the global unseeded RNG; "
                    "route randomness through a seeded random.Random")
        elif isinstance(func, ast.Name) and func.id in from_aliases:
            yield _finding(
                module, node, "SIM-D003",
                f"{func.id}() (imported from random) uses the global "
                "unseeded RNG; route randomness through a seeded "
                "random.Random")


def _is_wall_clock_call(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute) and isinstance(func.value, ast.Name):
        if func.value.id == "time" and func.attr in WALL_CLOCK:
            return f"time.{func.attr}()"
    if isinstance(func, ast.Attribute) and \
            func.attr in ("now", "utcnow", "today"):
        base = func.value
        base_name = base.attr if isinstance(base, ast.Attribute) else (
            base.id if isinstance(base, ast.Name) else None)
        if base_name in ("datetime", "date"):
            return f"{base_name}.{func.attr}()"
    return None


def _check_wall_clock_and_id(module: SourceModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if isinstance(node, ast.Call):
            clock = _is_wall_clock_call(node)
            if clock is not None:
                yield _finding(
                    module, node, "SIM-D004",
                    f"{clock} reads the wall clock; simulator state derived "
                    "from it varies between runs")
                continue
            if isinstance(node.func, ast.Name) and node.func.id == "id" \
                    and _id_feeds_ordering(module, node):
                yield _finding(
                    module, node, "SIM-D004",
                    "id() feeds an ordering decision; CPython object "
                    "addresses change run to run")
        elif isinstance(node, ast.keyword) and node.arg == "key" \
                and isinstance(node.value, ast.Name) \
                and node.value.id == "id":
            yield _finding(
                module, node.value, "SIM-D004",
                "key=id sorts by CPython object address, which changes "
                "run to run")


def _id_feeds_ordering(module: SourceModule, node: ast.Call) -> bool:
    for ancestor in module.parent_chain(node):
        if isinstance(ancestor, ast.keyword) and ancestor.arg == "key":
            return True
        if isinstance(ancestor, ast.Compare) and \
                any(isinstance(op, _ORDERING_OPS) for op in ancestor.ops):
            return True
        if isinstance(ancestor, ast.stmt):
            return False
    return False


def check(analysis: Analysis) -> List[Finding]:
    findings: List[Finding] = []
    for module in analysis.modules:
        findings.extend(_check_set_iteration(module))
        findings.extend(_check_dict_views(module))
        findings.extend(_check_random(module))
        findings.extend(_check_wall_clock_and_id(module))
    return findings
