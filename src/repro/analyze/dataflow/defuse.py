"""Reaching definitions and def-use chains over a :class:`~repro.analyze.
dataflow.cfg.CFG`.

Scope is one function's *local names*: parameters, assignment targets,
loop/with/except bindings, and walrus targets.  Attribute and subscript
stores are not definitions here (the taint engine treats attribute
reads by name instead).  Nested function bodies are opaque — their
statements belong to their own CFG/def-use instance.

Every definition is a :class:`Definition` carrying the value
expression(s) that produced it; a use (a ``Name`` in Load context) maps
to the set of definitions that reach it, computed flow-sensitively: the
classic gen/kill bit-vector fixpoint per block, then an in-order walk
of each block to resolve individual loads.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.analyze.dataflow.cfg import CFG

#: Container methods that write their arguments into the receiver: a
#: bare ``x.append(v)`` statement is modelled as an *augmenting*
#: definition of ``x`` (keeps prior contents, adds ``v``'s taint) so
#: the accumulate-into-a-local idiom cannot launder a flow.
_MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "add", "insert",
    "push", "setdefault", "update",
})


@dataclass
class Definition:
    """One binding of ``name``, with the expression(s) bound."""

    def_id: int
    name: str
    #: Value expressions whose taint the binding inherits.  A tuple
    #: unpack binds each target to the whole RHS (coarse); a parameter
    #: or opaque binding (``except E as name``) has none.
    value_exprs: Tuple[ast.AST, ...]
    #: ``x += v`` also keeps whatever reached ``x`` before.
    augments: bool = False
    #: Parameter index when this is a function-parameter binding.
    param_index: Optional[int] = None
    line: int = 0
    #: Statement making the binding (``None`` for parameters) — lets an
    #: augmenting definition find what reached the name before it.
    stmt: Optional[ast.stmt] = None


def _flatten_targets(target: ast.AST) -> List[ast.AST]:
    out: List[ast.AST] = []
    stack = [target]
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Tuple, ast.List)):
            stack.extend(node.elts)
        elif isinstance(node, ast.Starred):
            stack.append(node.value)
        else:
            out.append(node)
    return out


def _stmt_definitions(stmt: ast.stmt) -> List[Tuple[str, Tuple[ast.AST, ...],
                                                    bool, int]]:
    """``(name, value_exprs, augments, line)`` bindings made by ``stmt``
    itself (not by statements nested inside compound bodies)."""
    out: List[Tuple[str, Tuple[ast.AST, ...], bool, int]] = []
    line = getattr(stmt, "lineno", 0)
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            for leaf in _flatten_targets(target):
                if isinstance(leaf, ast.Name):
                    out.append((leaf.id, (stmt.value,), False, line))
    elif isinstance(stmt, ast.AnnAssign):
        if isinstance(stmt.target, ast.Name) and stmt.value is not None:
            out.append((stmt.target.id, (stmt.value,), False, line))
    elif isinstance(stmt, ast.AugAssign):
        if isinstance(stmt.target, ast.Name):
            out.append((stmt.target.id, (stmt.value,), True, line))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        for leaf in _flatten_targets(stmt.target):
            if isinstance(leaf, ast.Name):
                out.append((leaf.id, (stmt.iter,), False, line))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is None:
                continue
            for leaf in _flatten_targets(item.optional_vars):
                if isinstance(leaf, ast.Name):
                    out.append((leaf.id, (item.context_expr,), False, line))
    elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                           ast.ClassDef)):
        out.append((stmt.name, (), False, line))
    elif isinstance(stmt, (ast.Import, ast.ImportFrom)):
        for alias in stmt.names:
            bound = alias.asname or alias.name.split(".")[0]
            out.append((bound, (), False, line))
    elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
        call = stmt.value
        if isinstance(call.func, ast.Attribute) \
                and isinstance(call.func.value, ast.Name) \
                and call.func.attr in _MUTATOR_METHODS:
            values = tuple(call.args) + tuple(
                keyword.value for keyword in call.keywords)
            if values:
                out.append((call.func.value.id, values, True, line))
    # Walrus targets anywhere in the statement's own expressions.
    for node in _walk_own(stmt):
        if isinstance(node, ast.NamedExpr) and \
                isinstance(node.target, ast.Name):
            out.append((node.target.id, (node.value,), False,
                        getattr(node, "lineno", line)))
    return out


def _walk_own(stmt: ast.stmt) -> List[ast.AST]:
    """Expression nodes belonging to ``stmt`` itself: stops at nested
    statements and nested function/class bodies."""
    out: List[ast.AST] = []
    stack: List[ast.AST] = []
    for child in ast.iter_child_nodes(stmt):
        if not isinstance(child, ast.stmt):
            stack.append(child)
    while stack:
        node = stack.pop()
        out.append(node)
        if isinstance(node, (ast.Lambda,)):
            continue
        for child in ast.iter_child_nodes(node):
            if not isinstance(child, ast.stmt):
                stack.append(child)
    return out


@dataclass
class DefUse:
    """Reaching-definition solution for one function."""

    cfg: CFG
    definitions: List[Definition] = field(default_factory=list)
    #: id(Name-load node) -> def_ids reaching it.
    use_defs: Dict[int, Set[int]] = field(default_factory=dict)
    #: id(stmt) -> {name: def_ids reaching just before the stmt}.
    reaching_before: Dict[int, Dict[str, Set[int]]] = field(
        default_factory=dict)

    @classmethod
    def build(cls, func: ast.AST, cfg: CFG) -> "DefUse":
        solver = cls(cfg=cfg)
        solver._solve(func)
        return solver

    def defs_of_use(self, name_node: ast.Name) -> List[Definition]:
        return [self.definitions[d]
                for d in sorted(self.use_defs.get(id(name_node), ()))]

    def reaching_at(self, stmt: ast.stmt, name: str) -> List[Definition]:
        table = self.reaching_before.get(id(stmt), {})
        return [self.definitions[d] for d in sorted(table.get(name, ()))]

    # -- solver -------------------------------------------------------------

    def _new_def(self, name: str, value_exprs: Tuple[ast.AST, ...],
                 augments: bool, line: int,
                 param_index: Optional[int] = None,
                 stmt: Optional[ast.stmt] = None) -> int:
        def_id = len(self.definitions)
        self.definitions.append(Definition(
            def_id=def_id, name=name, value_exprs=value_exprs,
            augments=augments, param_index=param_index, line=line,
            stmt=stmt))
        return def_id

    def _solve(self, func: ast.AST) -> None:
        cfg = self.cfg
        # Entry definitions: parameters.
        entry_defs: Dict[str, Set[int]] = {}
        args = getattr(func, "args", None)
        if args is not None:
            params = list(args.posonlyargs) + list(args.args)
            extras = [args.vararg] + list(args.kwonlyargs) + [args.kwarg]
            for index, arg in enumerate(params):
                entry_defs[arg.arg] = {self._new_def(
                    arg.arg, (), False, getattr(arg, "lineno", 0),
                    param_index=index)}
            for arg in extras:
                if arg is not None:
                    entry_defs[arg.arg] = {self._new_def(
                        arg.arg, (), False, getattr(arg, "lineno", 0))}

        # Per-statement definition records (in block order).
        stmt_defs: Dict[int, List[int]] = {}
        for block in cfg.blocks:
            for stmt in block.stmts:
                ids = [self._new_def(name, values, augments, line,
                                     stmt=stmt)
                       for name, values, augments, line
                       in _stmt_definitions(stmt)]
                if ids:
                    stmt_defs[id(stmt)] = ids

        # Block-level gen/kill fixpoint.
        defs_by_name: Dict[str, Set[int]] = {}
        for definition in self.definitions:
            defs_by_name.setdefault(definition.name, set()).add(
                definition.def_id)

        def transfer(block_in: Dict[str, Set[int]],
                     block_id: int) -> Dict[str, Set[int]]:
            state = {name: set(ids) for name, ids in block_in.items()}
            for stmt in cfg.blocks[block_id].stmts:
                for def_id in stmt_defs.get(id(stmt), ()):
                    definition = self.definitions[def_id]
                    if definition.augments:
                        state.setdefault(definition.name, set()).add(def_id)
                    else:
                        state[definition.name] = {def_id}
            return state

        preds = cfg.predecessors()
        block_in: List[Dict[str, Set[int]]] = [{} for __ in cfg.blocks]
        block_in[cfg.entry] = entry_defs
        changed = True
        while changed:
            changed = False
            for block in cfg.blocks:
                if block.bid == cfg.entry:
                    merged = entry_defs
                else:
                    merged = {}
                    for pred, __ in preds[block.bid]:
                        for name, ids in transfer(block_in[pred],
                                                  pred).items():
                            merged.setdefault(name, set()).update(ids)
                if merged != block_in[block.bid]:
                    block_in[block.bid] = merged
                    changed = True

        # Resolve individual uses by walking each block in order.
        for block in cfg.blocks:
            state = {name: set(ids)
                     for name, ids in block_in[block.bid].items()}
            for stmt in block.stmts:
                self.reaching_before[id(stmt)] = \
                    {name: set(ids) for name, ids in state.items()}
                for node in _walk_own(stmt):
                    if isinstance(node, ast.Name) and \
                            isinstance(node.ctx, ast.Load):
                        ids = state.get(node.id)
                        if ids:
                            self.use_defs[id(node)] = set(ids)
                for def_id in stmt_defs.get(id(stmt), ()):
                    definition = self.definitions[def_id]
                    if definition.augments:
                        state.setdefault(definition.name, set()).add(def_id)
                    else:
                        state[definition.name] = {def_id}
