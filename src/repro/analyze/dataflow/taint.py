"""Label-set taint propagation over def-use chains and the call graph.

The engine answers one question for a rule: *can a value read from a
declared source reach a declared sink?*  Taint is a set of
:class:`TaintTag` labels attached to expressions:

* a **source** tag records where host-only state was read (file, line,
  which attribute) plus the interprocedural hops it travelled through;
* a **param** tag means "tainted iff argument *i* of this function is"
  — the device that lets one pass per function stand in for full
  context-sensitive analysis.

Per function, taint flows through assignments flow-sensitively (via
:class:`~repro.analyze.dataflow.defuse.DefUse` reaching definitions,
``x += v`` keeping what already reached ``x``).  Across functions it
flows two ways: **returns** (a function whose return expression is
tainted taints every call result, with param tags substituted by the
taint of the matching call argument) and **sink parameters** (a
function that passes parameter *i* into a sink turns every call site
passing tainted data in position *i* into a hit).  Both summaries are
solved to a fixpoint over the call graph with a worklist.

Mode rules:

* calls resolved in the corpus always use summaries;
* *blessed* calls (``TaintSpec.blessed_calls``, extended per module by
  a ``SIM_LINT_MODEL_VIEWS`` registry) return clean — the escape hatch
  for accessors that compute model-architectural answers from host
  indexes (``backward_path`` returning the modeled search itinerary);
* pure builtins/container methods (``len``, ``.pop`` ...) pass taint
  through — ``len(host_index)`` is still host-derived;
* unresolved calls *launder* taint in normal mode but *propagate* it
  inside ``@hotpath`` functions — the strictest mode, because hot-path
  code is exactly where host shortcuts live.

Attribute loads propagate **source** tags of their base expression
(an element pulled out of a host bucket stays host-derived) but drop
**param** tags (``self.lsq`` is not "parameter self"), which keeps
method receivers from poisoning whole classes.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import (Callable, Dict, FrozenSet, Iterable, List, Optional,
                    Sequence, Set, Tuple)

from repro.analyze.dataflow.callgraph import (CallGraph, FunctionInfo,
                                              callee_name, own_nodes)
from repro.analyze.dataflow.defuse import Definition
from repro.analyze.engine import SourceModule

#: Builtins and container methods whose result derives from their
#: inputs: they pass taint through rather than laundering it.
PURE_PASSTHROUGH = frozenset({
    "len", "max", "min", "sum", "abs", "int", "float", "bool", "round",
    "sorted", "reversed", "list", "tuple", "set", "frozenset", "dict",
    "iter", "next", "enumerate", "zip", "map", "filter",
    "pop", "popleft", "get", "copy", "index", "count",
})

#: Module-level registry declaring model-view accessors: methods whose
#: results are model-architectural even though they are computed from
#: host-side indexes (the sanctioned "charge the model" surface).
MODEL_VIEW_REGISTRY = "SIM_LINT_MODEL_VIEWS"

#: Cap on recorded interprocedural hops per tag (keeps fixpoints
#: finite on recursive call chains; deeper provenance adds no signal).
_MAX_VIA = 3


@dataclass(frozen=True)
class TaintTag:
    """One taint label: a source read, or a parameter dependency."""

    kind: str                       # "source" | "param"
    #: source: attribute/call name read.  param: unused.
    what: str = ""
    path: str = ""
    line: int = 0
    #: param: the parameter index.
    param: int = -1
    #: Interprocedural hops (function labels) the tag travelled.
    via: Tuple[str, ...] = ()

    def hop(self, label: str) -> "TaintTag":
        if len(self.via) >= _MAX_VIA or label in self.via:
            return self
        return TaintTag(kind=self.kind, what=self.what, path=self.path,
                        line=self.line, param=self.param,
                        via=self.via + (label,))


Taint = FrozenSet[TaintTag]
_CLEAN: Taint = frozenset()


def source_tags(taint: Taint) -> List[TaintTag]:
    return sorted((tag for tag in taint if tag.kind == "source"),
                  key=lambda tag: (tag.path, tag.line, tag.what))


def param_tags(taint: Taint) -> List[TaintTag]:
    return [tag for tag in taint if tag.kind == "param"]


@dataclass(frozen=True)
class TaintSpec:
    """What taints, what blesses, what stays pure."""

    #: attribute name -> human description of the host structure.
    source_attrs: Dict[str, str]
    #: call (trailing) name -> description; results are tainted.
    source_calls: Dict[str, str] = field(default_factory=dict)
    #: call names whose results are clean (model views).
    blessed_calls: FrozenSet[str] = frozenset()
    pure_calls: FrozenSet[str] = PURE_PASSTHROUGH


@dataclass
class SinkSite:
    """One place tainted data must not reach, inside one function."""

    node: ast.AST                   # anchor for findings (line/col)
    exprs: Tuple[ast.AST, ...]      # expressions that must stay clean
    descr: str                      # e.g. "SimStats counter 'x'"
    rule: str                       # rule id to report under


@dataclass
class TaintHit:
    """A source tag that reached a sink."""

    module: SourceModule
    node: ast.AST
    descr: str
    rule: str
    tags: List[TaintTag]
    #: set when the flow crosses a call boundary into the sink.
    via_call: Optional[str] = None


@dataclass
class _Summary:
    ret: Taint = _CLEAN
    #: param index -> (sink descr, rule) for params flowing to sinks.
    sink_params: Dict[int, Tuple[str, str]] = field(default_factory=dict)


def module_model_views(module: SourceModule) -> Set[str]:
    """Names declared in a module-level ``SIM_LINT_MODEL_VIEWS``."""
    declared: Set[str] = set()
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name)
                and target.id == MODEL_VIEW_REGISTRY):
            continue
        value = stmt.value
        if isinstance(value, ast.Call):        # frozenset({...})
            value = value.args[0] if value.args else value
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str):
                    declared.add(element.value)
    return declared


class TaintEngine:
    """Solves summaries for a spec, then reports sink hits."""

    def __init__(self, graph: CallGraph, spec: TaintSpec,
                 sink_sites: Callable[[FunctionInfo], List[SinkSite]],
                 modules: Sequence[SourceModule] = ()) -> None:
        self.graph = graph
        self.spec = spec
        self.sink_sites = sink_sites
        blessed = set(spec.blessed_calls)
        for module in modules:
            blessed |= module_model_views(module)
        self.blessed: FrozenSet[str] = frozenset(blessed)
        self.summaries: List[_Summary] = [
            _Summary() for __ in graph.functions]
        self._def_taint: Dict[int, Dict[int, Taint]] = {}

    # -- public -------------------------------------------------------------

    def solve(self) -> None:
        """Fixpoint of return/sink-param summaries with a worklist."""
        callers: Dict[int, Set[int]] = {
            info.index: set() for info in self.graph.functions}
        for info in self.graph.functions:
            for callee in self.graph.callees_of(info):
                callers[callee].add(info.index)
        work = [info.index for info in self.graph.functions]
        queued = set(work)
        rounds = 0
        limit = max(64, 8 * len(self.graph.functions))
        while work and rounds < limit:
            rounds += 1
            index = work.pop()
            queued.discard(index)
            info = self.graph.functions[index]
            new = self._summarise(info)
            old = self.summaries[index]
            if new.ret != old.ret or new.sink_params != old.sink_params:
                self.summaries[index] = new
                for caller in callers[index]:
                    if caller not in queued:
                        queued.add(caller)
                        work.append(caller)

    def collect_hits(self) -> List[TaintHit]:
        """One reporting pass after :meth:`solve` converged."""
        self._def_taint.clear()        # re-solve states against final summaries
        hits: List[TaintHit] = []
        for info in self.graph.functions:
            state = self._function_state(info)
            for site in self.sink_sites(info):
                taint: Set[TaintTag] = set()
                for expr in site.exprs:
                    taint |= self.expr_taint(expr, info, state)
                sources = source_tags(frozenset(taint))
                if sources:
                    hits.append(TaintHit(
                        module=info.module, node=site.node,
                        descr=site.descr, rule=site.rule, tags=sources))
            hits.extend(self._call_site_hits(info, state))
        return hits

    # -- per-function analysis ----------------------------------------------

    def _function_state(self, info: FunctionInfo) -> Dict[int, Taint]:
        cached = self._def_taint.get(info.index)
        if cached is not None:
            return cached
        du = info.defuse()
        state: Dict[int, Taint] = {}
        for definition in du.definitions:
            if definition.param_index is not None:
                state[definition.def_id] = frozenset(
                    {TaintTag(kind="param", param=definition.param_index)})
            else:
                state[definition.def_id] = _CLEAN
        for __ in range(6):
            changed = False
            for definition in du.definitions:
                if definition.param_index is not None:
                    continue
                taint: Set[TaintTag] = set()
                for value in definition.value_exprs:
                    taint |= self.expr_taint(value, info, state)
                if definition.augments and definition.stmt is not None:
                    for prior in du.reaching_at(definition.stmt,
                                                definition.name):
                        if prior.def_id != definition.def_id:
                            taint |= state[prior.def_id]
                frozen = frozenset(taint)
                if frozen != state[definition.def_id]:
                    state[definition.def_id] = frozen
                    changed = True
            if not changed:
                break
        self._def_taint[info.index] = state
        return state

    def _summarise(self, info: FunctionInfo) -> _Summary:
        self._def_taint.pop(info.index, None)    # summaries moved: re-solve
        state = self._function_state(info)
        ret: Set[TaintTag] = set()
        for node in own_nodes(info.node):
            if isinstance(node, ast.Return) and node.value is not None:
                ret |= self.expr_taint(node.value, info, state)
        summary = _Summary(ret=frozenset(ret))
        for site in self.sink_sites(info):
            taint: Set[TaintTag] = set()
            for expr in site.exprs:
                taint |= self.expr_taint(expr, info, state)
            for tag in param_tags(frozenset(taint)):
                summary.sink_params.setdefault(
                    tag.param, (site.descr, site.rule))
        # Transitive sink params: passing our parameter into a callee's
        # sink parameter makes it our sink parameter too.
        for call, callee, index, arg_taint in self._sink_param_flows(info,
                                                                     state):
            for tag in param_tags(arg_taint):
                descr, rule = self.summaries[callee.index].sink_params[index]
                summary.sink_params.setdefault(
                    tag.param, (f"{descr} (via {callee.qualname}())", rule))
        return summary

    # -- expression taint ----------------------------------------------------

    def expr_taint(self, node: ast.AST, info: FunctionInfo,
                   state: Dict[int, Taint]) -> Taint:
        spec = self.spec
        if isinstance(node, ast.Name):
            if not isinstance(node.ctx, ast.Load):
                return _CLEAN
            taint: Set[TaintTag] = set()
            for definition in info.defuse().defs_of_use(node):
                taint |= state.get(definition.def_id, _CLEAN)
            return frozenset(taint)
        if isinstance(node, ast.Attribute):
            out: Set[TaintTag] = set()
            if isinstance(node.ctx, ast.Load) and \
                    node.attr in spec.source_attrs:
                out.add(TaintTag(
                    kind="source", what=node.attr, path=info.module.path,
                    line=getattr(node, "lineno", 0)))
            base = self.expr_taint(node.value, info, state)
            out |= {tag for tag in base if tag.kind == "source"}
            return frozenset(out)
        if isinstance(node, ast.Call):
            return self._call_taint(node, info, state)
        if isinstance(node, (ast.BinOp,)):
            return self.expr_taint(node.left, info, state) | \
                self.expr_taint(node.right, info, state)
        if isinstance(node, ast.UnaryOp):
            return self.expr_taint(node.operand, info, state)
        if isinstance(node, ast.BoolOp):
            taint = set()
            for value in node.values:
                taint |= self.expr_taint(value, info, state)
            return frozenset(taint)
        if isinstance(node, ast.Compare):
            taint = set(self.expr_taint(node.left, info, state))
            for comparator in node.comparators:
                taint |= self.expr_taint(comparator, info, state)
            return frozenset(taint)
        if isinstance(node, ast.IfExp):
            return self.expr_taint(node.body, info, state) | \
                self.expr_taint(node.orelse, info, state)
        if isinstance(node, ast.Subscript):
            return self.expr_taint(node.value, info, state)
        if isinstance(node, ast.Starred):
            return self.expr_taint(node.value, info, state)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            taint = set()
            for element in node.elts:
                taint |= self.expr_taint(element, info, state)
            return frozenset(taint)
        if isinstance(node, ast.Dict):
            taint = set()
            for value in node.values:
                if value is not None:
                    taint |= self.expr_taint(value, info, state)
            return frozenset(taint)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp,
                             ast.GeneratorExp)):
            taint = set()
            for generator in node.generators:
                taint |= self.expr_taint(generator.iter, info, state)
            return frozenset(taint)
        if isinstance(node, ast.NamedExpr):
            return self.expr_taint(node.value, info, state)
        if isinstance(node, ast.JoinedStr):
            taint = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    taint |= self.expr_taint(value.value, info, state)
            return frozenset(taint)
        return _CLEAN

    def _call_taint(self, node: ast.Call, info: FunctionInfo,
                    state: Dict[int, Taint]) -> Taint:
        name = callee_name(node)
        if name is None:
            return _CLEAN
        if name in self.blessed:
            return _CLEAN
        out: Set[TaintTag] = set()
        if name in self.spec.source_calls:
            out.add(TaintTag(kind="source", what=f"{name}()",
                             path=info.module.path,
                             line=getattr(node, "lineno", 0)))
        callees = self.graph.resolve_call(node)
        for callee in callees:
            for tag in self.summaries[callee.index].ret:
                if tag.kind == "source":
                    out.add(tag.hop(callee.label))
                else:
                    arg = self._argument_for(callee, node, tag.param)
                    if arg is not None:
                        for sub in self.expr_taint(arg, info, state):
                            if sub.kind == "source":
                                out.add(sub.hop(callee.label))
                            else:
                                out.add(sub)
        passthrough = name in self.spec.pure_calls or \
            (not callees and info.hotpath)
        if passthrough:
            for arg in node.args:
                out |= self.expr_taint(arg, info, state)
            for keyword in node.keywords:
                out |= self.expr_taint(keyword.value, info, state)
            if isinstance(node.func, ast.Attribute):
                out |= self.expr_taint(node.func.value, info, state)
        return frozenset(out)

    def _argument_for(self, callee: FunctionInfo, call: ast.Call,
                      param: int) -> Optional[ast.AST]:
        """The call-site expression feeding ``callee``'s ``param``."""
        args_node = getattr(callee.node, "args", None)
        if args_node is None:
            return None
        params = [a.arg for a in list(args_node.posonlyargs)
                  + list(args_node.args)]
        offset = 0
        if callee.class_name is not None and \
                isinstance(call.func, ast.Attribute):
            if param == 0:
                return call.func.value      # the receiver is `self`
            offset = 1
        position = param - offset
        if 0 <= position < len(call.args):
            return call.args[position]
        if 0 <= param < len(params):
            wanted = params[param]
            for keyword in call.keywords:
                if keyword.arg == wanted:
                    return keyword.value
        return None

    def _sink_param_flows(self, info: FunctionInfo,
                          state: Dict[int, Taint]
                          ) -> Iterable[Tuple[ast.Call, FunctionInfo, int,
                                              Taint]]:
        """Call sites passing data into a callee's sink parameter."""
        for call in info.calls():
            for callee in self.graph.resolve_call(call):
                sink_params = self.summaries[callee.index].sink_params
                for index in sink_params:
                    arg = self._argument_for(callee, call, index)
                    if arg is None:
                        continue
                    taint = self.expr_taint(arg, info, state)
                    if taint:
                        yield call, callee, index, taint

    def _call_site_hits(self, info: FunctionInfo,
                        state: Dict[int, Taint]) -> List[TaintHit]:
        hits: List[TaintHit] = []
        for call, callee, index, taint in self._sink_param_flows(info,
                                                                 state):
            sources = source_tags(taint)
            if not sources:
                continue
            descr, rule = self.summaries[callee.index].sink_params[index]
            hits.append(TaintHit(
                module=info.module, node=call, descr=descr, rule=rule,
                tags=sources, via_call=callee.qualname))
        return hits
