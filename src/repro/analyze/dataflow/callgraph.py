"""Project-wide, name-resolved call graph over the parsed corpus.

Python has no static dispatch, so resolution is by *trailing name*: a
call ``a.b.search(...)`` is linked to every function or method named
``search`` anywhere in the corpus.  This over-approximates (two
unrelated ``reserve`` methods merge) but never misses a real edge
within the analyzed tree — the right bias for the taint and
reachability rules built on top.  Calls that resolve to nothing
(builtins, stdlib, third-party) are recorded as *unresolved*; the
taint engine decides per mode whether they launder or propagate.

Each function carries its module, enclosing class, ``@hotpath``
marking, and lazily-built CFG/def-use solutions so every rule shares
one set of solves.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.analyze.dataflow.cfg import CFG, build_cfg
from repro.analyze.dataflow.defuse import DefUse
from repro.analyze.engine import SourceModule


def is_hotpath(func: ast.AST) -> bool:
    """True when ``func`` carries a ``@hotpath`` decoration (bare name,
    attribute access, or a decorator-factory call of either)."""
    for decorator in getattr(func, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name) and target.id == "hotpath":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hotpath":
            return True
    return False


def callee_name(node: ast.Call) -> Optional[str]:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def own_nodes(func: ast.AST) -> Iterable[ast.AST]:
    """Walk ``func`` without descending into nested function/class
    scopes (the module node stops at *any* function)."""
    stack: List[ast.AST] = list(getattr(func, "body", []))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            continue                   # nested scope: statements not ours
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class FunctionInfo:
    """One function/method definition plus its lazy dataflow solves."""

    index: int
    module: SourceModule
    node: ast.AST                      # FunctionDef / AsyncFunctionDef
    name: str
    class_name: Optional[str]
    hotpath: bool
    _cfg: Optional[CFG] = field(default=None, repr=False)
    _defuse: Optional[DefUse] = field(default=None, repr=False)

    @property
    def qualname(self) -> str:
        if self.class_name:
            return f"{self.class_name}.{self.name}"
        return self.name

    @property
    def label(self) -> str:
        return f"{self.module.path}:{self.qualname}"

    def cfg(self) -> CFG:
        if self._cfg is None:
            self._cfg = build_cfg(self.node)
        return self._cfg

    def defuse(self) -> DefUse:
        if self._defuse is None:
            self._defuse = DefUse.build(self.node, self.cfg())
        return self._defuse

    def calls(self) -> List[ast.Call]:
        return [node for node in own_nodes(self.node)
                if isinstance(node, ast.Call)]


class CallGraph:
    """Every function in the corpus, indexed by trailing name."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.functions: List[FunctionInfo] = []
        self.by_name: Dict[str, List[FunctionInfo]] = {}
        for module in modules:
            self._index_module(module)
        #: callee FunctionInfo indices per caller index.
        self._callee_cache: Dict[int, Set[int]] = {}

    def _index_module(self, module: SourceModule) -> None:
        def visit(node: ast.AST, class_name: Optional[str]) -> None:
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef,
                                      ast.AsyncFunctionDef)):
                    info = FunctionInfo(
                        index=len(self.functions), module=module,
                        node=child, name=child.name,
                        class_name=class_name, hotpath=is_hotpath(child))
                    self.functions.append(info)
                    self.by_name.setdefault(child.name, []).append(info)
                    visit(child, None)     # nested defs: plain functions
                elif isinstance(child, ast.ClassDef):
                    visit(child, child.name)
                else:
                    visit(child, class_name)
        visit(module.tree, None)

    # -- resolution ---------------------------------------------------------

    def resolve_call(self, node: ast.Call) -> List[FunctionInfo]:
        name = callee_name(node)
        if name is None:
            return []
        return self.by_name.get(name, [])

    def callees_of(self, info: FunctionInfo) -> Set[int]:
        cached = self._callee_cache.get(info.index)
        if cached is not None:
            return cached
        out: Set[int] = set()
        for call in info.calls():
            for callee in self.resolve_call(call):
                out.add(callee.index)
        self._callee_cache[info.index] = out
        return out

    def reachable_from(self, entry_names: Iterable[str]) -> Set[int]:
        """Indices of every function reachable (by name resolution)
        from any function named in ``entry_names``."""
        work: List[int] = []
        seen: Set[int] = set()
        for name in entry_names:
            for info in self.by_name.get(name, []):
                if info.index not in seen:
                    seen.add(info.index)
                    work.append(info.index)
        while work:
            current = work.pop()
            for callee in self.callees_of(self.functions[current]):
                if callee not in seen:
                    seen.add(callee)
                    work.append(callee)
        return seen

    def functions_of_module(self, module: SourceModule) -> List[FunctionInfo]:
        return [info for info in self.functions if info.module is module]
