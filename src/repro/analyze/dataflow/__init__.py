"""Whole-program dataflow machinery behind the flow-aware rule families.

The first generation of ``repro.analyze`` rules (SIM-D/M/C/P) is
first-order: each looks at one AST shape at a time.  The invariants
added by the performance and caching work — "index the host, charge the
model", cache-key completeness, zero-cost-when-detached observability —
are *flow* properties: a value travels from a read site through
assignments, returns and calls before it reaches the place where it
becomes wrong.  This package supplies the machinery those rules need:

:mod:`~repro.analyze.dataflow.cfg`
    Per-function control-flow graphs with *guard facts* on branch
    edges (``x is not None`` on the true edge), plus a must-analysis
    computing which guards hold at every statement — how SIM-O proves
    an ``obs`` emission can only execute under its None-check.
:mod:`~repro.analyze.dataflow.defuse`
    Reaching definitions and def-use chains for function-local names
    over the CFG — how taint follows assignments flow-sensitively.
:mod:`~repro.analyze.dataflow.callgraph`
    A project-wide, name-resolved call graph over every parsed module,
    with ``@hotpath`` marking and reachability queries — how SIM-K
    scopes "code reachable from ``simulate()``" and how SIM-T carries
    taint through returns and calls.
:mod:`~repro.analyze.dataflow.taint`
    A label-set taint engine parameterised by a :class:`TaintSpec`
    (source attributes/calls, blessed model-view accessors, pure
    builtins).  Function summaries record whether returns are tainted
    (including "tainted iff argument *i* is") and which parameters
    flow into sinks, so taint crosses call boundaries in both
    directions without context explosion.

Everything here is pure stdlib ``ast`` and deliberately conservative:
name-based call resolution over-approximates (two methods sharing a
name are merged), and unresolved calls launder taint in normal mode but
propagate it in ``@hotpath`` strict mode.  The soundness trade-offs per
rule are documented in ``docs/STATIC_ANALYSIS.md``.
"""

from repro.analyze.dataflow.callgraph import CallGraph, FunctionInfo
from repro.analyze.dataflow.cfg import CFG, build_cfg
from repro.analyze.dataflow.defuse import DefUse
from repro.analyze.dataflow.taint import TaintEngine, TaintSpec, TaintTag

__all__ = [
    "CFG",
    "CallGraph",
    "DefUse",
    "FunctionInfo",
    "TaintEngine",
    "TaintSpec",
    "TaintTag",
    "build_cfg",
]
