"""Per-function control-flow graphs with guard facts.

A :class:`CFG` lowers one function body (or a module's top level) into
basic blocks connected by edges.  Branch edges carry **guard facts** —
canonical strings like ``nonnull:self.obs`` — extracted from the branch
condition: the true edge of ``if x is not None:`` (and of a bare
truthiness test ``if x:``) asserts the fact, the false edge of
``if x is None:`` asserts it, ``and`` chains assert every conjunct on
the true edge, ``or`` chains assert every negated operand on the false
edge, and ``not`` swaps the two.

:meth:`CFG.guard_facts_at` then runs a forward *must* analysis (meet =
intersection over predecessors, loops iterated to a fixpoint) so a rule
can ask "which guards provably hold every time this statement runs?" —
the question SIM-O asks of every ``obs`` emission.  Facts are killed by
any assignment to the guarded name (or to a prefix of the guarded
attribute chain) because the binding the guard tested may no longer be
the binding the use sees.

``try`` blocks are modelled coarsely (the body may jump to any handler
at any point, so handler entry keeps no facts from inside the body);
``assert`` acts as a guard whose false edge raises.  This
over-approximates reachability and under-approximates facts — the safe
direction for a must-analysis.
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

#: A guard fact: ``"nonnull:<canonical expr>"``.
Fact = str

_EMPTY: FrozenSet[Fact] = frozenset()


def canonical_expr(node: ast.AST) -> Optional[str]:
    """Dotted-path form of a Name/Attribute chain (``self.obs``), or
    ``None`` for anything that is not a plain chain."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def nonnull_fact(node: ast.AST) -> Optional[Fact]:
    path = canonical_expr(node)
    return f"nonnull:{path}" if path is not None else None


def test_facts(test: ast.AST) -> Tuple[FrozenSet[Fact], FrozenSet[Fact]]:
    """Facts asserted by a condition: ``(on_true, on_false)``."""
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        on_true, on_false = test_facts(test.operand)
        return on_false, on_true
    if isinstance(test, ast.BoolOp):
        if isinstance(test.op, ast.And):
            true_facts: Set[Fact] = set()
            for value in test.values:
                true_facts |= test_facts(value)[0]
            return frozenset(true_facts), _EMPTY
        false_facts: Set[Fact] = set()
        for value in test.values:
            false_facts |= test_facts(value)[1]
        return _EMPTY, frozenset(false_facts)
    if isinstance(test, ast.Compare) and len(test.ops) == 1 \
            and isinstance(test.comparators[0], ast.Constant) \
            and test.comparators[0].value is None:
        fact = nonnull_fact(test.left)
        if fact is None:
            return _EMPTY, _EMPTY
        if isinstance(test.ops[0], ast.IsNot):
            return frozenset({fact}), _EMPTY
        if isinstance(test.ops[0], ast.Is):
            return _EMPTY, frozenset({fact})
        return _EMPTY, _EMPTY
    # Bare truthiness test of a name/attribute: truthy implies not-None.
    fact = nonnull_fact(test)
    if fact is not None:
        return frozenset({fact}), _EMPTY
    return _EMPTY, _EMPTY


class Block:
    """One basic block: statements plus fact-labelled out-edges."""

    __slots__ = ("bid", "stmts", "edges")

    def __init__(self, bid: int) -> None:
        self.bid = bid
        self.stmts: List[ast.stmt] = []
        #: ``(successor block id, facts asserted on this edge)``.
        self.edges: List[Tuple[int, FrozenSet[Fact]]] = []


def _killed_facts(stmt: ast.stmt) -> Set[str]:
    """Canonical paths (re)bound by ``stmt`` — facts on them die."""
    killed: Set[str] = set()
    targets: List[ast.AST] = []
    if isinstance(stmt, ast.Assign):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        targets = [stmt.target]
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        targets = [stmt.target]
    elif isinstance(stmt, ast.Delete):
        targets = list(stmt.targets)
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        targets = [item.optional_vars for item in stmt.items
                   if item.optional_vars is not None]
    for node in ast.walk(stmt):
        if isinstance(node, ast.NamedExpr):
            targets.append(node.target)
    for target in targets:
        stack = [target]
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.Tuple, ast.List)):
                stack.extend(node.elts)
                continue
            if isinstance(node, ast.Starred):
                stack.append(node.value)
                continue
            path = canonical_expr(node)
            if path is not None:
                killed.add(path)
    return killed


def _fact_survives(fact: Fact, killed: Set[str]) -> bool:
    path = fact.split(":", 1)[1]
    for bound in killed:
        if path == bound or path.startswith(bound + "."):
            return False
    return True


class CFG:
    """The lowered function: blocks, entry/exit ids, fact queries."""

    def __init__(self, blocks: List[Block], entry: int, exit_id: int) -> None:
        self.blocks = blocks
        self.entry = entry
        self.exit = exit_id
        self._block_of_stmt: Dict[int, int] = {}
        for block in blocks:
            for stmt in block.stmts:
                self._block_of_stmt[id(stmt)] = block.bid
        self._facts_in: Optional[List[FrozenSet[Fact]]] = None

    # -- structure queries ---------------------------------------------------

    def block_of(self, stmt: ast.stmt) -> Optional[Block]:
        bid = self._block_of_stmt.get(id(stmt))
        return self.blocks[bid] if bid is not None else None

    def predecessors(self) -> Dict[int, List[Tuple[int, FrozenSet[Fact]]]]:
        preds: Dict[int, List[Tuple[int, FrozenSet[Fact]]]] = \
            {block.bid: [] for block in self.blocks}
        for block in self.blocks:
            for succ, facts in block.edges:
                preds[succ].append((block.bid, facts))
        return preds

    # -- guard-fact must-analysis -------------------------------------------

    def _block_kill(self, block: Block) -> Set[str]:
        killed: Set[str] = set()
        for stmt in block.stmts:
            killed |= _killed_facts(stmt)
        return killed

    def _solve_facts(self) -> List[FrozenSet[Fact]]:
        if self._facts_in is not None:
            return self._facts_in
        all_facts: Set[Fact] = set()
        for block in self.blocks:
            for __, facts in block.edges:
                all_facts |= facts
        top = frozenset(all_facts)
        preds = self.predecessors()
        facts_in: List[FrozenSet[Fact]] = [top for __ in self.blocks]
        facts_in[self.entry] = _EMPTY
        kills = [self._block_kill(block) for block in self.blocks]
        changed = True
        while changed:
            changed = False
            for block in self.blocks:
                if block.bid == self.entry:
                    continue
                incoming: Optional[Set[Fact]] = None
                for pred, edge_facts in preds[block.bid]:
                    surviving = {fact for fact in facts_in[pred]
                                 if _fact_survives(fact, kills[pred])}
                    surviving |= edge_facts
                    incoming = surviving if incoming is None \
                        else incoming & surviving
                new = frozenset(incoming) if incoming is not None else top
                if new != facts_in[block.bid]:
                    facts_in[block.bid] = new
                    changed = True
        self._facts_in = facts_in
        return facts_in

    def guard_facts_at(self, stmt: ast.stmt) -> FrozenSet[Fact]:
        """Facts that provably hold when ``stmt`` begins executing.

        Block-entry facts minus anything killed by earlier statements
        of the same block.
        """
        block = self.block_of(stmt)
        if block is None:
            return _EMPTY
        facts = set(self._solve_facts()[block.bid])
        for earlier in block.stmts:
            if earlier is stmt:
                break
            killed = _killed_facts(earlier)
            facts = {fact for fact in facts if _fact_survives(fact, killed)}
        return frozenset(facts)


class _Builder:
    """Recursive statement lowering shared by every compound form."""

    def __init__(self) -> None:
        self.blocks: List[Block] = []
        #: (continue target, break target) per enclosing loop.
        self.loops: List[Tuple[int, int]] = []
        self.exit = self.new_block().bid

    def new_block(self) -> Block:
        block = Block(len(self.blocks))
        self.blocks.append(block)
        return block

    def edge(self, src: int, dst: int,
             facts: FrozenSet[Fact] = _EMPTY) -> None:
        self.blocks[src].edges.append((dst, facts))

    def lower(self, stmts: Sequence[ast.stmt], current: int) -> int:
        """Lower ``stmts`` starting in block ``current``; return the
        block in control after the sequence (dead block if it cannot
        fall through)."""
        for stmt in stmts:
            current = self.lower_stmt(stmt, current)
        return current

    def lower_stmt(self, stmt: ast.stmt, current: int) -> int:
        if isinstance(stmt, ast.If):
            self.blocks[current].stmts.append(stmt)
            on_true, on_false = test_facts(stmt.test)
            then = self.new_block()
            self.edge(current, then.bid, on_true)
            join = self.new_block()
            after_then = self.lower(stmt.body, then.bid)
            self.edge(after_then, join.bid)
            if stmt.orelse:
                other = self.new_block()
                self.edge(current, other.bid, on_false)
                after_else = self.lower(stmt.orelse, other.bid)
                self.edge(after_else, join.bid)
            else:
                self.edge(current, join.bid, on_false)
            return join.bid
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            header = self.new_block()
            self.edge(current, header.bid)
            header.stmts.append(stmt)
            body = self.new_block()
            after = self.new_block()
            if isinstance(stmt, ast.While):
                on_true, on_false = test_facts(stmt.test)
            else:
                on_true, on_false = _EMPTY, _EMPTY
            self.edge(header.bid, body.bid, on_true)
            self.edge(header.bid, after.bid, on_false)
            self.loops.append((header.bid, after.bid))
            end_body = self.lower(stmt.body, body.bid)
            self.loops.pop()
            self.edge(end_body, header.bid)
            if stmt.orelse:
                after = self.new_block()      # else runs on normal exit
                else_entry = self.new_block()
                # Rewire the header's exit edge through the else suite.
                header.edges[-1] = (else_entry.bid, on_false)
                end_else = self.lower(stmt.orelse, else_entry.bid)
                self.edge(end_else, after.bid)
            return after.bid
        if isinstance(stmt, (ast.Try, getattr(ast, "TryStar", ast.Try))):
            body_entry = self.new_block()
            self.edge(current, body_entry.bid)
            join = self.new_block()
            end_body = self.lower(stmt.body, body_entry.bid)
            end_else = self.lower(stmt.orelse, end_body) \
                if stmt.orelse else end_body
            self.edge(end_else, join.bid)
            for handler in stmt.handlers:
                handler_entry = self.new_block()
                # Any point of the body may raise: edge from the body's
                # entry with no facts (coarse but safe for must-facts).
                self.edge(body_entry.bid, handler_entry.bid)
                self.edge(current, handler_entry.bid)
                end_handler = self.lower(handler.body, handler_entry.bid)
                self.edge(end_handler, join.bid)
            if stmt.finalbody:
                final_entry = self.new_block()
                self.edge(join.bid, final_entry.bid)
                return self.lower(stmt.finalbody, final_entry.bid)
            return join.bid
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            self.blocks[current].stmts.append(stmt)
            return self.lower(stmt.body, current)
        if isinstance(stmt, ast.Assert):
            self.blocks[current].stmts.append(stmt)
            on_true, __ = test_facts(stmt.test)
            cont = self.new_block()
            self.edge(current, cont.bid, on_true)
            self.edge(current, self.exit)
            return cont.bid
        if isinstance(stmt, (ast.Return, ast.Raise)):
            self.blocks[current].stmts.append(stmt)
            self.edge(current, self.exit)
            return self.new_block().bid       # unreachable continuation
        if isinstance(stmt, ast.Break):
            self.blocks[current].stmts.append(stmt)
            if self.loops:
                self.edge(current, self.loops[-1][1])
            return self.new_block().bid
        if isinstance(stmt, ast.Continue):
            self.blocks[current].stmts.append(stmt)
            if self.loops:
                self.edge(current, self.loops[-1][0])
            return self.new_block().bid
        # Simple statement (assignments, expressions, nested defs...).
        self.blocks[current].stmts.append(stmt)
        return current


def build_cfg(func: ast.AST) -> CFG:
    """Lower a function (or module) body into a :class:`CFG`."""
    builder = _Builder()
    entry = builder.new_block()
    end = builder.lower(getattr(func, "body", []), entry.bid)
    builder.edge(end, builder.exit)
    return CFG(builder.blocks, entry.bid, builder.exit)
