"""SIM-T: time taint — host-index data must not price the model.

The PR 5 hot-path overhaul split every queue into two faces: the
*model* face (program-order window, segment itineraries, port
calendars — what the paper's hardware sees and what SimStats charges
meter) and the *host* face (granule hash buckets, O(1) occupancy
mirrors, liveness counters — pure speed, architecturally invisible).
The golden-digest parity suite enforces the split dynamically; this
family enforces it statically by tainting every read of a host-only
index structure and tracking the taint through assignments, returns,
and calls (see :mod:`repro.analyze.dataflow.taint`):

``SIM-T001`` — a host-index-derived value reaches a
    :class:`SimStats` counter write (``stats.x += tainted``).

``SIM-T002`` — a host-index-derived value reaches a modeled charge:
    a port booking (``reserve``/``reserve_path``/``charge*`` argument)
    or a latency/cycle attribute write.

Host sources: ``_granules`` / ``candidate_lists()`` (the address-granule
candidate index), ``_order`` (the zero-copy program-order deque),
``_seg_seqs`` (per-segment bisection lists), ``_live`` / ``_occupied`` /
``live_loads`` (O(1) occupancy mirrors).

Blessing: accessors that *derive model-architectural answers* from host
indexes — the search itineraries ``backward_path``/``forward_path`` and
friends — are declared per module in ``SIM_LINT_MODEL_VIEWS`` and
return clean taint.  That registry is the machine-checkable form of
"charge the model": you may charge what the itinerary says, never what
the host shortcut saw.

``@hotpath`` functions run in strict mode: a call the analyzer cannot
resolve propagates taint instead of laundering it, because hot-path
code is exactly where host shortcuts concentrate.

Scope: findings are reported in ``core/``, ``pipeline/`` and
``memory/`` modules (taint still *propagates* through the whole
corpus, so a helper in ``harness/`` cannot launder a flow that ends in
``core/``).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Tuple

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.dataflow.callgraph import FunctionInfo, callee_name, \
    own_nodes
from repro.analyze.dataflow.taint import (SinkSite, TaintEngine, TaintHit,
                                          TaintSpec)
from repro.analyze.engine import Analysis
from repro.analyze.findings import Finding

#: Host-only index structures: reading one taints the value.
HOST_INDEX_ATTRS = {
    "_granules": "address-granule candidate index",
    "_order": "program-order host deque",
    "_seg_seqs": "per-segment bisection index",
    "_live": "O(1) live-slot counter",
    "_occupied": "O(1) occupied-segment counter",
    "live_loads": "O(1) live-load occupancy mirror",
}

#: Calls whose results are host-index views regardless of receiver.
HOST_INDEX_CALLS = {
    "candidate_lists": "granule-index candidate buckets",
}

#: Port-charge calls: tainted arguments are SIM-T002.
PORT_CHARGE_CALLS = ("reserve", "reserve_path", "charge")

#: Attribute-write suffixes treated as modeled latencies.
LATENCY_SUFFIXES = ("_cycle", "_cycles", "_latency")
LATENCY_ATTRS = {"latency"}

SPEC = TaintSpec(source_attrs=HOST_INDEX_ATTRS,
                 source_calls=HOST_INDEX_CALLS)


def _stats_counter_of(target: ast.AST) -> Optional[str]:
    """``stats.x`` / ``<anything>.stats.x`` -> ``"x"``."""
    if not isinstance(target, ast.Attribute):
        return None
    base = target.value
    if isinstance(base, ast.Attribute) and base.attr == "stats":
        return target.attr
    if isinstance(base, ast.Name) and base.id == "stats":
        return target.attr
    return None


def _latency_attr_of(target: ast.AST) -> Optional[str]:
    if not isinstance(target, ast.Attribute):
        return None
    name = target.attr
    if name in LATENCY_ATTRS or name.endswith(LATENCY_SUFFIXES):
        return name
    return None


def _sink_sites(info: FunctionInfo) -> List[SinkSite]:
    """Stats-counter writes, latency writes, port charges in ``info``."""
    sites: List[SinkSite] = []
    for node in own_nodes(info.node):
        targets: List[Tuple[ast.AST, ast.AST]] = []
        if isinstance(node, ast.AugAssign):
            targets = [(node.target, node.value)]
        elif isinstance(node, ast.Assign):
            targets = [(target, node.value) for target in node.targets]
        for target, value in targets:
            counter = _stats_counter_of(target)
            if counter is not None:
                sites.append(SinkSite(
                    node=node, exprs=(value,),
                    descr=f"SimStats counter '{counter}'",
                    rule="SIM-T001"))
                continue
            latency = _latency_attr_of(target)
            if latency is not None:
                sites.append(SinkSite(
                    node=node, exprs=(value,),
                    descr=f"modeled latency attribute '{latency}'",
                    rule="SIM-T002"))
        if isinstance(node, ast.Call):
            name = callee_name(node)
            if name is not None and (name in PORT_CHARGE_CALLS
                                     or name.startswith("charge_")):
                exprs = tuple(node.args) + tuple(
                    keyword.value for keyword in node.keywords)
                if exprs:
                    sites.append(SinkSite(
                        node=node, exprs=exprs,
                        descr=f"port charge '{name}()'",
                        rule="SIM-T002"))
    return sites


def _format_hit(hit: TaintHit) -> str:
    tag = hit.tags[0]
    origin = f"host index '{tag.what}' read at {tag.path}:{tag.line}"
    if tag.via:
        origin += " via " + " -> ".join(f"{hop.split(':')[-1]}()"
                                        for hop in reversed(tag.via))
    text = f"value derived from {origin} flows into {hit.descr}"
    if hit.via_call is not None:
        text += f" inside {hit.via_call}()"
    extra = len(hit.tags) - 1
    if extra > 0:
        text += f" (+{extra} more host read{'s' if extra > 1 else ''})"
    return text


def check(analysis: Analysis) -> List[Finding]:
    graph = analysis.callgraph()
    engine = TaintEngine(graph, SPEC, _sink_sites,
                         modules=analysis.modules)
    engine.solve()
    findings: List[Finding] = []
    for hit in engine.collect_hits():
        if not hit.module.in_scope("core", "pipeline", "memory"):
            continue
        findings.append(Finding(
            rule=hit.rule, path=hit.module.path,
            line=getattr(hit.node, "lineno", 1),
            column=getattr(hit.node, "col_offset", 0),
            message=_format_hit(hit),
            fixit=RULE_CATALOG[hit.rule].fixit))
    return findings
