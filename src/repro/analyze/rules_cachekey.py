"""SIM-K: cache-key completeness — what the sim path reads, the
digest must hash.

The sweep cache (PR 3) is content-addressed: :meth:`Cell.digest`
hashes a canonical JSON payload and a result is served for any later
cell with the same digest.  The failure mode is silent and severe: a
``Cell`` field that *influences simulation* but is *missing from the
payload* makes two different experiments collide on one cache entry —
stale results with no error anywhere.

``SIM-K001`` — a ``Cell`` field is read by code reachable from the
    simulation entry points (``simulate`` / ``run_cell`` /
    ``run_cells``) but does not appear in the digest payload.

Mechanics: the payload set is recovered from ``Cell.digest`` itself
(every ``self.X`` read inside it); reachability comes from the
name-resolved call graph (:mod:`repro.analyze.dataflow.callgraph`),
which over-approximates — a read is never missed, though display-only
helpers sharing a method name with sim-path code may be pulled in.
``Cell``-typed receivers are recognised by name (``cell``,
``*.cell``), by annotation (a parameter annotated ``Cell``), and by
``self`` inside ``Cell`` methods.

Nested config objects are covered wholesale: once ``machine`` and
``obs`` are in the payload, ``_canonical`` serialises every dataclass
field underneath them, so only *top-level* ``Cell`` fields need
tracking here.

Deliberately key-free fields (the human-readable ``label``) are
declared next to ``Cell`` in a ``SIM_LINT_CACHE_KEY_EXEMPT`` registry
— the exemption then lives in the reviewed source, beside the
docstring that justifies it, instead of in a lint baseline.

Scope: reads are reported in ``harness``/``core``/``pipeline``/
``memory`` modules; report/CLI code is display-only by construction
and reads ``label`` legitimately.  This rule needs the whole corpus to
be sound and is disabled in ``--changed-only`` partial runs.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.dataflow.callgraph import CallGraph, FunctionInfo, \
    own_nodes
from repro.analyze.dataflow.cfg import canonical_expr
from repro.analyze.engine import Analysis, SourceModule
from repro.analyze.findings import Finding

ENTRY_NAMES = ("simulate", "run_cell", "run_cells")
EXEMPT_REGISTRY = "SIM_LINT_CACHE_KEY_EXEMPT"
REPORTED_SCOPES = ("harness", "core", "pipeline", "memory")


def _cell_class(analysis: Analysis) -> Optional[Tuple[SourceModule,
                                                      ast.ClassDef]]:
    for module in analysis.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and node.name == "Cell":
                if any(isinstance(item, ast.FunctionDef)
                       and item.name == "digest" for item in node.body):
                    return module, node
    return None


def _cell_fields(cell: ast.ClassDef) -> List[str]:
    return [item.target.id for item in cell.body
            if isinstance(item, ast.AnnAssign)
            and isinstance(item.target, ast.Name)]


def _payload_fields(cell: ast.ClassDef) -> Set[str]:
    """Every ``self.X`` read inside ``Cell.digest``."""
    out: Set[str] = set()
    for item in cell.body:
        if isinstance(item, ast.FunctionDef) and item.name == "digest":
            for node in ast.walk(item):
                if isinstance(node, ast.Attribute) \
                        and isinstance(node.value, ast.Name) \
                        and node.value.id == "self":
                    out.add(node.attr)
    return out


def _exempt_fields(module: SourceModule) -> Set[str]:
    """Module-level ``SIM_LINT_CACHE_KEY_EXEMPT = frozenset({...})``."""
    out: Set[str] = set()
    for stmt in module.tree.body:
        if not isinstance(stmt, ast.Assign):
            continue
        if not any(isinstance(target, ast.Name)
                   and target.id == EXEMPT_REGISTRY
                   for target in stmt.targets):
            continue
        for node in ast.walk(stmt.value):
            if isinstance(node, ast.Constant) \
                    and isinstance(node.value, str):
                out.add(node.value)
    return out


def _annotated_cell_params(info: FunctionInfo) -> Set[str]:
    args = getattr(info.node, "args", None)
    if args is None:
        return set()
    out: Set[str] = set()
    params = list(args.posonlyargs) + list(args.args) \
        + list(args.kwonlyargs)
    for arg in params:
        if arg.annotation is None:
            continue
        for node in ast.walk(arg.annotation):
            if isinstance(node, ast.Name) and node.id == "Cell":
                out.add(arg.arg)
            elif isinstance(node, ast.Constant) and node.value == "Cell":
                out.add(arg.arg)
    return out


def _is_cell_receiver(base: ast.AST, info: FunctionInfo,
                      cell_params: Set[str]) -> bool:
    path = canonical_expr(base)
    if path is None:
        return False
    if path == "self":
        return info.class_name == "Cell"
    if path in cell_params:
        return True
    return path.split(".")[-1] == "cell"


def check(analysis: Analysis) -> List[Finding]:
    if analysis.partial:
        return []               # needs the whole corpus to be sound
    located = _cell_class(analysis)
    if located is None:
        return []
    cell_module, cell = located
    fields = set(_cell_fields(cell))
    payload = _payload_fields(cell)
    exempt = _exempt_fields(cell_module)
    unkeyed = fields - payload - exempt
    if not unkeyed:
        return []

    graph = analysis.callgraph()
    findings: List[Finding] = []
    for index in sorted(graph.reachable_from(ENTRY_NAMES)):
        info = graph.functions[index]
        if not info.module.in_scope(*REPORTED_SCOPES):
            continue
        if info.class_name == "Cell" and info.name == "digest":
            continue
        cell_params = _annotated_cell_params(info)
        for node in own_nodes(info.node):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            if node.attr not in unkeyed:
                continue
            if not _is_cell_receiver(node.value, info, cell_params):
                continue
            findings.append(Finding(
                rule="SIM-K001", path=info.module.path,
                line=getattr(node, "lineno", 1),
                column=getattr(node, "col_offset", 0),
                message=(f"Cell field '{node.attr}' is read on the "
                         f"simulation path ({info.qualname}) but is "
                         f"missing from the cache-key digest payload"),
                fixit=RULE_CATALOG["SIM-K001"].fixit))
    return findings
