"""SIM-P: search-port and cache-port booking discipline.

The LSQ model meters CAM search bandwidth through a
:class:`~repro.core.queues.PortCalendar`: callers are supposed to *ask*
(``available()`` / ``check_path()`` / ``free_ports()``) before they
*book* (``reserve()`` / ``reserve_path()`` / ``try_reserve*()``).  The
two ways call sites get this wrong:

``SIM-P001`` — an unconditional booking (``reserve`` / ``reserve_path``)
on another component with no admission check anywhere earlier in the
same function.  Overbooks a port slot, or books a slot a structural
hazard should have denied.

``SIM-P002`` — an admission-style call (``available``, ``check_path``,
``try_reserve*``) used as a bare expression statement, discarding the
verdict.  A denial goes unnoticed and the caller proceeds as if
admitted.  Where the slot is genuinely pre-admitted (a prior
``available()`` under the same cycle lock), suppress with a comment
saying so.

Bookings on ``self`` itself are exempt from P001: a component managing
its own calendar is the owner enforcing the discipline, not a client
bypassing it.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.engine import (Analysis, SourceModule, call_name,
                                  functions_of, receiver_is_bare_self)
from repro.analyze.findings import Finding

#: Unconditional bookings: must be dominated by an admission check.
BOOKING_CALLS = {"reserve", "reserve_path"}

#: Admission checks / conditional bookings whose verdict matters.
ADMISSION_CALLS = {"available", "check_path", "free_ports"}
ADMISSION_PREFIXES = ("try_reserve", "_admit")


def _finding(module: SourceModule, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(rule=rule, path=module.path,
                   line=getattr(node, "lineno", 1),
                   column=getattr(node, "col_offset", 0),
                   message=message, fixit=RULE_CATALOG[rule].fixit)


def _is_admission_name(name: str) -> bool:
    return name in ADMISSION_CALLS or name.startswith(ADMISSION_PREFIXES)


def _check_function(module: SourceModule, func: ast.AST) -> Iterator[Finding]:
    calls = [node for node in ast.walk(func) if isinstance(node, ast.Call)]
    admission_lines = [node.lineno for node in calls
                       if call_name(node) is not None
                       and _is_admission_name(call_name(node) or "")]
    for node in calls:
        name = call_name(node)
        if name in BOOKING_CALLS and not receiver_is_bare_self(node):
            dominated = any(line <= node.lineno for line in admission_lines)
            if not dominated:
                yield _finding(
                    module, node, "SIM-P001",
                    f"'{name}()' books a port with no admission check "
                    "(available/check_path/free_ports/try_reserve*) earlier "
                    "in this function; the booking can overbook a slot or "
                    "mask a structural hazard")


def _check_discarded_verdicts(module: SourceModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Expr)
                and isinstance(node.value, ast.Call)):
            continue
        name = call_name(node.value)
        if name is None or not _is_admission_name(name):
            continue
        yield _finding(
            module, node.value, "SIM-P002",
            f"the verdict of '{name}()' is discarded; a denied admission "
            "goes unnoticed and the caller proceeds as if admitted")


def check(analysis: Analysis) -> List[Finding]:
    findings: List[Finding] = []
    for module in analysis.modules:
        if not module.in_scope("core", "pipeline", "memory"):
            continue
        for func in functions_of(module.tree):
            if isinstance(func, ast.Module):
                continue
            findings.extend(_check_function(module, func))
        findings.extend(_check_discarded_verdicts(module))
    return findings
