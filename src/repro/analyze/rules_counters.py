"""SIM-C: cycle/stats accounting — counters must both count and report.

This is the one cross-module family: it keys on the ``SimStats`` class
(every numeric field declared there is a counter contract) and then
scans the *entire* corpus for writes (``stats.x += 1`` on event paths)
and reads (reports, derived metrics, analysis code).

``SIM-C001``: a counter with no read anywhere — the event is diligently
counted and then silently dropped on the floor.  Either a report was
never written or the metric was abandoned; both look identical to a
user trusting the stats output to be complete.

``SIM-C002``: a counter with reads but no write outside its declaration
— the report prints a permanently-zero value, which is worse than no
value because it asserts "this never happened".

Both findings anchor to the field's declaration line in the module that
defines ``SimStats``, so a suppression there documents the exemption
next to the contract itself.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.engine import Analysis, SourceModule
from repro.analyze.findings import Finding

#: Class whose numeric fields define the counter contract.
STATS_CLASS = "SimStats"

#: Annotations treated as counters.  Container fields (dicts of
#: histograms etc.) mutate through methods, which this pass cannot
#: attribute reliably, so they are out of scope.
_COUNTER_ANNOTATIONS = {"int", "float"}


def _finding(module: SourceModule, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(rule=rule, path=module.path,
                   line=getattr(node, "lineno", 1),
                   column=getattr(node, "col_offset", 0),
                   message=message, fixit=RULE_CATALOG[rule].fixit)


def _stats_fields(analysis: Analysis) -> Tuple[Optional[SourceModule],
                                               Dict[str, ast.AnnAssign]]:
    """The module defining ``SimStats`` and its counter declarations."""
    for module in analysis.modules:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef) and node.name == STATS_CLASS:
                fields: Dict[str, ast.AnnAssign] = {}
                for stmt in node.body:
                    if not isinstance(stmt, ast.AnnAssign):
                        continue
                    if not isinstance(stmt.target, ast.Name):
                        continue
                    annotation = stmt.annotation
                    if isinstance(annotation, ast.Name) and \
                            annotation.id in _COUNTER_ANNOTATIONS:
                        fields[stmt.target.id] = stmt
                return module, fields
    return None, {}


def _attribute_name(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def check(analysis: Analysis) -> List[Finding]:
    stats_module, fields = _stats_fields(analysis)
    if stats_module is None or not fields:
        return []

    writes: Dict[str, int] = {name: 0 for name in fields}
    reads: Dict[str, int] = {name: 0 for name in fields}

    for module in analysis.modules:
        for node in ast.walk(module.tree):
            if isinstance(node, ast.AugAssign):
                name = _attribute_name(node.target)
                if name in writes:
                    writes[name] += 1
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    name = _attribute_name(target)
                    if name in writes:
                        writes[name] += 1
            elif isinstance(node, ast.Attribute) and \
                    isinstance(node.ctx, ast.Load):
                name = node.attr
                if name in reads:
                    # Ignore the read half of `stats.x += 1`: an
                    # AugAssign target is both Load-adjacent and a
                    # write, but ast marks it Store, so plain Loads
                    # here are genuine consumption.
                    reads[name] += 1

    findings: List[Finding] = []
    for name in sorted(fields):
        declaration = fields[name]
        if reads[name] == 0:
            detail = ("incremented but never read by any report or "
                      "derived metric" if writes[name] else
                      "never incremented and never read")
            findings.append(_finding(
                stats_module, declaration, "SIM-C001",
                f"SimStats counter '{name}' is {detail}"))
        elif writes[name] == 0:
            findings.append(_finding(
                stats_module, declaration, "SIM-C002",
                f"SimStats counter '{name}' is reported but nothing ever "
                "increments it; the report shows a permanent zero"))
    return findings
