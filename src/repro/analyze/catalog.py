"""Catalog of every rule the analyzer ships (``repro lint --list-rules``)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True)
class RuleInfo:
    family: str
    title: str
    rationale: str
    fixit: str


RULE_CATALOG: Dict[str, RuleInfo] = {
    "SIM-D001": RuleInfo(
        family="determinism",
        title="iteration over an unordered set feeds an order-sensitive consumer",
        rationale="set iteration order depends on insertion history and hash "
                  "seeding; feeding it into a loop or list changes issue/"
                  "search decisions between runs",
        fixit="iterate sorted(the_set) or restructure around an ordered "
              "container",
    ),
    "SIM-D002": RuleInfo(
        family="determinism",
        title="dict .keys()/.values() view feeds an order-sensitive consumer",
        rationale="view iteration loses the key context needed to impose a "
                  "deterministic order; list()/tuple()/for over a view bakes "
                  "insertion order into results",
        fixit="iterate sorted(d) / sorted(d.items()) or index by key",
    ),
    "SIM-D003": RuleInfo(
        family="determinism",
        title="randomness not routed through a seeded random.Random",
        rationale="module-level random.* calls (and Random() without a seed) "
                  "draw from global, unseeded state: two runs of the same "
                  "configuration diverge",
        fixit="construct random.Random(seed) and thread it explicitly",
    ),
    "SIM-D004": RuleInfo(
        family="determinism",
        title="wall-clock or id()-derived ordering",
        rationale="time.* readings and CPython object ids vary run to run; "
                  "any ordering or control flow derived from them is "
                  "unreproducible",
        fixit="derive ordering from simulation state (seq numbers, cycles)",
    ),
    "SIM-M001": RuleInfo(
        family="state-mutation",
        title="stage writes an attribute of a component it does not own",
        rationale="a pipeline stage mutating another component's state "
                  "mid-cycle reproduces the ordering hazards the LSQ "
                  "techniques police in hardware; mutations must go through "
                  "the owning component's methods or a declared interface",
        fixit="add a method on the owning component, or declare the "
              "component in the interface registry "
              "(module-level SIM_LINT_INTERFACES)",
    ),
    "SIM-M002": RuleInfo(
        family="state-mutation",
        title="cross-component access to a private member",
        rationale="reaching into another component's _private state couples "
                  "stages to representation details and invites mid-cycle "
                  "mutation",
        fixit="expose the needed query as a public method on the component",
    ),
    "SIM-C001": RuleInfo(
        family="stats-accounting",
        title="SimStats counter incremented but never reported",
        rationale="a counter that no report, derived metric, or analysis "
                  "ever reads is dead weight at best and a silently "
                  "forgotten metric at worst",
        fixit="surface the counter in stats reporting (or delete it)",
    ),
    "SIM-C002": RuleInfo(
        family="stats-accounting",
        title="SimStats counter reported but never incremented",
        rationale="a reported counter that nothing increments reads as a "
                  "permanently-zero metric: either the instrumentation was "
                  "dropped or the report lies",
        fixit="add the missing increment on the event path (or delete the "
              "counter)",
    ),
    "SIM-H001": RuleInfo(
        family="hotpath",
        title="comprehension inside a @hotpath function",
        rationale="a list/set/dict comprehension in a per-cycle hot path "
                  "allocates a fresh container on every call — the "
                  "allocation churn the committed perf baseline "
                  "(BENCH_core.json) defends against",
        fixit="build into preallocated/incremental state with an explicit "
              "loop, or suppress with a comment defending the allocation",
    ),
    "SIM-H002": RuleInfo(
        family="hotpath",
        title="generator expression inside a @hotpath function",
        rationale="a generator expression in a per-cycle hot path "
                  "allocates a generator frame per call and adds a frame "
                  "switch per element",
        fixit="use an explicit loop, or suppress with a comment defending "
              "the allocation",
    ),
    "SIM-P001": RuleInfo(
        family="port-discipline",
        title="port booking without a dominating admission check",
        rationale="reserve()/reserve_path()/try_reserve*() on another "
                  "component without first consulting "
                  "available()/check_path()/free_ports() (or an _admit* "
                  "helper) can overbook a port slot or mask a structural "
                  "hazard",
        fixit="gate the booking on an admission check in the same function",
    ),
    "SIM-T001": RuleInfo(
        family="time-taint",
        title="host-index value flows into a SimStats counter",
        rationale="host-only index structures (_order/_granules/_live/"
                  "occupancy mirrors) exist to make the simulator fast, not "
                  "to describe the modeled hardware; charging a counter from "
                  "one prices the host shortcut instead of the paper's "
                  "machine, silently skewing every derived metric",
        fixit="recompute the charged quantity from model state (window "
              "contents, search itinerary), route it through a "
              "SIM_LINT_MODEL_VIEWS accessor, or suppress with a comment "
              "proving host view == model view at this site",
    ),
    "SIM-T002": RuleInfo(
        family="time-taint",
        title="host-index value flows into a modeled latency or port charge",
        rationale="a reserve()/charge*() argument or *_cycles/latency "
                  "attribute derived from a host index makes modeled timing "
                  "depend on host bookkeeping — the exact host/model "
                  "confusion the golden-digest parity suite guards against, "
                  "caught here before it runs",
        fixit="derive the charged cycles/slots from the modeled itinerary "
              "(backward_path()/forward_path()) or other model state",
    ),
    "SIM-K001": RuleInfo(
        family="cache-key",
        title="Cell field read on the simulation path but absent from the "
              "cache-key digest",
        rationale="the sweep cache serves any result whose digest matches; "
                  "a field that changes simulation behaviour but is not "
                  "hashed makes two different experiments collide on one "
                  "cache entry — stale results with no error",
        fixit="add the field to the digest payload in Cell.digest(), or "
              "declare it display-only in SIM_LINT_CACHE_KEY_EXEMPT next "
              "to the Cell class",
    ),
    "SIM-O001": RuleInfo(
        family="obs-purity",
        title="observer emission not dominated by an is-not-None guard",
        rationale="components hold obs = None when no observer is attached "
                  "— the common, full-speed path; an unguarded emission is "
                  "a latent AttributeError on every un-instrumented run",
        fixit="wrap the emission in 'if self.obs is not None:' (alias to a "
              "local first on hot paths: obs = self.obs)",
    ),
    "SIM-O002": RuleInfo(
        family="obs-purity",
        title="observer emission argument has a side-effect risk",
        rationale="emission arguments are evaluated even when the event is "
                  "dropped; a side-effecting argument makes model state "
                  "depend on whether tracing is attached, breaking "
                  "traced/untraced digest parity",
        fixit="precompute the value from pure reads, or move the side "
              "effect out of the emission's argument list",
    ),
    "SIM-P002": RuleInfo(
        family="port-discipline",
        title="admission verdict discarded",
        rationale="calling available()/check_path()/try_reserve*() as a bare "
                  "statement throws the verdict away: a denial goes "
                  "unnoticed and the caller proceeds as if admitted",
        fixit="branch on the returned verdict (or suppress with a comment "
              "explaining why the slot is pre-admitted)",
    ),
}
