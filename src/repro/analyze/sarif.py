"""SARIF 2.1.0 export for sim-lint findings.

SARIF (Static Analysis Results Interchange Format) is the OASIS
standard GitHub code scanning ingests: uploading ``repro lint --sarif``
output from CI annotates PRs with findings inline, rule metadata and
fix-it text included.  Only the stable core of the format is emitted —
one run, one driver, one result per finding, physical locations with
line/column regions — which every SARIF consumer understands.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.findings import Finding

SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")
TOOL_NAME = "sim-lint"
TOOL_URI = "docs/STATIC_ANALYSIS.md"


def _rule_entries(rule_ids: Sequence[str]) -> List[Dict[str, object]]:
    entries: List[Dict[str, object]] = []
    for rule_id in rule_ids:
        info = RULE_CATALOG[rule_id]
        entries.append({
            "id": rule_id,
            "name": rule_id.replace("-", ""),
            "shortDescription": {"text": info.title},
            "fullDescription": {"text": info.rationale},
            "help": {"text": f"fix: {info.fixit}"},
            "properties": {"family": info.family},
            "defaultConfiguration": {"level": "warning"},
        })
    return entries


def sarif_document(findings: Sequence[Finding]) -> Dict[str, object]:
    """The SARIF run document for one lint invocation."""
    rule_ids = sorted({finding.rule for finding in findings}
                      & set(RULE_CATALOG))
    rule_index = {rule_id: index for index, rule_id
                  in enumerate(rule_ids)}
    results: List[Dict[str, object]] = []
    for finding in findings:
        result: Dict[str, object] = {
            "ruleId": finding.rule,
            "level": "warning",
            "message": {"text": finding.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": finding.path,
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": max(finding.column + 1, 1),
                    },
                },
            }],
            "partialFingerprints": {
                "simLint/v1": finding.fingerprint(),
            },
        }
        if finding.rule in rule_index:
            result["ruleIndex"] = rule_index[finding.rule]
        results.append(result)
    return {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": TOOL_NAME,
                    "informationUri": TOOL_URI,
                    "rules": _rule_entries(rule_ids),
                },
            },
            "originalUriBaseIds": {
                "SRCROOT": {"description": {
                    "text": "repository root"}},
            },
            "results": results,
        }],
    }


def write_sarif(path: str, findings: Sequence[Finding]) -> None:
    document = sarif_document(findings)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
