"""SIM-H: allocation discipline inside ``@hotpath`` functions.

Functions decorated with :func:`repro.core.hotpath.hotpath` are the
per-cycle / per-search workhorses the committed perf baseline
(``BENCH_core.json``) defends.  A comprehension or generator expression
inside one allocates a fresh container (or frame) on every call — the
exact churn the indexed-LSQ overhaul removed — so the family flags:

``SIM-H001`` — a list/set/dict comprehension inside a hotpath function.

``SIM-H002`` — a generator expression inside a hotpath function.

Where a hotpath function legitimately returns a fresh container (e.g. a
search itinerary), build it with an explicit loop over preallocated
state, or suppress with a comment defending the allocation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.engine import Analysis, SourceModule, functions_of
from repro.analyze.findings import Finding


def _finding(module: SourceModule, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(rule=rule, path=module.path,
                   line=getattr(node, "lineno", 1),
                   column=getattr(node, "col_offset", 0),
                   message=message, fixit=RULE_CATALOG[rule].fixit)


def _is_hotpath(func: ast.AST) -> bool:
    """True when ``func`` carries a ``@hotpath`` decoration (bare name,
    attribute access, or a decorator-factory call of either)."""
    for decorator in getattr(func, "decorator_list", []):
        target = decorator.func if isinstance(decorator, ast.Call) \
            else decorator
        if isinstance(target, ast.Name) and target.id == "hotpath":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "hotpath":
            return True
    return False


def _check_function(module: SourceModule, func: ast.AST,
                    name: str) -> Iterator[Finding]:
    for node in ast.walk(func):
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp)):
            kind = {ast.ListComp: "list", ast.SetComp: "set",
                    ast.DictComp: "dict"}[type(node)]
            yield _finding(
                module, node, "SIM-H001",
                f"{kind} comprehension inside @hotpath function "
                f"{name!r} allocates a fresh container per call")
        elif isinstance(node, ast.GeneratorExp):
            yield _finding(
                module, node, "SIM-H002",
                f"generator expression inside @hotpath function "
                f"{name!r} allocates a generator frame per call")


def check(analysis: Analysis) -> List[Finding]:
    findings: List[Finding] = []
    for module in analysis.modules:
        for func in functions_of(module.tree):
            if isinstance(func, ast.Module) or not _is_hotpath(func):
                continue
            name = getattr(func, "name", "<function>")
            findings.extend(_check_function(module, func, name))
    return findings
