"""Command-line front end shared by ``repro lint`` and ``python -m
repro.analyze``."""

from __future__ import annotations

import argparse
import difflib
import json
import os
import sys
from typing import List, Optional, Sequence, Set

from repro.analyze.baseline import (load_baseline, split_by_baseline,
                                    stale_entries, write_baseline)
from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.engine import Analysis


def default_target() -> str:
    """The installed ``repro`` package tree (what CI lints)."""
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def build_parser(parser: Optional[argparse.ArgumentParser] = None,
                 ) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="Simulator-aware static analysis over repro sources.")
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: the repro package)")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="JSON baseline; findings recorded there do not fail the run")
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record current findings as the accepted baseline and exit 0")
    parser.add_argument(
        "--select", metavar="RULES",
        help="comma-separated rule ids or family prefixes to run "
             "(e.g. SIM-T001,SIM-O); unknown ids are an error")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON array instead of text")
    parser.add_argument(
        "--sarif", metavar="FILE",
        help="also write findings as a SARIF 2.1.0 document "
             "(GitHub code-scanning format)")
    parser.add_argument(
        "--partial", action="store_true",
        help="PATHS are a slice of the corpus, not all of it: skip "
             "whole-corpus rule families (SIM-C counter accounting, "
             "SIM-K cache-key completeness) whose verdicts need every "
             "module to be sound")
    parser.add_argument(
        "--no-fixit", action="store_true",
        help="omit fix-it hints from text output")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    parser.add_argument(
        "--explain", metavar="RULE",
        help="print one rule's catalog entry (title/why/fix) and exit")
    return parser


def _print_catalog() -> None:
    family = ""
    for rule_id in sorted(RULE_CATALOG):
        info = RULE_CATALOG[rule_id]
        if info.family != family:
            family = info.family
            print(f"[{family}]")
        print(f"  {rule_id}  {info.title}")
        print(f"           why: {info.rationale}")
        print(f"           fix: {info.fixit}")


def _unknown_rule_error(token: str, context: str) -> str:
    close = difflib.get_close_matches(token, RULE_CATALOG, n=1, cutoff=0.4)
    hint = f" (did you mean '{close[0]}'?)" if close else \
        " (see repro lint --list-rules)"
    return f"repro lint: unknown rule '{token}' in {context}{hint}"


def resolve_select(spec: str) -> Set[str]:
    """Expand a ``--select`` spec to concrete rule ids.

    Each comma-separated token must be an exact catalog id or a prefix
    matching at least one id (``SIM-T`` selects the family).  An
    unknown token raises ``ValueError`` — silently running zero rules
    is how a typo turns a gate into a no-op.
    """
    selected: Set[str] = set()
    for token in (part.strip() for part in spec.split(",")):
        if not token:
            continue
        if token in RULE_CATALOG:
            selected.add(token)
            continue
        matches = {rule_id for rule_id in RULE_CATALOG
                   if rule_id.startswith(token)}
        if not matches:
            raise ValueError(_unknown_rule_error(token, "--select"))
        selected |= matches
    if not selected:
        raise ValueError("repro lint: --select selected no rules")
    return selected


def run_lint(argv: Optional[Sequence[str]] = None,
             namespace: Optional[argparse.Namespace] = None) -> int:
    """Run the analyzer; returns the process exit code.

    0 = clean, 1 = findings, 2 = usage/configuration error (bad path,
    unknown rule id in ``--select`` or a suppression comment).
    """
    args = namespace if namespace is not None else \
        build_parser().parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        _print_catalog()
        return 0
    if getattr(args, "explain", None):
        rule_id = args.explain
        info = RULE_CATALOG.get(rule_id)
        if info is None:
            print(_unknown_rule_error(rule_id, "--explain"),
                  file=sys.stderr)
            return 2
        print(f"{rule_id} [{info.family}]")
        print(f"  {info.title}")
        print(f"  why: {info.rationale}")
        print(f"  fix: {info.fixit}")
        return 0

    select: Optional[Set[str]] = None
    if getattr(args, "select", None):
        try:
            select = resolve_select(args.select)
        except ValueError as error:
            print(error, file=sys.stderr)
            return 2

    paths: List[str] = list(args.paths) or [default_target()]
    for path in paths:
        if not os.path.exists(path):
            print(f"repro lint: no such path: {path}", file=sys.stderr)
            return 2

    analysis = Analysis.from_paths(
        paths, partial=bool(getattr(args, "partial", False)))

    bad_suppressions = analysis.unknown_suppressions()
    if bad_suppressions:
        for finding in bad_suppressions:
            print(_unknown_rule_error(
                finding.message.split("'")[1],
                f"suppression at {finding.path}:{finding.line}"),
                file=sys.stderr)
        return 2

    findings = analysis.run(select=select)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"wrote baseline with {len(findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    baselined_count = 0
    stale: List[str] = []
    if args.baseline:
        baseline = load_baseline(args.baseline)
        stale = stale_entries(findings, baseline)
        findings, baselined = split_by_baseline(findings, baseline)
        baselined_count = len(baselined)

    if getattr(args, "sarif", None):
        from repro.analyze.sarif import write_sarif
        write_sarif(args.sarif, findings)

    if args.as_json:
        print(json.dumps([{
            "rule": f.rule, "path": f.path, "line": f.line,
            "column": f.column, "message": f.message, "fixit": f.fixit,
        } for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format(show_fixit=not args.no_fixit))
        summary = f"{len(findings)} finding(s)"
        if baselined_count:
            summary += f" ({baselined_count} baselined, not shown)"
        if getattr(args, "partial", False):
            summary += " [partial: corpus-keyed families skipped]"
        print(summary)
        for key in stale:
            print(f"stale baseline entry (no longer triggered): {key}")
        if stale:
            print(f"{len(stale)} stale baseline entr"
                  f"{'y' if len(stale) == 1 else 'ies'}; rewrite with "
                  f"--write-baseline")
    return 1 if findings else 0
