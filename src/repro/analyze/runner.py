"""Command-line front end shared by ``repro lint`` and ``python -m
repro.analyze``."""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional, Sequence

from repro.analyze.baseline import (load_baseline, split_by_baseline,
                                    write_baseline)
from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.engine import analyze_paths


def default_target() -> str:
    """The installed ``repro`` package tree (what CI lints)."""
    import repro
    return os.path.dirname(os.path.abspath(repro.__file__))


def build_parser(parser: Optional[argparse.ArgumentParser] = None,
                 ) -> argparse.ArgumentParser:
    if parser is None:
        parser = argparse.ArgumentParser(
            prog="repro lint",
            description="Simulator-aware static analysis over repro sources.")
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="files or directories to analyze (default: the repro package)")
    parser.add_argument(
        "--baseline", metavar="FILE",
        help="JSON baseline; findings recorded there do not fail the run")
    parser.add_argument(
        "--write-baseline", metavar="FILE",
        help="record current findings as the accepted baseline and exit 0")
    parser.add_argument(
        "--json", action="store_true", dest="as_json",
        help="emit findings as a JSON array instead of text")
    parser.add_argument(
        "--no-fixit", action="store_true",
        help="omit fix-it hints from text output")
    parser.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit")
    return parser


def _print_catalog() -> None:
    family = ""
    for rule_id in sorted(RULE_CATALOG):
        info = RULE_CATALOG[rule_id]
        if info.family != family:
            family = info.family
            print(f"[{family}]")
        print(f"  {rule_id}  {info.title}")
        print(f"           why: {info.rationale}")
        print(f"           fix: {info.fixit}")


def run_lint(argv: Optional[Sequence[str]] = None,
             namespace: Optional[argparse.Namespace] = None) -> int:
    """Run the analyzer; returns the process exit code (0 = clean)."""
    args = namespace if namespace is not None else \
        build_parser().parse_args(list(argv) if argv is not None else None)

    if args.list_rules:
        _print_catalog()
        return 0

    paths: List[str] = list(args.paths) or [default_target()]
    for path in paths:
        if not os.path.exists(path):
            print(f"repro lint: no such path: {path}", file=sys.stderr)
            return 2

    findings = analyze_paths(paths)

    if args.write_baseline:
        write_baseline(args.write_baseline, findings)
        print(f"wrote baseline with {len(findings)} finding(s) to "
              f"{args.write_baseline}")
        return 0

    baselined_count = 0
    if args.baseline:
        baseline = load_baseline(args.baseline)
        findings, baselined = split_by_baseline(findings, baseline)
        baselined_count = len(baselined)

    if args.as_json:
        print(json.dumps([{
            "rule": f.rule, "path": f.path, "line": f.line,
            "column": f.column, "message": f.message, "fixit": f.fixit,
        } for f in findings], indent=2))
    else:
        for finding in findings:
            print(finding.format(show_fixit=not args.no_fixit))
        summary = f"{len(findings)} finding(s)"
        if baselined_count:
            summary += f" ({baselined_count} baselined, not shown)"
        print(summary)
    return 1 if findings else 0
