"""SIM-M: state-mutation discipline for pipeline stages and components.

The paper's whole subject is the hazards that arise when multiple agents
touch shared load/store state in the same cycle.  The software analogue:
a stage method reaching *through* a component reference and writing its
attributes directly (``self.lsq.head = ...``) instead of calling a
method the owning component exposes.  Such writes bypass the owner's
invariants, are invisible to the validation layer, and make the
cross-cycle mutation order an accident of call sites.

``SIM-M001`` flags ``self.<component>.<attr> = ...`` (and ``+=`` etc.)
outside ``__init__`` unless the component is in the interface registry:
the built-in :data:`MUTABLE_INTERFACES` (stats and tracing are
write-from-anywhere by design) plus any names a module declares in a
module-level ``SIM_LINT_INTERFACES = {"..."}`` set.

``SIM-M002`` flags any touch (read *or* write) of ``self.<component>.
_private`` — representation details stay inside the owning class.

Construction-time wiring in ``__init__`` is exempt from M001: handing a
sub-component its collaborators is ownership transfer, not a mid-cycle
mutation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

from repro.analyze.catalog import RULE_CATALOG
from repro.analyze.engine import Analysis, SourceModule
from repro.analyze.findings import Finding

#: Components any stage may write without declaring an interface:
#: statistics counters and tracers exist to be poked from everywhere.
MUTABLE_INTERFACES = {"stats", "tracer", "trace"}

#: Name of the module-level registry a module can declare to extend
#: :data:`MUTABLE_INTERFACES` for its own code.
REGISTRY_NAME = "SIM_LINT_INTERFACES"


def _finding(module: SourceModule, node: ast.AST, rule: str,
             message: str) -> Finding:
    return Finding(rule=rule, path=module.path,
                   line=getattr(node, "lineno", 1),
                   column=getattr(node, "col_offset", 0),
                   message=message, fixit=RULE_CATALOG[rule].fixit)


def _declared_interfaces(module: SourceModule) -> Set[str]:
    """Names in a module-level ``SIM_LINT_INTERFACES = {...}`` literal."""
    declared: Set[str] = set()
    for stmt in module.tree.body:
        if not (isinstance(stmt, ast.Assign) and len(stmt.targets) == 1):
            continue
        target = stmt.targets[0]
        if not (isinstance(target, ast.Name) and target.id == REGISTRY_NAME):
            continue
        value = stmt.value
        if isinstance(value, ast.Call):        # frozenset({...})
            value = value.args[0] if value.args else value
        if isinstance(value, (ast.Set, ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and \
                        isinstance(element.value, str):
                    declared.add(element.value)
    return declared


def _component_of(node: ast.Attribute) -> Optional[str]:
    """``self.<comp>.<attr>`` -> ``comp``; anything else -> None."""
    value = node.value
    while isinstance(value, ast.Attribute):
        inner = value.value
        if isinstance(inner, ast.Name) and inner.id == "self":
            return value.attr
        value = inner
    return None


def _enclosing_function_name(module: SourceModule,
                             node: ast.AST) -> Optional[str]:
    for ancestor in module.parent_chain(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor.name
    return None


def _check_foreign_writes(module: SourceModule,
                          registry: Set[str]) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not (isinstance(node, ast.Attribute)
                and isinstance(node.ctx, ast.Store)):
            continue
        component = _component_of(node)
        if component is None or component in registry:
            continue
        if _enclosing_function_name(module, node) == "__init__":
            continue
        yield _finding(
            module, node, "SIM-M001",
            f"writes '{node.attr}' on 'self.{component}', a component this "
            "stage does not own; mutations must go through the owner's "
            "methods or a declared interface")


def _check_private_access(module: SourceModule) -> Iterator[Finding]:
    for node in ast.walk(module.tree):
        if not isinstance(node, ast.Attribute):
            continue
        name = node.attr
        if not name.startswith("_") or name.startswith("__"):
            continue
        component = _component_of(node)
        if component is None:
            continue
        verb = "writes" if isinstance(node.ctx, ast.Store) else "reads"
        yield _finding(
            module, node, "SIM-M002",
            f"{verb} private member '{name}' of 'self.{component}'; expose "
            "a public method on the component instead")


def check(analysis: Analysis) -> List[Finding]:
    findings: List[Finding] = []
    for module in analysis.modules:
        if not module.in_scope("core", "pipeline"):
            continue
        registry = MUTABLE_INTERFACES | _declared_interfaces(module)
        findings.extend(_check_foreign_writes(module, registry))
        findings.extend(_check_private_access(module))
    return findings
