"""``python -m repro.analyze`` — same interface as ``repro lint``."""

import sys

from repro.analyze.runner import run_lint

if __name__ == "__main__":
    sys.exit(run_lint())
