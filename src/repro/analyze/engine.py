"""Analysis driver: source loading, parent maps, suppressions, rules.

The engine parses every ``*.py`` under the requested paths once, builds
an AST parent map per module (rules need to ask "what consumes this
node?"), extracts ``# sim-lint: ignore[...]`` suppressions from the
source text, and hands the whole corpus to each rule — cross-module
rules (the SIM-C counter accounting) see every module at once.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analyze.findings import Finding

_SUPPRESS_RE = re.compile(
    r"#\s*sim-lint:\s*ignore(?:\[([A-Za-z0-9_,\s\-]+)\])?")


@dataclass
class SourceModule:
    """One parsed source file plus the lookup tables rules need."""

    path: str                   # display path (posix separators)
    text: str
    tree: ast.Module
    #: line -> suppressed rule ids; empty set means "all rules".
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: standalone-comment suppression lines (apply to the next line).
    comment_only_lines: Set[int] = field(default_factory=set)
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str, display_path: str) -> "SourceModule":
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        tree = ast.parse(text, filename=display_path)
        module = cls(path=display_path, text=text, tree=tree)
        module._index()
        return module

    def _index(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = match.group(1)
            ids = (set(part.strip() for part in rules.split(",") if part.strip())
                   if rules else set())
            self.suppressions[lineno] = ids
            if line.lstrip().startswith("#"):
                self.comment_only_lines.add(lineno)
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    # -- queries rules use --------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def parent_chain(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def in_scope(self, *segments: str) -> bool:
        """True when the module path contains any of ``segments`` as a
        path component (e.g. ``in_scope("core", "pipeline")``)."""
        parts = self.path.replace("\\", "/").split("/")
        return any(segment in parts for segment in segments)

    def suppressed(self, finding: Finding) -> bool:
        for line in (finding.line, finding.line - 1):
            ids = self.suppressions.get(line)
            if ids is None:
                continue
            if line == finding.line - 1 and line not in self.comment_only_lines:
                continue  # trailing comment on the previous line of code
            if not ids or finding.rule in ids:
                return True
        return False


class Analysis:
    """The full corpus under analysis plus rule orchestration.

    ``partial=True`` declares that ``modules`` is a *slice* of the real
    corpus (``--changed-only``).  Whole-program rule families whose
    soundness depends on seeing everything — counter accounting
    (SIM-C) and cache-key completeness (SIM-K) — are skipped in
    partial runs rather than reporting false positives on the slice;
    flow rules (SIM-T) still run but can only see flows within the
    slice.
    """

    def __init__(self, modules: Sequence[SourceModule],
                 partial: bool = False) -> None:
        self.modules = list(modules)
        self.partial = partial
        self._callgraph: Optional[object] = None

    def callgraph(self) -> "CallGraph":  # noqa: F821 (lazy import below)
        """The shared name-resolved call graph (built once per run)."""
        if self._callgraph is None:
            # Imported lazily: the dataflow package imports SourceModule
            # from this module.
            from repro.analyze.dataflow.callgraph import CallGraph
            self._callgraph = CallGraph(self.modules)
        return self._callgraph  # type: ignore[return-value]

    @classmethod
    def from_paths(cls, paths: Sequence[str],
                   root: Optional[str] = None,
                   partial: bool = False) -> "Analysis":
        root = root or os.getcwd()
        files: List[str] = []
        for path in paths:
            if os.path.isfile(path):
                files.append(path)
                continue
            for directory, __, names in sorted(os.walk(path)):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(directory, name))
        modules = []
        for file_path in sorted(set(files)):
            display = os.path.relpath(file_path, start=root)
            display = display.replace(os.sep, "/")
            if display.startswith("../"):
                display = file_path.replace(os.sep, "/")
            modules.append(SourceModule.load(file_path, display))
        return cls(modules, partial=partial)

    def run(self, select: Optional[Set[str]] = None) -> List[Finding]:
        """Run every rule family; return unsuppressed findings sorted.

        ``select`` restricts output to the given rule ids (validated by
        the runner against the catalog before it reaches here).
        """
        from repro.analyze import (rules_cachekey, rules_counters,
                                   rules_determinism, rules_hotpath,
                                   rules_mutation, rules_obs, rules_ports,
                                   rules_taint)
        corpus_keyed = {rules_counters, rules_cachekey}
        findings: List[Finding] = []
        for rule_module in (rules_determinism, rules_mutation,
                            rules_counters, rules_ports, rules_hotpath,
                            rules_taint, rules_cachekey, rules_obs):
            if self.partial and rule_module in corpus_keyed:
                continue
            findings.extend(rule_module.check(self))
        by_path = {module.path: module for module in self.modules}
        kept = [finding for finding in findings
                if not by_path[finding.path].suppressed(finding)]
        if select is not None:
            kept = [finding for finding in kept if finding.rule in select]
        kept.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return kept

    def unknown_suppressions(self) -> List[Finding]:
        """Suppression comments naming rule ids the catalog does not
        know — each one is a typo silently disabling nothing."""
        from repro.analyze.catalog import RULE_CATALOG
        out: List[Finding] = []
        for module in self.modules:
            for line in sorted(module.suppressions):
                for rule in sorted(module.suppressions[line]):
                    if rule not in RULE_CATALOG:
                        out.append(Finding(
                            rule="SIM-LINT", path=module.path, line=line,
                            column=0,
                            message=(f"suppression names unknown rule "
                                     f"'{rule}'"),
                            fixit=_nearest_rule_hint(rule)))
        return out


def _nearest_rule_hint(rule: str) -> str:
    """A did-you-mean for an unknown rule id, by edit similarity."""
    from repro.analyze.catalog import RULE_CATALOG
    import difflib
    close = difflib.get_close_matches(rule, RULE_CATALOG, n=1, cutoff=0.4)
    if close:
        return f"did you mean '{close[0]}'?"
    return "see repro lint --list-rules for valid ids"


def analyze_paths(paths: Sequence[str],
                  root: Optional[str] = None,
                  select: Optional[Set[str]] = None,
                  partial: bool = False) -> List[Finding]:
    """Convenience wrapper: parse ``paths`` and run every rule."""
    return Analysis.from_paths(paths, root=root, partial=partial).run(
        select=select)


# -- shared AST helpers ----------------------------------------------------

def call_name(node: ast.AST) -> Optional[str]:
    """The trailing name of a call target: ``a.b.c()`` -> ``"c"``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def receiver_is_bare_self(node: ast.Call) -> bool:
    """True for ``self.method(...)`` (component-internal calls)."""
    func = node.func
    return (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self")


def functions_of(tree: ast.Module) -> List[ast.AST]:
    """Every function/method definition in the module (plus the module
    itself, so top-level code is analysed under the same rules)."""
    out: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(node)
    return out


def local_statements(func: ast.AST) -> List[ast.stmt]:
    """Statements belonging to ``func`` but not to nested functions."""
    out: List[ast.stmt] = []
    body = getattr(func, "body", [])
    stack = list(body)
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(grand for grand in ast.walk(child)
                             if isinstance(grand, ast.stmt))
    return out
