"""Analysis driver: source loading, parent maps, suppressions, rules.

The engine parses every ``*.py`` under the requested paths once, builds
an AST parent map per module (rules need to ask "what consumes this
node?"), extracts ``# sim-lint: ignore[...]`` suppressions from the
source text, and hands the whole corpus to each rule — cross-module
rules (the SIM-C counter accounting) see every module at once.
"""

from __future__ import annotations

import ast
import os
import re
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.analyze.findings import Finding

_SUPPRESS_RE = re.compile(
    r"#\s*sim-lint:\s*ignore(?:\[([A-Za-z0-9_,\s\-]+)\])?")


@dataclass
class SourceModule:
    """One parsed source file plus the lookup tables rules need."""

    path: str                   # display path (posix separators)
    text: str
    tree: ast.Module
    #: line -> suppressed rule ids; empty set means "all rules".
    suppressions: Dict[int, Set[str]] = field(default_factory=dict)
    #: standalone-comment suppression lines (apply to the next line).
    comment_only_lines: Set[int] = field(default_factory=set)
    parents: Dict[ast.AST, ast.AST] = field(default_factory=dict)

    @classmethod
    def load(cls, path: str, display_path: str) -> "SourceModule":
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
        tree = ast.parse(text, filename=display_path)
        module = cls(path=display_path, text=text, tree=tree)
        module._index()
        return module

    def _index(self) -> None:
        for lineno, line in enumerate(self.text.splitlines(), start=1):
            match = _SUPPRESS_RE.search(line)
            if not match:
                continue
            rules = match.group(1)
            ids = (set(part.strip() for part in rules.split(",") if part.strip())
                   if rules else set())
            self.suppressions[lineno] = ids
            if line.lstrip().startswith("#"):
                self.comment_only_lines.add(lineno)
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self.parents[child] = parent

    # -- queries rules use --------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self.parents.get(node)

    def parent_chain(self, node: ast.AST) -> Iterable[ast.AST]:
        current = self.parents.get(node)
        while current is not None:
            yield current
            current = self.parents.get(current)

    def in_scope(self, *segments: str) -> bool:
        """True when the module path contains any of ``segments`` as a
        path component (e.g. ``in_scope("core", "pipeline")``)."""
        parts = self.path.replace("\\", "/").split("/")
        return any(segment in parts for segment in segments)

    def suppressed(self, finding: Finding) -> bool:
        for line in (finding.line, finding.line - 1):
            ids = self.suppressions.get(line)
            if ids is None:
                continue
            if line == finding.line - 1 and line not in self.comment_only_lines:
                continue  # trailing comment on the previous line of code
            if not ids or finding.rule in ids:
                return True
        return False


class Analysis:
    """The full corpus under analysis plus rule orchestration."""

    def __init__(self, modules: Sequence[SourceModule]) -> None:
        self.modules = list(modules)

    @classmethod
    def from_paths(cls, paths: Sequence[str],
                   root: Optional[str] = None) -> "Analysis":
        root = root or os.getcwd()
        files: List[str] = []
        for path in paths:
            if os.path.isfile(path):
                files.append(path)
                continue
            for directory, __, names in sorted(os.walk(path)):
                for name in sorted(names):
                    if name.endswith(".py"):
                        files.append(os.path.join(directory, name))
        modules = []
        for file_path in sorted(set(files)):
            display = os.path.relpath(file_path, start=root)
            display = display.replace(os.sep, "/")
            if display.startswith("../"):
                display = file_path.replace(os.sep, "/")
            modules.append(SourceModule.load(file_path, display))
        return cls(modules)

    def run(self) -> List[Finding]:
        """Run every rule family; return unsuppressed findings sorted."""
        from repro.analyze import (rules_counters, rules_determinism,
                                   rules_hotpath, rules_mutation,
                                   rules_ports)
        findings: List[Finding] = []
        for rule_module in (rules_determinism, rules_mutation,
                            rules_counters, rules_ports, rules_hotpath):
            findings.extend(rule_module.check(self))
        by_path = {module.path: module for module in self.modules}
        kept = [finding for finding in findings
                if not by_path[finding.path].suppressed(finding)]
        kept.sort(key=lambda f: (f.path, f.line, f.column, f.rule))
        return kept


def analyze_paths(paths: Sequence[str],
                  root: Optional[str] = None) -> List[Finding]:
    """Convenience wrapper: parse ``paths`` and run every rule."""
    return Analysis.from_paths(paths, root=root).run()


# -- shared AST helpers ----------------------------------------------------

def call_name(node: ast.AST) -> Optional[str]:
    """The trailing name of a call target: ``a.b.c()`` -> ``"c"``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def receiver_is_bare_self(node: ast.Call) -> bool:
    """True for ``self.method(...)`` (component-internal calls)."""
    func = node.func
    return (isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "self")


def functions_of(tree: ast.Module) -> List[ast.AST]:
    """Every function/method definition in the module (plus the module
    itself, so top-level code is analysed under the same rules)."""
    out: List[ast.AST] = [tree]
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            out.append(node)
    return out


def local_statements(func: ast.AST) -> List[ast.stmt]:
    """Statements belonging to ``func`` but not to nested functions."""
    out: List[ast.stmt] = []
    body = getattr(func, "body", [])
    stack = list(body)
    while stack:
        stmt = stack.pop()
        out.append(stmt)
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef,
                                  ast.ClassDef)):
                continue
            if isinstance(child, ast.stmt):
                stack.append(child)
            else:
                stack.extend(grand for grand in ast.walk(child)
                             if isinstance(grand, ast.stmt))
    return out
