"""JSON baseline: adopt the analyzer on a tree with pre-existing debt.

A baseline is a JSON file mapping finding fingerprints
(``rule::path::line``) to their messages.  ``repro lint --baseline
file.json`` subtracts baselined findings from the report, so only *new*
findings fail the build; ``--write-baseline file.json`` records the
current findings as accepted debt.  The shipped tree carries no
baseline — it lints clean — but downstream forks extending the
simulator get an incremental adoption path.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence, Tuple

from repro.analyze.findings import Finding


def write_baseline(path: str, findings: Sequence[Finding]) -> None:
    payload: Dict[str, str] = {
        finding.fingerprint(): finding.message for finding in findings}
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_baseline(path: str) -> Dict[str, str]:
    with open(path, "r", encoding="utf-8") as handle:
        data = json.load(handle)
    if not isinstance(data, dict):
        raise ValueError(f"baseline {path!r} is not a JSON object")
    return {str(key): str(value) for key, value in data.items()}


def split_by_baseline(findings: Sequence[Finding],
                      baseline: Dict[str, str],
                      ) -> Tuple[List[Finding], List[Finding]]:
    """Partition into (new, baselined) against ``baseline``."""
    new: List[Finding] = []
    old: List[Finding] = []
    for finding in findings:
        (old if finding.fingerprint() in baseline else new).append(finding)
    return new, old


def stale_entries(findings: Sequence[Finding],
                  baseline: Dict[str, str]) -> List[str]:
    """Baseline fingerprints that no current finding matches.

    Stale entries are accepted debt that was since paid off (or code
    that moved, invalidating the ``rule::path::line`` key) — either
    way the baseline no longer reflects reality and should be
    rewritten, lest it silently swallow a *future* finding landing on
    the same line.
    """
    current = {finding.fingerprint() for finding in findings}
    return sorted(key for key in baseline if key not in current)
