"""The :class:`Finding` record every rule emits."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Finding:
    """One rule hit, anchored to a file:line:column."""

    rule: str       # e.g. "SIM-D002"
    path: str       # path as given to the analyzer (posix separators)
    line: int       # 1-based
    column: int     # 0-based, as in the ast module
    message: str
    fixit: str = ""

    def format(self, show_fixit: bool = True) -> str:
        text = f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"
        if show_fixit and self.fixit:
            text += f"\n    fix: {self.fixit}"
        return text

    def fingerprint(self) -> str:
        """Stable identity used by the baseline mechanism."""
        return f"{self.rule}::{self.path}::{self.line}"
