"""Simulator-aware static analysis (``repro lint``).

Dynamic validation (:mod:`repro.validate`) catches ordering bugs *while
a simulation runs*; this package catches the same hazard classes before
any cycle is simulated, by walking the ASTs of ``src/repro`` with rules
that know what a cycle-accurate simulator must and must not do.  QED and
its descendants apply the same economics to memory-consistency checking:
cheap static structure checks first, expensive dynamic ones second.

Rule families
-------------

``SIM-D*`` **determinism** — unordered ``set``/``dict.keys()``/
    ``.values()`` iteration feeding order-sensitive consumers, unseeded
    ``random`` usage, and wall-clock/``id()``-derived ordering.  Any of
    these silently breaks run-to-run reproducibility of issue/search
    decisions.
``SIM-M*`` **state-mutation discipline** — a pipeline stage or LSQ
    component writing attributes (or touching privates) of a component
    it does not own, outside the declared interface registry.  This is
    the software analogue of the mid-cycle ordering hazards the paper's
    LSQ techniques police in hardware.
``SIM-C*`` **cycle/stats accounting** — :class:`~repro.stats.counters.
    SimStats` counters that are incremented but never reported, or
    reported but never incremented.
``SIM-P*`` **port discipline** — LSQ search-port/cache-port bookings
    without a dominating admission check, and admission verdicts whose
    result is discarded.

Suppressions
------------

Append ``# sim-lint: ignore[SIM-D002]`` to the offending line (or put
the comment on its own line directly above) to acknowledge a finding;
``# sim-lint: ignore`` suppresses every rule on that line.  A JSON
baseline file (``--baseline`` / ``--write-baseline``) additionally lets
a tree adopt the analyzer incrementally: only findings *not* in the
baseline fail the build.

Entry points: ``repro lint`` (CLI subcommand), ``python -m
repro.analyze``, and ``scripts/lint.py`` (which also runs the mypy
strict gate).  See ``docs/STATIC_ANALYSIS.md`` for the rule catalog.
"""

from repro.analyze.catalog import RULE_CATALOG, RuleInfo
from repro.analyze.engine import Analysis, SourceModule, analyze_paths
from repro.analyze.findings import Finding

__all__ = [
    "Analysis",
    "Finding",
    "RULE_CATALOG",
    "RuleInfo",
    "SourceModule",
    "analyze_paths",
]
