"""Multi-context interleaving onto the single-stream pipeline.

The simulator consumes one dynamic instruction stream, so "multiple
contexts" are realised the way an SMT front end would serialise them:
per-context streams are merged into one trace under a chosen policy.
Round-robin alternates contexts deterministically; random draws the
next context uniformly (seed-driven), which is what lets a litmus
battery explore distinct interleavings — and therefore distinct
outcomes — across seeds.
"""

from __future__ import annotations

import random
from typing import List, Sequence, TypeVar

#: Components any stage may touch directly (sim-lint SIM-M registry).
SIM_LINT_INTERFACES = frozenset({"obs"})

#: Supported interleaving policies.
POLICIES = ("round_robin", "random")

T = TypeVar("T")


def interleave_streams(streams: Sequence[Sequence[T]], policy: str,
                       rng: random.Random) -> List[T]:
    """Merge per-context streams into one, preserving per-context order.

    ``round_robin`` takes one element from each non-exhausted context in
    turn; ``random`` picks a non-exhausted context uniformly at each
    step (so every interleaving consistent with program order has
    non-zero probability).
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown interleave policy {policy!r}; "
                         f"choose from {', '.join(POLICIES)}")
    cursors = [0] * len(streams)
    remaining = sum(len(stream) for stream in streams)
    merged: List[T] = []
    while remaining:
        live = [index for index, stream in enumerate(streams)
                if cursors[index] < len(stream)]
        if policy == "round_robin":
            for index in live:
                merged.append(streams[index][cursors[index]])
                cursors[index] += 1
                remaining -= 1
        else:
            index = live[rng.randrange(len(live))]
            merged.append(streams[index][cursors[index]])
            cursors[index] += 1
            remaining -= 1
    return merged
