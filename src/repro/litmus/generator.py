"""Litmus workload generator: shapes -> deterministic traces + metadata.

A :class:`LitmusSpec` names a shape and its parameters (context count,
fencing, interleaving policy, padding, address overlap).  The generator
instantiates the shape many times — each *instance* gets **fresh
addresses**, so its variables demonstrably start at 0 — serialises the
per-context streams through :mod:`repro.litmus.interleave`, and returns
the trace together with a :class:`LitmusMeta` mapping every litmus load
and store back to its trace index.  The outcome checker
(:mod:`repro.litmus.checker`) consumes that map.

Everything is deterministic in ``(spec, seed)``; per-context PCs are
static across instances, as loop bodies would be.  Specs round-trip
through benchmark-style names::

    litmus/<shape>[+fence][@<contexts>][:rr][:pad<K>][:spread]

for example ``litmus/mp+fence@4:rr`` — which is what makes litmus cells
first-class benchmarks for the CLI and the cached sweep engine.
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import List, Tuple

from repro.litmus.interleave import POLICIES, interleave_streams
from repro.litmus.shapes import FENCE, LD, ST, SHAPES, LitmusShape
from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace

#: Components any stage may touch directly (sim-lint SIM-M registry).
SIM_LINT_INTERFACES = frozenset({"obs"})

#: Code/data regions disjoint from the synthetic generator's layout.
_LITMUS_CODE_BASE = 0x0080_0000
_LITMUS_DATA_BASE = 0x5000_0000
#: Address distance between instances (fresh variables every instance).
_INSTANCE_STRIDE = 256
#: PC span reserved per context.
_CONTEXT_PC_SPAN = 0x400
#: Architectural-register window per context (addr, data, scratch, up to
#: four load destinations).
_REGS_PER_CONTEXT = 7

_MAX_PADDING = 8

_NAME_RE = re.compile(
    r"^litmus/(?P<shape>[a-z]+)"
    r"(?P<fence>\+fence)?"
    r"(?:@(?P<contexts>\d+))?"
    r"(?P<mods>(?::(?:rr|pad\d+|spread))*)$")


def fnv1a(text: str) -> int:
    """Deterministic 32-bit string hash (Python's ``hash`` is salted)."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 0x01000193) & 0xFFFFFFFF
    return value


@dataclass(frozen=True)
class LitmusSpec:
    """One litmus workload configuration."""

    shape: str = "mp"
    contexts: int = 0            # 0 = the shape's default
    fenced: bool = False
    interleave: str = "random"   # "round_robin" | "random"
    padding: int = 0             # filler ALU ops before each litmus op
    shared_line: bool = True     # variables packed into one cache line

    def __post_init__(self) -> None:
        if self.shape not in SHAPES:
            raise ValueError(f"unknown litmus shape {self.shape!r}; "
                             f"choose from {', '.join(SHAPES)}")
        if self.interleave not in POLICIES:
            raise ValueError(f"unknown interleave policy "
                             f"{self.interleave!r}; choose from "
                             f"{', '.join(POLICIES)}")
        if not 0 <= self.padding <= _MAX_PADDING:
            raise ValueError(f"padding must be in [0, {_MAX_PADDING}]")
        # Validates the context count (raises on bad values).
        SHAPES[self.shape].resolve_contexts(self.contexts)

    @property
    def shape_def(self) -> LitmusShape:
        return SHAPES[self.shape]

    @property
    def resolved_contexts(self) -> int:
        return self.shape_def.resolve_contexts(self.contexts)

    @property
    def name(self) -> str:
        """Canonical ``litmus/...`` benchmark name (round-trips through
        :func:`parse_litmus_name`; defaults are omitted)."""
        parts = [f"litmus/{self.shape}"]
        if self.fenced:
            parts.append("+fence")
        if self.contexts:
            parts.append(f"@{self.contexts}")
        if self.interleave == "round_robin":
            parts.append(":rr")
        if self.padding:
            parts.append(f":pad{self.padding}")
        if not self.shared_line:
            parts.append(":spread")
        return "".join(parts)


def parse_litmus_name(name: str) -> LitmusSpec:
    """Parse a ``litmus/...`` benchmark name into a :class:`LitmusSpec`."""
    match = _NAME_RE.match(name)
    if match is None:
        raise ValueError(
            f"bad litmus name {name!r}; expected "
            f"litmus/<shape>[+fence][@<contexts>][:rr][:pad<K>][:spread] "
            f"with shape in {{{', '.join(SHAPES)}}}")
    mods = [mod for mod in (match.group("mods") or "").split(":") if mod]
    padding = 0
    interleave = "random"
    shared_line = True
    for mod in mods:
        if mod == "rr":
            interleave = "round_robin"
        elif mod == "spread":
            shared_line = False
        else:
            padding = int(mod[3:])
    return LitmusSpec(
        shape=match.group("shape"),
        contexts=int(match.group("contexts") or 0),
        fenced=match.group("fence") is not None,
        interleave=interleave,
        padding=padding,
        shared_line=shared_line)


@dataclass(frozen=True)
class LitmusInstance:
    """Trace locations of one shape instance."""

    index: int
    loads: Tuple[int, ...]    # load role -> trace index
    stores: Tuple[int, ...]   # variable -> trace index of its writer


@dataclass(frozen=True)
class LitmusMeta:
    """Everything the outcome checker needs to read a run back."""

    name: str
    shape: str
    contexts: int
    fenced: bool
    interleave: str
    role_labels: Tuple[str, ...]
    load_vars: Tuple[int, ...]   # load role -> variable it reads
    n_vars: int
    instances: Tuple[LitmusInstance, ...]


#: A generated instruction tagged with its litmus role: ``(instruction,
#: load role or -1, stored variable or -1)``.
_Tagged = Tuple[Instruction, int, int]


def _context_stream(spec: LitmusSpec, ctx: int,
                    addresses: List[int], first_role: int) -> List[_Tagged]:
    """One context's instructions for one instance, in program order."""
    program = spec.shape_def.programs(spec.resolved_contexts,
                                      spec.fenced)[ctx]
    base_pc = _LITMUS_CODE_BASE + ctx * _CONTEXT_PC_SPAN
    reg_base = 1 + ctx * _REGS_PER_CONTEXT
    addr_reg, data_reg, scratch = reg_base, reg_base + 1, reg_base + 2
    stream: List[_Tagged] = []
    role = first_role
    loads_seen = 0
    slot = 0
    for kind, var in program:
        for _ in range(spec.padding):
            # A serial per-context chain: occupies dispatch/issue slots
            # without feeding the litmus ops.
            stream.append((Instruction(pc=base_pc + slot * 4,
                                       op=OpClass.INT_ALU, dest=scratch,
                                       srcs=(scratch,)), -1, -1))
            slot += 1
        pc = base_pc + slot * 4
        slot += 1
        if kind == FENCE:
            stream.append((Instruction(pc=pc, op=OpClass.MEMBAR), -1, -1))
        elif kind == ST:
            stream.append((Instruction(pc=pc, op=OpClass.STORE,
                                       srcs=(addr_reg, data_reg),
                                       addr=addresses[var], size=8),
                           -1, var))
        else:
            dest = reg_base + 3 + loads_seen
            loads_seen += 1
            stream.append((Instruction(pc=pc, op=OpClass.LOAD, dest=dest,
                                       srcs=(addr_reg,),
                                       addr=addresses[var], size=8),
                           role, -1))
            role += 1
    return stream


def generate_litmus(spec: LitmusSpec, n_instructions: int = 2000,
                    seed: int = 0) -> Tuple[Trace, LitmusMeta]:
    """Emit up to ``n_instructions`` as whole litmus instances.

    Only complete instances are emitted (at least one, even when it
    exceeds ``n_instructions``) so every instance's outcome is fully
    observable.  Deterministic in ``(spec, seed)``.
    """
    shape = spec.shape_def
    contexts = spec.resolved_contexts
    programs = shape.programs(contexts, spec.fenced)
    n_vars = shape.n_vars(contexts)
    load_vars = shape.load_vars(contexts)
    rng = random.Random((fnv1a(spec.name) ^ seed) & 0xFFFFFFFF)
    var_stride = 8 if spec.shared_line else 64

    # Load roles are numbered in (context, program-order) position.
    first_role = [0] * contexts
    next_role = 0
    for ctx, program in enumerate(programs):
        first_role[ctx] = next_role
        next_role += sum(1 for kind, _ in program if kind == LD)

    instance_size = (1 + spec.padding) * sum(len(program)
                                             for program in programs)
    out: List[Instruction] = []
    instances: List[LitmusInstance] = []
    while not instances or len(out) + instance_size <= n_instructions:
        index = len(instances)
        base = _LITMUS_DATA_BASE + index * _INSTANCE_STRIDE
        addresses = [base + var * var_stride for var in range(n_vars)]
        streams = [_context_stream(spec, ctx, addresses, first_role[ctx])
                   for ctx in range(contexts)]
        merged = interleave_streams(streams, spec.interleave, rng)
        loads = [-1] * len(load_vars)
        stores = [-1] * n_vars
        for inst, role, stored_var in merged:
            trace_index = len(out)
            out.append(inst)
            if role >= 0:
                loads[role] = trace_index
            elif stored_var >= 0:
                stores[stored_var] = trace_index
        instances.append(LitmusInstance(index=index, loads=tuple(loads),
                                        stores=tuple(stores)))

    meta = LitmusMeta(
        name=spec.name, shape=spec.shape, contexts=contexts,
        fenced=spec.fenced, interleave=spec.interleave,
        role_labels=shape.role_labels(contexts),
        load_vars=load_vars, n_vars=n_vars,
        instances=tuple(instances))
    return Trace(out, name=spec.name), meta
