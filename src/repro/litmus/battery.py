"""Litmus torture runs: single cells, batteries, fault campaigns.

:func:`run_litmus` is the unit of work — generate one litmus trace, run
it through the pipeline under the full (non-raising) validation
checker, and hold the committed outcomes to the machine's declared
ordering model.  :func:`run_battery` sweeps shapes x fencing x seeds;
:func:`run_litmus_fault_campaign` re-runs cells with fault injection
active and asserts the proof-of-detection property (zero ``silent``)
on top of the outcome check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig, OrderingModel
from repro.litmus.checker import LitmusReport, check_outcomes
from repro.litmus.generator import LitmusSpec, generate_litmus
from repro.litmus.shapes import SHAPES
from repro.pipeline.processor import Processor
from repro.validate.checker import ValidationChecker
from repro.validate.faults import (
    FAULT_CLASSES,
    CampaignReport,
    run_fault_campaign,
)

#: Components any stage may touch directly (sim-lint SIM-M registry).
SIM_LINT_INTERFACES = frozenset({"obs"})

#: Default seeds for a battery sweep — eight distinct interleaving
#: draws per (shape, fencing) cell.
DEFAULT_SEEDS: Tuple[int, ...] = tuple(range(8))

#: Trace length per cell: enough instances for outcome diversity while
#: keeping a full battery interactive.
DEFAULT_CELL_INSTRUCTIONS = 320


def run_litmus(spec: LitmusSpec, machine: MachineConfig, *,
               n_instructions: int = DEFAULT_CELL_INSTRUCTIONS,
               seed: int = 0, model: Optional[OrderingModel] = None,
               raise_on_forbidden: bool = False,
               max_cycles: Optional[int] = None) -> LitmusReport:
    """Run one litmus cell and check its outcomes against the model.

    The run executes under the full memory-model oracle in record-only
    mode; oracle failures surface on the report
    (:attr:`LitmusReport.oracle_failures`) rather than aborting the
    run, so a corrupted cell still yields a complete outcome census.
    """
    trace, meta = generate_litmus(spec, n_instructions=n_instructions,
                                  seed=seed)
    checker = ValidationChecker(raise_on_error=False)
    processor = Processor(machine, checker=checker)
    processor.run(trace, max_cycles=max_cycles)
    if model is None:
        model = machine.lsq.resolved_ordering_model
    report = check_outcomes(meta, checker.load_verdicts, model,
                            processor=processor,
                            raise_on_forbidden=raise_on_forbidden)
    report.oracle_failures = len(checker.failures)
    return report


@dataclass
class BatteryReport:
    """All cells of one battery sweep."""

    model: OrderingModel
    reports: List[LitmusReport] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(report.ok for report in self.reports)

    @property
    def witnesses(self) -> List[object]:
        return [witness for report in self.reports
                for witness in report.witnesses]

    def format(self) -> str:
        lines = [f"litmus battery under {self.model.value}: "
                 f"{len(self.reports)} cell(s), "
                 f"{'ok' if self.ok else 'FORBIDDEN OUTCOMES'}"]
        for report in self.reports:
            status = "ok" if report.ok else "FORBIDDEN"
            lines.append(f"  {status:9s} {report.name:28s} "
                         f"{report.instances:4d} instance(s), "
                         f"{len(report.counts)} outcome(s)")
        return "\n".join(lines)


def run_battery(machine: MachineConfig, *,
                shapes: Optional[Sequence[str]] = None,
                fence_modes: Sequence[bool] = (False, True),
                seeds: Sequence[int] = DEFAULT_SEEDS,
                contexts: int = 0, interleave: str = "random",
                padding: int = 0,
                n_instructions: int = DEFAULT_CELL_INSTRUCTIONS,
                model: Optional[OrderingModel] = None,
                raise_on_forbidden: bool = False) -> BatteryReport:
    """Sweep shapes x fencing x seeds on one machine.

    Each seed is a distinct interleaving draw of the same cell, so a
    battery explores the outcome space rather than one fixed schedule.
    """
    if model is None:
        model = machine.lsq.resolved_ordering_model
    battery = BatteryReport(model=model)
    for shape in (shapes if shapes is not None else list(SHAPES)):
        for fenced in fence_modes:
            for seed in seeds:
                spec = LitmusSpec(shape=shape, contexts=contexts,
                                  fenced=fenced, interleave=interleave,
                                  padding=padding)
                battery.reports.append(run_litmus(
                    spec, machine, n_instructions=n_instructions,
                    seed=seed, model=model,
                    raise_on_forbidden=raise_on_forbidden))
    return battery


def run_litmus_fault_campaign(
        machine: MachineConfig, *,
        fault_names: Sequence[str] = ("drop-membar", "corrupt-nilp"),
        shapes: Sequence[str] = ("mp", "corr"),
        seeds: Sequence[int] = (0, 1),
        fenced: Optional[bool] = None,
        n_instructions: int = DEFAULT_CELL_INSTRUCTIONS,
        rate: float = 0.25,
        fault_seed: int = 0) -> Dict[str, List[CampaignReport]]:
    """Proof of detection on litmus traffic.

    For each fault class, inject into every requested cell and classify
    each fault through :func:`repro.validate.faults.run_fault_campaign`.
    The acceptable end state is ``report.ok`` for every report: each
    fault recovered, was detected, or provably did not matter — never
    silent.

    ``fenced=None`` picks per fault class: ``drop-membar`` needs the
    fenced variants (there is no barrier to drop otherwise), while the
    others want the unfenced ones — fences serialise load issue, which
    would starve e.g. ``corrupt-nilp`` of out-of-order loads to lie
    about.
    """
    campaigns: Dict[str, List[CampaignReport]] = {}
    for fault_name in fault_names:
        cls = FAULT_CLASSES[fault_name]
        cell_fenced = (fault_name == "drop-membar" if fenced is None
                       else fenced)
        reports: List[CampaignReport] = []
        for shape in shapes:
            for seed in seeds:
                spec = LitmusSpec(shape=shape, fenced=cell_fenced)
                trace, _ = generate_litmus(
                    spec, n_instructions=n_instructions, seed=seed)
                reports.append(run_fault_campaign(
                    trace, machine, cls(seed=fault_seed, rate=rate)))
        campaigns[fault_name] = reports
    return campaigns
