"""Memory-consistency torture rig.

Litmus workload generator (:mod:`repro.litmus.generator` over the
shapes in :mod:`repro.litmus.shapes`), multi-context interleaving
(:mod:`repro.litmus.interleave`), QED-style outcome checking against a
declared :class:`~repro.config.OrderingModel`
(:mod:`repro.litmus.checker`), and battery / fault-campaign drivers
(:mod:`repro.litmus.battery`).  See ``docs/LITMUS.md``.
"""

from repro.litmus.battery import (
    DEFAULT_CELL_INSTRUCTIONS,
    DEFAULT_SEEDS,
    BatteryReport,
    run_battery,
    run_litmus,
    run_litmus_fault_campaign,
)
from repro.litmus.checker import (
    ALIEN,
    ForbiddenWitness,
    LitmusReport,
    LitmusViolation,
    allowed_outcomes,
    check_outcomes,
    format_outcome,
    observed_outcome,
)
from repro.litmus.generator import (
    LitmusInstance,
    LitmusMeta,
    LitmusSpec,
    generate_litmus,
    parse_litmus_name,
)
from repro.litmus.interleave import POLICIES, interleave_streams
from repro.litmus.shapes import MAX_CONTEXTS, SHAPES, LitmusShape

#: Components any stage may touch directly (sim-lint SIM-M registry).
SIM_LINT_INTERFACES = frozenset({"obs"})

__all__ = [
    "ALIEN",
    "MAX_CONTEXTS",
    "POLICIES",
    "SHAPES",
    "DEFAULT_CELL_INSTRUCTIONS",
    "DEFAULT_SEEDS",
    "BatteryReport",
    "ForbiddenWitness",
    "LitmusInstance",
    "LitmusMeta",
    "LitmusReport",
    "LitmusShape",
    "LitmusSpec",
    "LitmusViolation",
    "allowed_outcomes",
    "check_outcomes",
    "format_outcome",
    "generate_litmus",
    "interleave_streams",
    "observed_outcome",
    "parse_litmus_name",
    "run_battery",
    "run_litmus",
    "run_litmus_fault_campaign",
]
