"""QED-style outcome checking for litmus runs.

Two halves:

* :func:`allowed_outcomes` — an executable memory model.  It enumerates
  every final outcome a shape can produce under a declared
  :class:`~repro.config.OrderingModel` by exploring all interleavings
  of the per-context programs in which each operation may run as soon
  as its *model-required* program-order predecessors have run (single-
  copy-atomic memory; fences order everything across themselves).

* :func:`check_outcomes` — reads an actual run back through the
  validation checker's committed-load verdicts and verifies every
  observed instance outcome is a member of the allowed set.  A
  non-member is reported as a :class:`ForbiddenWitness` (with a full
  diagnostic bundle when the processor is still at hand) — and, with
  ``raise_on_forbidden``, raised as a :class:`LitmusViolation`.

The pipeline commits each interleaving sequentially, so clean runs can
only ever produce SC outcomes — a strict subset of any declared model.
A forbidden outcome therefore always means corruption: either an
injected fault (the proof-of-detection campaigns) or a real ordering
bug in the simulator, which is exactly what this rig exists to catch.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.config import OrderingModel
from repro.litmus.generator import LitmusInstance, LitmusMeta
from repro.litmus.shapes import FENCE, LD, SHAPES, ST, Op
from repro.validate.bundle import (
    DiagnosticBundle,
    ValidationError,
    ValidationFailure,
    build_bundle,
)

#: Components any stage may touch directly (sim-lint SIM-M registry).
SIM_LINT_INTERFACES = frozenset({"obs"})

#: Observed value marker for a load that saw a store belonging to no
#: litmus variable of its instance (cross-instance or cross-variable
#: corruption) — never a member of any allowed set.
ALIEN = -1

#: Sentinel for a not-yet-resolved load during enumeration.
_UNSET = -2


class LitmusViolation(ValidationError):
    """An observed outcome is outside the declared model's allowed set."""


def _ordered(kind_a: str, kind_b: str, fence_between: bool,
             model: OrderingModel) -> bool:
    """Must program-order ``a`` (earlier) complete before ``b``?"""
    if kind_a == FENCE or kind_b == FENCE or fence_between:
        return True
    if model is OrderingModel.SC:
        return True
    if model is OrderingModel.TSO:
        return not (kind_a == ST and kind_b == LD)
    return False   # RELAXED: only fences order


_ALLOWED_CACHE: Dict[Tuple[Tuple[Tuple[Op, ...], ...], OrderingModel],
                     FrozenSet[Tuple[int, ...]]] = {}


def allowed_outcomes(programs: Sequence[Sequence[Op]],
                     model: OrderingModel) -> FrozenSet[Tuple[int, ...]]:
    """All final load-value tuples reachable under ``model``.

    Outcome positions follow load roles in (context, program) order;
    values are 0 (initial memory) or 1 (the variable's unique store).
    """
    if model is OrderingModel.AUTO:
        raise ValueError("resolve OrderingModel.AUTO (see "
                         "LsqConfig.resolved_ordering_model) before "
                         "enumerating outcomes")
    key = (tuple(tuple(program) for program in programs), model)
    cached = _ALLOWED_CACHE.get(key)
    if cached is not None:
        return cached

    # Flatten to events; compute, per event, the bitmask of same-context
    # predecessors the model requires to have completed first.
    events: List[Tuple[int, int, str, int]] = []   # (ctx, idx, kind, var)
    for ctx, program in enumerate(programs):
        for idx, (kind, var) in enumerate(program):
            events.append((ctx, idx, kind, var))
    n = len(events)
    load_roles = {i: role for role, i in enumerate(
        i for i, event in enumerate(events) if event[2] == LD)}
    preds = [0] * n
    for i, (ctx, idx, kind, _) in enumerate(events):
        for j, (ctx_j, idx_j, kind_j, _) in enumerate(events):
            if ctx_j != ctx or idx_j >= idx:
                continue
            fence_between = any(
                event[0] == ctx and idx_j < event[1] < idx
                and event[2] == FENCE for event in events)
            if _ordered(kind_j, kind, fence_between, model):
                preds[i] |= 1 << j

    results: Set[Tuple[int, ...]] = set()
    seen: Set[Tuple[int, Tuple[int, ...]]] = set()
    all_done = (1 << n) - 1
    initial = tuple([_UNSET] * len(load_roles))

    def step(done: int, written: int, outcome: Tuple[int, ...]) -> None:
        if (done, outcome) in seen:
            return
        seen.add((done, outcome))
        if done == all_done:
            results.add(outcome)
            return
        for i in range(n):
            bit = 1 << i
            if done & bit or (preds[i] & done) != preds[i]:
                continue
            kind, var = events[i][2], events[i][3]
            if kind == LD:
                value = (written >> var) & 1
                role = load_roles[i]
                step(done | bit, written,
                     outcome[:role] + (value,) + outcome[role + 1:])
            elif kind == ST:
                step(done | bit, written | (1 << var), outcome)
            else:
                step(done | bit, written, outcome)

    step(0, 0, initial)
    allowed = frozenset(results)
    _ALLOWED_CACHE[key] = allowed
    return allowed


def observed_outcome(instance: LitmusInstance, load_vars: Sequence[int],
                     verdicts: Dict[int, Tuple[object, object]]
                     ) -> Optional[Tuple[int, ...]]:
    """Reconstruct one instance's outcome from committed-load verdicts.

    ``verdicts`` is :attr:`ValidationChecker.load_verdicts` — per trace
    index, the store the committed load *actually observed* (the
    observed half; the oracle half is the checker's own business).
    Returns ``None`` when any of the instance's loads never committed
    (a truncated run).
    """
    values: List[int] = []
    for role, trace_index in enumerate(instance.loads):
        verdict = verdicts.get(trace_index)
        if verdict is None:
            return None
        observed = verdict[0]
        if observed is None:
            values.append(0)
        elif observed == instance.stores[load_vars[role]]:
            values.append(1)
        else:
            values.append(ALIEN)
    return tuple(values)


def format_outcome(outcome: Sequence[int],
                   role_labels: Sequence[str]) -> str:
    parts = []
    for label, value in zip(role_labels, outcome):
        parts.append(f"{label}={'?' if value == ALIEN else value}")
    return " ".join(parts)


@dataclass
class ForbiddenWitness:
    """One observed instance outside the allowed set."""

    instance: LitmusInstance
    outcome: Tuple[int, ...]
    detail: str
    bundle: Optional[DiagnosticBundle] = None

    def format(self) -> str:
        return self.detail


@dataclass
class LitmusReport:
    """Outcome census of one litmus run against its declared model."""

    name: str
    model: OrderingModel
    role_labels: Tuple[str, ...]
    allowed: FrozenSet[Tuple[int, ...]]
    counts: Dict[Tuple[int, ...], int] = field(default_factory=dict)
    witnesses: List[ForbiddenWitness] = field(default_factory=list)
    instances: int = 0
    incomplete: int = 0
    #: Failures the memory-model oracle recorded during the same run
    #: (independent of the litmus-level membership check).
    oracle_failures: int = 0

    @property
    def forbidden(self) -> bool:
        return bool(self.witnesses)

    @property
    def ok(self) -> bool:
        return not self.witnesses and self.oracle_failures == 0

    def format(self) -> str:
        lines = [f"{self.name} under {self.model.value}: "
                 f"{self.instances} instance(s), "
                 f"{len(self.counts)} distinct outcome(s), "
                 f"{len(self.allowed)} allowed"]
        for outcome in sorted(self.counts):
            marker = ("ok       " if outcome in self.allowed
                      else "FORBIDDEN")
            lines.append(f"  {marker} {self.counts[outcome]:6d}x  "
                         f"{format_outcome(outcome, self.role_labels)}")
        if self.incomplete:
            lines.append(f"  ({self.incomplete} incomplete instance(s) "
                         f"skipped)")
        if self.oracle_failures:
            lines.append(f"  {self.oracle_failures} memory-model oracle "
                         f"failure(s) in the same run")
        return "\n".join(lines)


def check_outcomes(meta: LitmusMeta,
                   verdicts: Dict[int, Tuple[object, object]],
                   model: OrderingModel,
                   processor: object = None,
                   raise_on_forbidden: bool = False,
                   max_bundles: int = 2) -> LitmusReport:
    """Verify every observed instance outcome against the model.

    ``processor`` (when given) is the just-finished pipeline, used to
    attach diagnostic bundles to the first ``max_bundles`` witnesses.
    """
    allowed = allowed_outcomes(
        SHAPES[meta.shape].programs(meta.contexts, meta.fenced), model)
    report = LitmusReport(name=meta.name, model=model,
                          role_labels=meta.role_labels, allowed=allowed)
    for instance in meta.instances:
        outcome = observed_outcome(instance, meta.load_vars, verdicts)
        if outcome is None:
            report.incomplete += 1
            continue
        report.instances += 1
        report.counts[outcome] = report.counts.get(outcome, 0) + 1
        if outcome in allowed:
            continue
        detail = (f"{meta.name} instance {instance.index}: outcome "
                  f"{format_outcome(outcome, meta.role_labels)} is "
                  f"forbidden under {model.value} "
                  f"(loads at trace{list(instance.loads)})")
        bundle: Optional[DiagnosticBundle] = None
        if processor is not None and len(report.witnesses) < max_bundles:
            failure = ValidationFailure(
                kind="forbidden-outcome",
                cycle=getattr(processor, "cycle", -1),
                trace_index=instance.loads[0], message=detail)
            bundle = build_bundle(processor,
                                  trace_index=instance.loads[0],
                                  failures=[failure])
        report.witnesses.append(ForbiddenWitness(
            instance=instance, outcome=outcome, detail=detail,
            bundle=bundle))
    if report.witnesses and raise_on_forbidden:
        first = report.witnesses[0]
        raise LitmusViolation(first.detail, bundle=first.bundle)
    return report
