"""The classic litmus shapes, as abstract per-context programs.

A litmus *shape* is a tiny multi-context program whose final register
state discriminates between memory-consistency models.  Each shape here
is expressed abstractly — per context, an ordered list of operations on
symbolic variables — and instantiated by :mod:`repro.litmus.generator`
into concrete trace instructions.  Conventions:

* every variable starts at 0 and has exactly **one** writer, which
  stores 1 — so every load observes either 0 (the initial value) or 1
  (the store), and an outcome is just the tuple of values the shape's
  loads returned, in (context, program) order;
* the *fenced* variant of a shape inserts a ``MEMBAR`` between the two
  operations of every context that has two memory operations — the
  software ordering the paper's Section 2.2 describes.

The shapes:

``mp``    message passing: a writer publishes data then a flag; readers
          poll the flag then read the data.  Forbidden under SC/TSO:
          flag seen set but data seen stale.
``sb``    store buffering (Dekker): each context stores its own
          variable then loads its neighbour's.  All-zero is forbidden
          under SC but *allowed* under TSO — the store buffer lets the
          load run ahead of the store.
``lb``    load buffering: each context loads its own variable then
          stores its neighbour's.  All-one requires load->store
          reordering — forbidden under SC/TSO.
``corr``  coherent read-read: one writer, readers load the same
          variable twice.  New-then-old (1, 0) requires load-load
          reordering — exactly the traffic the paper's NILP/LIV load
          buffer polices.
``iriw``  independent reads of independent writes: two writers, readers
          scan the two variables in opposite orders.  Both readers
          disagreeing on the write order is forbidden under SC/TSO.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Tuple

#: Components any stage may touch directly (sim-lint SIM-M registry).
SIM_LINT_INTERFACES = frozenset({"obs"})

#: Operation kinds within a shape program.
ST = "St"
LD = "Ld"
FENCE = "Fence"

#: One abstract operation: ``(ST|LD, variable index)`` or
#: ``(FENCE, -1)``.
Op = Tuple[str, int]
Program = List[Op]

#: Contexts are mapped onto disjoint architectural-register windows by
#: the generator, which bounds how many fit.
MAX_CONTEXTS = 4

_FENCE_OP: Op = (FENCE, -1)


def _st(var: int) -> Op:
    return (ST, var)


def _ld(var: int) -> Op:
    return (LD, var)


def _fence(fenced: bool) -> Program:
    return [_FENCE_OP] if fenced else []


def _mp(contexts: int, fenced: bool) -> List[Program]:
    writer = [_st(0)] + _fence(fenced) + [_st(1)]
    reader = [_ld(1)] + _fence(fenced) + [_ld(0)]
    return [writer] + [list(reader) for _ in range(contexts - 1)]


def _sb(contexts: int, fenced: bool) -> List[Program]:
    return [[_st(c)] + _fence(fenced) + [_ld((c + 1) % contexts)]
            for c in range(contexts)]


def _lb(contexts: int, fenced: bool) -> List[Program]:
    return [[_ld(c)] + _fence(fenced) + [_st((c + 1) % contexts)]
            for c in range(contexts)]


def _corr(contexts: int, fenced: bool) -> List[Program]:
    reader = [_ld(0)] + _fence(fenced) + [_ld(0)]
    return [[_st(0)]] + [list(reader) for _ in range(contexts - 1)]


def _iriw(contexts: int, fenced: bool) -> List[Program]:
    programs: List[Program] = [[_st(0)], [_st(1)]]
    for index in range(contexts - 2):
        first, second = (0, 1) if index % 2 == 0 else (1, 0)
        programs.append([_ld(first)] + _fence(fenced) + [_ld(second)])
    return programs


@dataclass(frozen=True)
class LitmusShape:
    """One shape: metadata plus its program builder."""

    name: str
    title: str
    description: str
    min_contexts: int
    default_contexts: int
    build: Callable[[int, bool], List[Program]] = field(repr=False)

    def resolve_contexts(self, contexts: int = 0) -> int:
        """Validate and default the context count (0 = shape default)."""
        contexts = contexts or self.default_contexts
        if contexts < self.min_contexts:
            raise ValueError(
                f"{self.name} needs at least {self.min_contexts} contexts "
                f"(got {contexts})")
        if contexts > MAX_CONTEXTS:
            raise ValueError(
                f"{self.name}: at most {MAX_CONTEXTS} contexts fit the "
                f"register windows (got {contexts})")
        return contexts

    def programs(self, contexts: int = 0,
                 fenced: bool = False) -> List[Program]:
        return self.build(self.resolve_contexts(contexts), fenced)

    def n_vars(self, contexts: int = 0) -> int:
        programs = self.programs(contexts)
        return 1 + max(var for program in programs
                       for (_, var) in program if var >= 0)

    def load_vars(self, contexts: int = 0) -> Tuple[int, ...]:
        """Variable read by each load role, in (context, program) order."""
        return tuple(var for program in self.programs(contexts)
                     for (kind, var) in program if kind == LD)

    def role_labels(self, contexts: int = 0) -> Tuple[str, ...]:
        """Human names for the outcome positions, e.g. ``c1:Ld[y]``."""
        labels: List[str] = []
        for ctx, program in enumerate(self.programs(contexts)):
            for kind, var in program:
                if kind == LD:
                    labels.append(f"c{ctx}:Ld[{var_name(var)}]")
        return tuple(labels)


def var_name(var: int) -> str:
    """Symbolic variable names: x, y, z, w."""
    return "xyzw"[var] if 0 <= var < 4 else f"v{var}"


#: Registry, in canonical battery order.
SHAPES: Dict[str, LitmusShape] = {shape.name: shape for shape in (
    LitmusShape(
        name="mp", title="message passing",
        description="writer publishes data then flag; readers poll the "
                    "flag then read the data (forbidden: flag=1, data=0)",
        min_contexts=2, default_contexts=2, build=_mp),
    LitmusShape(
        name="sb", title="store buffering",
        description="each context stores its own variable then loads its "
                    "neighbour's (all-zero: forbidden under SC, allowed "
                    "under TSO)",
        min_contexts=2, default_contexts=2, build=_sb),
    LitmusShape(
        name="lb", title="load buffering",
        description="each context loads its own variable then stores its "
                    "neighbour's (all-one: forbidden under SC/TSO)",
        min_contexts=2, default_contexts=2, build=_lb),
    LitmusShape(
        name="corr", title="coherent read-read",
        description="readers load one written variable twice (new-then-"
                    "old: the load-load reordering the NILP/LIV buffer "
                    "polices)",
        min_contexts=2, default_contexts=2, build=_corr),
    LitmusShape(
        name="iriw", title="independent reads of independent writes",
        description="two writers; readers scan both variables in "
                    "opposite orders (readers disagreeing on the write "
                    "order: forbidden under SC/TSO)",
        min_contexts=4, default_contexts=4, build=_iriw),
)}
