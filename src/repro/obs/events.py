"""Structured event bus: typed microarchitectural events, zero-cost off.

Components that want to narrate their behaviour hold an ``obs``
attribute that is ``None`` by default; every emission site is guarded by
``if self.obs is not None`` — the Python analogue of compiling the
instrumentation to a no-op — so a run without an attached
:class:`~repro.obs.Observer` executes exactly the same instruction
stream it did before the observability layer existed.

Events are small :class:`typing.NamedTuple` rows, not dicts: cheap to
allocate, cheap to pickle, and uniform enough that the Chrome-trace
exporter and the tests can pattern-match on them.  The bus keeps the
first ``limit`` events verbatim (a failed run's interesting prefix) and
counts the rest per kind, so memory stays bounded on long runs while
per-kind totals remain exact.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Tuple

#: The event taxonomy.  ``seq``/``pc`` are -1 when the event is not tied
#: to one dynamic instruction; ``arg`` and ``note`` are kind-specific.
EVENT_KINDS: Tuple[str, ...] = (
    "issue",             # instruction selected onto a functional unit
    "forward",           # SQ search matched: store->load forwarding
    "violation_squash",  # memory-order violation; arg = extra penalty
    "segment_hop",       # pipelined search crossed segments; arg = count
    "port_retry",        # structural port hazard; note = which pool
    "predictor_update",  # store-set/pair table training or clear
    "cache_miss",        # cache lookup missed; note = cache name
    "lb_insert",         # out-of-order load parked in the load buffer
    "lb_release",        # NILP passed the load; buffer entry freed
)


_KIND_SET = frozenset(EVENT_KINDS)


class Event(NamedTuple):
    """One structured event row."""

    cycle: int
    kind: str
    seq: int = -1
    pc: int = -1
    arg: int = 0
    note: str = ""


class EventBus:
    """Collects :class:`Event` rows during one simulation.

    The bus does not know about the processor; the attached
    :class:`~repro.obs.Observer` advances :attr:`cycle` once per
    simulated cycle so emitters never need the clock plumbed through.
    """

    __slots__ = ("cycle", "limit", "dropped", "counts", "_events")

    def __init__(self, limit: int = 65536) -> None:
        if limit < 0:
            raise ValueError("event limit must be >= 0")
        #: Current simulation cycle, stamped onto every emitted event.
        self.cycle = 0
        self.limit = limit
        #: Events beyond ``limit`` (counted per kind but not stored).
        self.dropped = 0
        self.counts: Dict[str, int] = {}
        self._events: List[Event] = []

    def begin_cycle(self, cycle: int) -> None:
        self.cycle = cycle

    def emit(self, kind: str, seq: int = -1, pc: int = -1, arg: int = 0,
             note: str = "") -> None:
        """Record one event at the current cycle (cheap, append-only)."""
        if kind not in _KIND_SET:
            raise ValueError(f"unknown event kind {kind!r}; "
                             f"one of: {', '.join(EVENT_KINDS)}")
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if len(self._events) < self.limit:
            self._events.append(Event(self.cycle, kind, seq, pc, arg, note))
        else:
            self.dropped += 1

    def __len__(self) -> int:
        return len(self._events)

    @property
    def total(self) -> int:
        """Every emission, stored or dropped."""
        return sum(self.counts.values())

    def events(self) -> List[Event]:
        """The stored event prefix, in emission order (copy)."""
        return list(self._events)

    def events_of(self, kind: str) -> List[Event]:
        return [event for event in self._events if event.kind == kind]
