"""repro.obs — the observability layer: events, metrics, CPI, traces.

The simulator's end-of-run :class:`~repro.stats.counters.SimStats`
totals say *how much* happened; this package shows *when* and *why*:

* :mod:`repro.obs.events` — a structured event bus with typed events
  (issue, forward, violation-squash, segment-hop, port-retry,
  predictor-update, cache-miss, load-buffer traffic) emitted from the
  pipeline, LSQ, predictor, load buffer, and caches;
* :mod:`repro.obs.metrics` — an interval sampler recording per-N-cycle
  time series (IPC, ROB/LQ/SQ/load-buffer occupancy, port utilization,
  L1-D MPKI) into a bounded ring buffer with JSON/CSV export;
* :mod:`repro.obs.cpi` — a CPI stall-attribution stack charging every
  commit slot to exactly one cause;
* :mod:`repro.obs.chrometrace` — a Chrome-trace/Perfetto exporter
  (``trace.json`` loadable in ``ui.perfetto.dev``).

The :class:`Observer` bundles the first three and is attached like the
validation checker: pass ``obs=Observer()`` to
:func:`repro.pipeline.processor.simulate` (or ``repro trace`` on the
command line).  Detached, every emission site reduces to one
``is not None`` test — runs without an observer are unchanged, and runs
*with* one produce bit-identical ``SimStats`` (asserted by the tier-1
parity tests).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Dict, Optional, Tuple

from repro.obs.cpi import CPI_CAUSES, CpiStack
from repro.obs.events import EVENT_KINDS, Event, EventBus
from repro.obs.metrics import IntervalSampler, Sample

if TYPE_CHECKING:
    from repro.core.lsq import Violation
    from repro.pipeline.dyninst import DynInst
    from repro.pipeline.processor import Processor

__all__ = [
    "CPI_CAUSES", "CpiStack", "EVENT_KINDS", "Event", "EventBus",
    "IntervalSampler", "ObsConfig", "ObsSummary", "Observer", "Sample",
]


@dataclasses.dataclass(frozen=True)
class ObsConfig:
    """Observability knobs; part of any result-cache key that can carry
    observability output (see :mod:`repro.harness.engine`)."""

    #: Cycles between metric samples.
    sample_interval: int = 64
    #: Ring-buffer capacity of the sampler (rows).
    sample_capacity: int = 4096
    #: Stored-event cap of the bus (per-kind counts stay exact beyond).
    event_limit: int = 65536


@dataclasses.dataclass
class ObsSummary:
    """Picklable digest of one observed run (what the result cache and
    the parallel engine ship between processes)."""

    cycles: int
    commit_width: int
    samples: Tuple[Sample, ...]
    cpi_slots: Dict[str, int]
    event_counts: Dict[str, int]
    stored_events: int
    dropped_events: int

    @property
    def total_slots(self) -> int:
        return self.cycles * self.commit_width


class Observer:
    """Attachable bundle: event bus + interval sampler + CPI stack.

    Lifecycle mirrors the validation checker: construct, hand to the
    processor (``Processor(machine, obs=observer)``), and read the
    results after the run.  :meth:`attach` is called by the processor at
    the start of :meth:`~repro.pipeline.processor.Processor.run` —
    *after* cache/predictor warming, so warm-up traffic does not pollute
    the event stream.
    """

    def __init__(self, config: Optional[ObsConfig] = None) -> None:
        self.config = config if config is not None else ObsConfig()
        self.bus = EventBus(limit=self.config.event_limit)
        self.sampler = IntervalSampler(
            interval=self.config.sample_interval,
            capacity=self.config.sample_capacity)
        self.cpi: Optional[CpiStack] = None
        self._processor: Optional["Processor"] = None

    # -- wiring -----------------------------------------------------------

    def attach(self, processor: "Processor") -> None:
        """Wire the bus into every emitting component of ``processor``."""
        self._processor = processor
        self.cpi = CpiStack(processor.machine.core.commit_width)
        lsq = processor.lsq
        lsq.obs = self.bus
        lsq.predictor.obs = self.bus
        lsq.load_buffer.obs = self.bus
        processor.memory.l1d.obs = self.bus
        processor.memory.l2.obs = self.bus

    # -- per-cycle hooks (called by the processor) ------------------------

    def begin_cycle(self, cycle: int) -> None:
        self.bus.begin_cycle(cycle)

    def end_cycle(self, processor: "Processor") -> None:
        if self.cpi is not None:
            self.cpi.on_cycle_end(processor)
        self.sampler.on_cycle_end(processor)

    # -- event hooks (called by the processor) ----------------------------

    def on_issue(self, inst: "DynInst") -> None:
        self.bus.emit("issue", seq=inst.seq, pc=inst.pc)

    def on_recover(self, violation: "Violation", cycle: int,
                   penalty: int) -> None:
        self.bus.emit("violation_squash", seq=violation.squash_seq,
                      arg=penalty, note=violation.kind)
        if self.cpi is not None:
            self.cpi.note_recovery(cycle + penalty)

    # -- results ----------------------------------------------------------

    def summary(self) -> ObsSummary:
        """Compact, picklable digest of everything collected."""
        cycles = self.cpi.cycles if self.cpi is not None else 0
        width = self.cpi.commit_width if self.cpi is not None else 1
        slots = self.cpi.stack() if self.cpi is not None else {}
        return ObsSummary(
            cycles=cycles,
            commit_width=width,
            samples=tuple(self.sampler.rows()),
            cpi_slots=slots,
            event_counts=dict(self.bus.counts),
            stored_events=len(self.bus),
            dropped_events=self.bus.dropped,
        )
