"""CPI stall attribution: charge every commit slot to exactly one cause.

The machine retires up to ``commit_width`` instructions per cycle, so a
run exposes ``cycles x commit_width`` *commit slots*.  Each slot either
retired an instruction (the ``commit`` bucket — useful work) or idled
for a reason.  This module charges every idle slot to one cause, so the
buckets always sum to ``cycles x commit_width`` exactly — the defining
invariant of a CPI stack, and the property the tier-1 tests assert.

Attribution runs once per cycle, after commit, from the end-of-cycle
hook.  All idle slots of a cycle share one cause, picked by the first
matching rule:

1. ROB empty inside a squash-recovery window -> ``squash_recovery``
   (the refetch penalty of a memory-order violation);
2. ROB empty otherwise -> ``fetch`` (I-cache misses, branch bubbles,
   trace exhausted);
3. ROB head waiting on a store-set prediction -> ``store_set``;
4. ROB head lost an LSQ/D-cache port this cycle -> ``lsq_port``;
5. ROB head is a memory op with its access in flight -> ``cache_miss``;
6. ROB full behind an incomplete head -> ``rob_full``
   (a long-latency non-memory chain backing the window up);
7. anything else -> ``other`` (operand waits, FU latency).

Rules 3-5 read per-cycle *deltas* of the existing ``SimStats`` counters
rather than re-deriving pipeline state, so attribution never perturbs
the simulation (bit-identical ``SimStats`` with the observer attached).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Mapping, Tuple

if TYPE_CHECKING:
    from repro.pipeline.processor import Processor

#: Attribution buckets, in report order.  ``commit`` is useful work.
CPI_CAUSES: Tuple[str, ...] = (
    "commit", "fetch", "squash_recovery", "store_set", "lsq_port",
    "cache_miss", "rob_full", "other",
)

#: SimStats counters whose per-cycle deltas drive rules 3-5.
_DELTA_FIELDS: Tuple[str, ...] = (
    "committed", "store_set_waits", "sq_port_stalls", "lq_port_stalls",
    "dcache_port_stalls", "contention_stalls", "store_commit_delays",
    "load_buffer_full_stalls",
)


class CpiStack:
    """Per-cause commit-slot accounting for one simulation."""

    def __init__(self, commit_width: int) -> None:
        if commit_width < 1:
            raise ValueError("commit width must be >= 1")
        self.commit_width = commit_width
        self.cycles = 0
        self.slots: Dict[str, int] = {cause: 0 for cause in CPI_CAUSES}
        self._last: Dict[str, int] = {}
        self._recovery_until = -1

    # -- hooks ------------------------------------------------------------

    def note_recovery(self, until_cycle: int) -> None:
        """A violation squash: refetch runs until ``until_cycle``."""
        self._recovery_until = max(self._recovery_until, until_cycle)

    def on_cycle_end(self, processor: "Processor") -> None:
        """Attribute this cycle's ``commit_width`` slots."""
        stats = processor.stats
        deltas = {}
        for name in _DELTA_FIELDS:
            value = int(getattr(stats, name))
            deltas[name] = value - self._last.get(name, 0)
            self._last[name] = value
        self.cycles += 1
        committed = min(deltas["committed"], self.commit_width)
        self.slots["commit"] += committed
        idle = self.commit_width - committed
        if idle:
            self.slots[self._classify(processor, deltas)] += idle

    def _classify(self, processor: "Processor",
                  deltas: Mapping[str, int]) -> str:
        head = processor.rob.head
        if head is None:
            if processor.cycle < self._recovery_until:
                return "squash_recovery"
            return "fetch"
        if head.complete:
            # Head retired mid-cycle and a younger incomplete head took
            # its place, or commit stopped on a store's structural
            # retry; charge the port if one was lost, else "other".
            if deltas["dcache_port_stalls"] or deltas["store_commit_delays"]:
                return "lsq_port"
            return "other"
        if head.is_memory and not head.mem_executed:
            if deltas["store_set_waits"] or deltas["load_buffer_full_stalls"]:
                return "store_set"
            if (deltas["sq_port_stalls"] or deltas["lq_port_stalls"]
                    or deltas["dcache_port_stalls"]
                    or deltas["contention_stalls"]):
                return "lsq_port"
            return "other"
        if head.is_memory:
            # Address resolved, access in flight: memory latency.
            return "cache_miss"
        if processor.rob.full:
            return "rob_full"
        return "other"

    # -- results ----------------------------------------------------------

    @property
    def total_slots(self) -> int:
        return self.cycles * self.commit_width

    def stack(self) -> Dict[str, int]:
        """Slot-cycles per cause (copy); sums to :attr:`total_slots`."""
        return dict(self.slots)

    def cpi_contributions(self, committed: int) -> Dict[str, float]:
        """Cycles-per-instruction contributed by each cause.

        ``sum(values) == cycles / committed`` (the run CPI) because the
        slot buckets sum to ``cycles x commit_width``.
        """
        if committed <= 0:
            return {cause: 0.0 for cause in CPI_CAUSES}
        return {cause: slots / self.commit_width / committed
                for cause, slots in self.slots.items()}
