"""Chrome-trace / Perfetto export of one observed simulation.

Writes the `Trace Event Format
<https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU>`_
JSON object that ``chrome://tracing`` and https://ui.perfetto.dev load
directly.  One simulated cycle maps to one microsecond of trace time.

The export has three process rows:

* **pid 0 — pipeline**: one complete ("X") slice per traced instruction
  (dispatch to commit/squash), taken from the
  :class:`~repro.pipeline.debug.PipelineTracer` records and spread
  across lanes so overlapping instructions stay readable;
* **pid 1 — events**: instant ("i") marks from the structured event bus
  (forwarding hits, violation squashes, port retries, segment hops...),
  one thread row per event kind;
* **pid 2 — metrics**: counter ("C") series from the interval sampler
  (IPC, occupancies, port utilization, MPKI).

``python -m repro.obs.chrometrace trace.json`` validates an emitted
file against the schema (the CI ``trace-smoke`` job runs exactly this).
"""

from __future__ import annotations

import json
import sys
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Sequence

from repro.obs.events import EVENT_KINDS, Event
from repro.obs.metrics import Sample

if TYPE_CHECKING:
    from repro.obs import Observer
    from repro.pipeline.debug import PipelineTracer

#: Parallel lanes used to lay out overlapping instruction slices.
PIPELINE_LANES = 8

JsonDict = Dict[str, Any]


def _meta(pid: int, name: str, tid: Optional[int] = None,
          thread: Optional[str] = None) -> JsonDict:
    event: JsonDict = {"ph": "M", "pid": pid, "ts": 0, "args": {}}
    if tid is None:
        event["name"] = "process_name"
        event["args"]["name"] = name
    else:
        event["name"] = "thread_name"
        event["tid"] = tid
        event["args"]["name"] = thread if thread is not None else name
    return event


def _instruction_slices(tracer: "PipelineTracer") -> List[JsonDict]:
    slices: List[JsonDict] = []
    for seq in sorted(tracer.records):
        record = tracer.records[seq]
        if record.dispatch is None:
            continue
        end = record.squash if record.squash is not None else record.commit
        if end is None:
            end = record.complete
        if end is None:
            end = record.dispatch
        status = "squashed" if record.squash is not None else "retired"
        slices.append({
            "name": record.op,
            "cat": f"inst,{status}",
            "ph": "X",
            "ts": record.dispatch,
            "dur": max(end - record.dispatch, 1),
            "pid": 0,
            "tid": seq % PIPELINE_LANES,
            "args": {"seq": seq, "pc": record.pc, "status": status,
                     "issue": record.issue, "complete": record.complete,
                     "commit": record.commit, "squash": record.squash},
        })
    return slices


def _instant_events(events: Sequence[Event]) -> List[JsonDict]:
    tids = {kind: index for index, kind in enumerate(EVENT_KINDS)}
    rows: List[JsonDict] = []
    for event in events:
        rows.append({
            "name": event.kind,
            "cat": "obs",
            "ph": "i",
            "s": "t",
            "ts": event.cycle,
            "pid": 1,
            "tid": tids.get(event.kind, len(EVENT_KINDS)),
            "args": {"seq": event.seq, "pc": event.pc,
                     "arg": event.arg, "note": event.note},
        })
    return rows


def _counter_events(samples: Sequence[Sample]) -> List[JsonDict]:
    rows: List[JsonDict] = []
    for sample in samples:
        base: JsonDict = {"ph": "C", "pid": 2, "ts": sample.cycle}
        rows.append({**base, "name": "ipc", "args": {"ipc": sample.ipc}})
        rows.append({**base, "name": "occupancy",
                     "args": {"rob": sample.rob_occ, "lq": sample.lq_occ,
                              "sq": sample.sq_occ, "lb": sample.lb_occ}})
        rows.append({**base, "name": "search ports",
                     "args": {"util": sample.port_util,
                              "stalls": sample.port_stalls}})
        rows.append({**base, "name": "l1d mpki",
                     "args": {"mpki": sample.mpki}})
    return rows


def export_chrome_trace(obs: "Observer",
                        tracer: Optional["PipelineTracer"] = None,
                        label: str = "") -> JsonDict:
    """Build the Trace Event Format document for one observed run."""
    events: List[JsonDict] = [
        _meta(0, "pipeline"), _meta(1, "events"), _meta(2, "metrics")]
    for lane in range(PIPELINE_LANES):
        events.append(_meta(0, "pipeline", tid=lane, thread=f"lane {lane}"))
    for index, kind in enumerate(EVENT_KINDS):
        events.append(_meta(1, "events", tid=index, thread=kind))
    if tracer is not None:
        events.extend(_instruction_slices(tracer))
    events.extend(_instant_events(obs.bus.events()))
    events.extend(_counter_events(obs.sampler.rows()))
    summary = obs.summary()
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "label": label,
            "cycles": summary.cycles,
            "event_counts": summary.event_counts,
            "dropped_events": summary.dropped_events,
            "cpi_slots": summary.cpi_slots,
        },
    }


def write_chrome_trace(path: str, doc: JsonDict) -> None:
    with open(path, "w") as handle:
        json.dump(doc, handle, indent=1)
        handle.write("\n")


# -- schema validation (the trace-smoke CI gate) --------------------------

_PHASES = {"X", "i", "C", "M"}


def validate_chrome_trace(doc: object) -> List[str]:
    """Schema problems with ``doc`` (empty list == loadable trace)."""
    problems: List[str] = []
    if not isinstance(doc, dict):
        return ["top level must be a JSON object"]
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' must be a list"]
    if not events:
        problems.append("'traceEvents' is empty")
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _PHASES:
            problems.append(f"{where}: bad ph {phase!r}")
            continue
        if not isinstance(event.get("name"), str):
            problems.append(f"{where}: missing name")
        if not isinstance(event.get("pid"), int):
            problems.append(f"{where}: missing pid")
        if not isinstance(event.get("ts"), (int, float)):
            problems.append(f"{where}: missing ts")
        if phase == "X" and not isinstance(event.get("dur"), (int, float)):
            problems.append(f"{where}: X event missing dur")
        if phase == "i" and event.get("s") not in ("g", "p", "t"):
            problems.append(f"{where}: instant event missing scope")
        if phase == "C" and not isinstance(event.get("args"), dict):
            problems.append(f"{where}: counter event missing args")
    return problems[:50]


def validate_chrome_trace_file(path: str) -> List[str]:
    try:
        with open(path) as handle:
            doc = json.load(handle)
    except (OSError, ValueError) as error:
        return [f"{path}: {error}"]
    return validate_chrome_trace(doc)


def main(argv: Optional[List[str]] = None) -> int:
    args = sys.argv[1:] if argv is None else argv
    if len(args) != 1:
        print("usage: python -m repro.obs.chrometrace <trace.json>")
        return 2
    problems = validate_chrome_trace_file(args[0])
    if problems:
        for problem in problems:
            print(f"invalid: {problem}")
        return 1
    with open(args[0]) as handle:
        doc = json.load(handle)
    print(f"{args[0]}: valid Chrome trace, "
          f"{len(doc['traceEvents'])} events")
    return 0


if __name__ == "__main__":
    sys.exit(main())
