"""Fleet telemetry primitives: spans, metrics, structured logs.

:mod:`repro.obs` watches one simulated core; this package watches the
fleet that runs thousands of them.  Three stdlib-only building blocks,
assembled by the serve stack (``repro.serve.telemetry``):

* :mod:`~repro.obs.telemetry.spans` — context-propagated span trees
  whose root duration equals a job's wall time (latency attribution
  with the CPI stack's "sums exactly" discipline);
* :mod:`~repro.obs.telemetry.registry` — counters / gauges /
  fixed-bucket histograms rendered as (and re-parsed from) Prometheus
  text exposition;
* :mod:`~repro.obs.telemetry.logs` — a bounded ring of structured JSON
  records with trace/job/cell correlation ids;
* :mod:`~repro.obs.telemetry.timeline` — the unified Perfetto export
  merging server spans with re-simulated per-cell pipeline traces.

See ``docs/TELEMETRY.md`` for the span model and the metric catalog.
"""

from repro.obs.telemetry.logs import LogRing
from repro.obs.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    LATENCY_BUCKETS_MS,
    MetricsRegistry,
    PROBE_BUCKETS_MS,
    ParsedScrape,
    parse_prometheus_text,
)
from repro.obs.telemetry.spans import (
    CURRENT_SPAN,
    Span,
    SpanTracer,
    TRACE_HEADER,
    build_tree,
    child_coverage,
    format_trace_header,
    parse_trace_header,
    walk,
)
from repro.obs.telemetry.timeline import (
    merge_timeline,
    resimulate_cell_trace,
    span_slices,
)

__all__ = [
    "CURRENT_SPAN",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_MS",
    "LogRing",
    "MetricsRegistry",
    "PROBE_BUCKETS_MS",
    "ParsedScrape",
    "Span",
    "SpanTracer",
    "TRACE_HEADER",
    "build_tree",
    "child_coverage",
    "format_trace_header",
    "merge_timeline",
    "parse_prometheus_text",
    "parse_trace_header",
    "resimulate_cell_trace",
    "span_slices",
    "walk",
]
