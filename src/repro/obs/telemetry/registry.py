"""Metrics registry: counters, gauges, histograms, Prometheus text.

Stdlib-only and deliberately tiny — the fleet needs maybe two dozen
series, not a client library.  The design rules:

* **Deterministic under concurrency** — every mutation takes the
  registry lock, and :meth:`MetricsRegistry.render` emits metrics and
  label sets in sorted order, so two scrapes of identical state are
  byte-identical (the telemetry parity tests depend on this).
* **Fixed bucket bounds** — histograms declare their buckets at
  registration; nothing adapts at runtime, so bucket series are stable
  across restarts and diffable across runs.
* **Mirrored counters** — live subsystems (worker pool, single-flight
  table, result cache) already keep authoritative counters;
  :meth:`Counter.set_total` lets the scrape path mirror them into the
  exposition without double-counting logic on hot paths.

:func:`parse_prometheus_text` is the other half of the contract: the
tests and the CI smoke parse the server's own scrape with it, so the
exposition format is validated by construction, not by eyeball.
"""

from __future__ import annotations

import dataclasses
import re
import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

LabelKey = Tuple[Tuple[str, str], ...]

#: Service-latency bucket bounds, milliseconds.  Spans the warm-hit SLO
#: (5 ms) on the low end and a slow cold simulation on the high end.
LATENCY_BUCKETS_MS: Tuple[float, ...] = (
    0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1000.0, 2500.0, 5000.0, 10000.0)

#: Cache-probe bucket bounds, milliseconds — a probe is a file read,
#: so the interesting resolution is sub-millisecond.
PROBE_BUCKETS_MS: Tuple[float, ...] = (
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 100.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace("\"", "\\\"") \
        .replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def _label_text(key: LabelKey, extra: Optional[Tuple[str, str]]
                = None) -> str:
    pairs = list(key)
    if extra is not None:
        pairs.append(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape(value)}"'
                     for name, value in pairs)
    return "{" + inner + "}"


class _Metric:
    """Shared naming/label plumbing for the three metric kinds."""

    kind = "untyped"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], lock: threading.Lock) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"bad metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"bad label name {label!r} on {name}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = lock

    def _key(self, labels: Mapping[str, object]) -> LabelKey:
        if set(labels) != set(self.labelnames):
            raise ValueError(
                f"{self.name}: labels {sorted(labels)} != declared "
                f"{sorted(self.labelnames)}")
        return tuple((name, str(labels[name]))
                     for name in self.labelnames)

    def render(self) -> List[str]:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically non-decreasing totals."""

    kind = "counter"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], lock: threading.Lock) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._values: Dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"{self.name}: counters only go up")
        key = self._key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def set_total(self, value: float, **labels: object) -> None:
        """Mirror an external monotonic counter (never decreases)."""
        key = self._key(labels)
        with self._lock:
            if value >= self._values.get(key, 0.0):
                self._values[key] = value

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}{_label_text(key)} {_format_value(value)}"
                for key, value in items]


class Gauge(_Metric):
    """A value that goes up and down (set at scrape-refresh time)."""

    kind = "gauge"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], lock: threading.Lock) -> None:
        super().__init__(name, help_text, labelnames, lock)
        self._values: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[self._key(labels)] = float(value)

    def value(self, **labels: object) -> float:
        with self._lock:
            return self._values.get(self._key(labels), 0.0)

    def render(self) -> List[str]:
        with self._lock:
            items = sorted(self._values.items())
        return [f"{self.name}{_label_text(key)} {_format_value(value)}"
                for key, value in items]


class Histogram(_Metric):
    """Cumulative-bucket histogram with fixed bounds."""

    kind = "histogram"

    def __init__(self, name: str, help_text: str,
                 labelnames: Sequence[str], lock: threading.Lock,
                 buckets: Sequence[float]) -> None:
        super().__init__(name, help_text, labelnames, lock)
        bounds = sorted(float(bound) for bound in buckets)
        if not bounds:
            raise ValueError(f"{self.name}: histogram needs buckets")
        self.bounds: Tuple[float, ...] = tuple(bounds)
        self._counts: Dict[LabelKey, List[int]] = {}
        self._sums: Dict[LabelKey, float] = {}
        self._totals: Dict[LabelKey, int] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = self._key(labels)
        with self._lock:
            counts = self._counts.get(key)
            if counts is None:
                counts = [0] * len(self.bounds)
                self._counts[key] = counts
            for index, bound in enumerate(self.bounds):
                if value <= bound:
                    counts[index] += 1
            self._sums[key] = self._sums.get(key, 0.0) + value
            self._totals[key] = self._totals.get(key, 0) + 1

    def count(self, **labels: object) -> int:
        with self._lock:
            return self._totals.get(self._key(labels), 0)

    def render(self) -> List[str]:
        lines: List[str] = []
        with self._lock:
            items = sorted(self._counts.items())
            sums = dict(self._sums)
            totals = dict(self._totals)
        for key, counts in items:
            for bound, count in zip(self.bounds, counts):
                lines.append(
                    f"{self.name}_bucket"
                    f"{_label_text(key, ('le', _format_value(bound)))} "
                    f"{count}")
            lines.append(
                f"{self.name}_bucket{_label_text(key, ('le', '+Inf'))} "
                f"{totals.get(key, 0)}")
            lines.append(f"{self.name}_sum{_label_text(key)} "
                         f"{_format_value(round(sums.get(key, 0.0), 6))}")
            lines.append(f"{self.name}_count{_label_text(key)} "
                         f"{totals.get(key, 0)}")
        return lines


class MetricsRegistry:
    """Owns every metric; renders the Prometheus text exposition."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: "OrderedDict[str, _Metric]" = OrderedDict()

    def _register(self, metric: _Metric) -> _Metric:
        existing = self._metrics.get(metric.name)
        if existing is not None:
            if type(existing) is not type(metric):
                raise ValueError(
                    f"{metric.name} already registered as "
                    f"{existing.kind}")
            return existing
        self._metrics[metric.name] = metric
        return metric

    def counter(self, name: str, help_text: str,
                labelnames: Sequence[str] = ()) -> Counter:
        metric = self._register(
            Counter(name, help_text, labelnames, self._lock))
        assert isinstance(metric, Counter)
        return metric

    def gauge(self, name: str, help_text: str,
              labelnames: Sequence[str] = ()) -> Gauge:
        metric = self._register(
            Gauge(name, help_text, labelnames, self._lock))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(self, name: str, help_text: str,
                  labelnames: Sequence[str] = (),
                  buckets: Sequence[float] = LATENCY_BUCKETS_MS,
                  ) -> Histogram:
        metric = self._register(
            Histogram(name, help_text, labelnames, self._lock, buckets))
        assert isinstance(metric, Histogram)
        return metric

    def render(self) -> str:
        """The ``GET /metrics`` body: sorted, escaped, reparseable."""
        lines: List[str] = []
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            lines.append(f"# HELP {name} {_escape(metric.help_text)}")
            lines.append(f"# TYPE {name} {metric.kind}")
            lines.extend(metric.render())
        return "\n".join(lines) + "\n"


# -- scrape parsing (the validating half of the contract) -----------------

_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?P<labels>\{[^}]*\})?\s+"
    r"(?P<value>[-+]?(?:[0-9.eE+-]+|Inf|NaN))$")
_LABEL_PAIR_RE = re.compile(
    r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclasses.dataclass
class ParsedScrape:
    """A decoded ``/metrics`` body."""

    #: metric family -> declared TYPE.
    types: Dict[str, str]
    #: full sample key (``name{a="b"}``) -> value.
    samples: Dict[str, float]

    def series(self, prefix: str) -> Dict[str, float]:
        """Samples whose name starts with ``prefix``."""
        return {key: value for key, value in self.samples.items()
                if key.split("{")[0].startswith(prefix)}


def parse_prometheus_text(text: str) -> ParsedScrape:
    """Parse (and thereby validate) a text exposition body.

    Raises :class:`ValueError` naming the first malformed line —
    used by the tests and the CI smoke as the format gate.
    """
    types: Dict[str, str] = {}
    samples: Dict[str, float] = {}
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram", "summary",
                    "untyped"):
                raise ValueError(f"line {number}: bad TYPE line {raw!r}")
            types[parts[2]] = parts[3]
            continue
        if line.startswith("# HELP "):
            if len(line.split(None, 3)) < 3:
                raise ValueError(f"line {number}: bad HELP line {raw!r}")
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {number}: bad sample line {raw!r}")
        labels = match.group("labels") or ""
        if labels:
            stripped = labels[1:-1].rstrip(",")
            consumed = ",".join(
                f'{name}="{value}"'
                for name, value in _LABEL_PAIR_RE.findall(stripped))
            if consumed != stripped:
                raise ValueError(
                    f"line {number}: bad label syntax {raw!r}")
        key = match.group("name") + labels
        if key in samples:
            raise ValueError(f"line {number}: duplicate sample {key}")
        value_text = match.group("value")
        if value_text.endswith("Inf"):
            value = float("-inf") if value_text.startswith("-") \
                else float("inf")
        else:
            value = float(value_text)
        samples[key] = value
    return ParsedScrape(types=types, samples=samples)
