"""Span tracer: latency attribution for the serving fleet.

The CPI stack attributes every simulated cycle to a cause and insists
the slots sum exactly to the measured total.  This module applies the
same discipline to wall time: a served job decomposes into a tree of
**spans** (submit -> admission -> per-cell flight -> cache probe ->
queue wait -> worker execution -> cache store -> publish) whose root
duration equals the job's measured wall time, and whose children
account for (almost) all of it.  What the CPI stack is to cycles, the
span tree is to milliseconds.

Design constraints, in order:

* **Deterministic IDs** — no ``uuid``, no ``random``: span and trace
  identifiers come from a monotonic counter salted with the process id,
  so two servers on one box cannot collide and sim-lint's determinism
  rules (SIM-D003) stay clean.
* **Bounded memory** — spans are kept per job in an LRU dict capped at
  ``keep_jobs``; spans finished before their job exists (HTTP parse /
  admission) sit in a bounded loose list until :meth:`SpanTracer.adopt`
  moves them under the job.
* **Context propagation** — a client sends ``X-Repro-Trace:
  <trace_id>[:<parent_span_id>]``; :func:`parse_trace_header` /
  :func:`format_trace_header` are the two ends of that contract, and a
  :mod:`contextvars` slot carries the active span across ``await``
  boundaries inside the server.

Timestamps are ``time.perf_counter()`` seconds internally and exported
as milliseconds relative to the tracer's origin, so wire-format numbers
stay small and subtraction-safe.
"""

from __future__ import annotations

import contextvars
import itertools
import os
import re
import time
from collections import OrderedDict, deque
from typing import Any, Deque, Dict, Iterator, List, Optional, Tuple

JsonDict = Dict[str, Any]

#: Wire header carrying trace context over HTTP.
TRACE_HEADER = "X-Repro-Trace"

_ID_PATTERN = re.compile(r"^[A-Za-z0-9._-]{1,64}$")

#: Active span for the current task (server-side context propagation).
CURRENT_SPAN: "contextvars.ContextVar[Optional[Span]]" = \
    contextvars.ContextVar("repro_current_span", default=None)


class Span:
    """One timed operation in a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "job",
                 "cell", "start_s", "end_s", "status", "attrs")

    def __init__(self, trace_id: str, span_id: str, parent_id: Optional[str],
                 name: str, job: Optional[str], cell: Optional[int],
                 start_s: float, attrs: Dict[str, object]) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.job = job
        self.cell = cell
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.status = "ok"
        self.attrs = attrs

    @property
    def duration_s(self) -> Optional[float]:
        if self.end_s is None:
            return None
        return self.end_s - self.start_s


def parse_trace_header(value: Optional[str]) -> Tuple[Optional[str],
                                                      Optional[str]]:
    """Decode ``X-Repro-Trace``; malformed input degrades to no trace.

    Returns ``(trace_id, parent_span_id)``; both ``None`` when the
    header is absent or invalid (a bad header must never fail a
    request — it just loses client-side correlation).
    """
    if not value:
        return None, None
    trace_id, _, parent_id = value.strip().partition(":")
    if not _ID_PATTERN.match(trace_id):
        return None, None
    if parent_id and not _ID_PATTERN.match(parent_id):
        return trace_id, None
    return trace_id, parent_id or None


def format_trace_header(trace_id: str,
                        parent_id: Optional[str] = None) -> str:
    """Encode trace context for the ``X-Repro-Trace`` header."""
    return f"{trace_id}:{parent_id}" if parent_id else trace_id


class SpanTracer:
    """Creates, finishes, and retains spans, grouped by job id."""

    def __init__(self, keep_jobs: int = 256,
                 keep_loose: int = 1024) -> None:
        self.origin_s = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        self.keep_jobs = max(1, keep_jobs)
        self._ids = itertools.count(1)
        # The pid salt keeps ids unique across servers sharing a box.
        self._prefix = f"{os.getpid() & 0xFFFFF:05x}"
        self._by_job: "OrderedDict[str, List[Span]]" = OrderedDict()
        self._loose: Deque[Span] = deque(maxlen=max(1, keep_loose))
        #: Spans started / finished (the registry mirrors these).
        self.started = 0
        self.finished = 0

    # -- id generation ----------------------------------------------------

    def new_trace_id(self) -> str:
        return f"t{self._prefix}-{next(self._ids):06x}"

    def _new_span_id(self) -> str:
        return f"s{self._prefix}-{next(self._ids):06x}"

    # -- span lifecycle ---------------------------------------------------

    def start(self, name: str, *, parent: Optional[Span] = None,
              trace_id: Optional[str] = None,
              parent_id: Optional[str] = None,
              job: Optional[str] = None, cell: Optional[int] = None,
              start_s: Optional[float] = None,
              **attrs: object) -> Span:
        """Open a span.  ``parent`` wins over explicit ids; with
        neither, the contextvar's active span (if any) is the parent,
        else a fresh trace starts."""
        if parent is None and trace_id is None and parent_id is None:
            parent = CURRENT_SPAN.get()
        if parent is not None:
            trace_id = parent.trace_id
            parent_id = parent.span_id
            if job is None:
                job = parent.job
        if trace_id is None:
            trace_id = self.new_trace_id()
        span = Span(trace_id=trace_id, span_id=self._new_span_id(),
                    parent_id=parent_id, name=name, job=job, cell=cell,
                    start_s=(start_s if start_s is not None
                             else time.perf_counter()),  # sim-lint: ignore[SIM-D004]
                    attrs=dict(attrs))
        self.started += 1
        return span

    def finish(self, span: Span, *, end_s: Optional[float] = None,
               status: Optional[str] = None, **attrs: object) -> Span:
        """Close a span and retain it; a double-finish is a no-op (the
        first close's timing and status win)."""
        if span.end_s is not None:
            return span
        span.end_s = end_s if end_s is not None \
            else time.perf_counter()  # sim-lint: ignore[SIM-D004]
        if status is not None:
            span.status = status
        span.attrs.update(attrs)
        self.finished += 1
        self._retain(span)
        return span

    def span(self, name: str, **kwargs: object) -> "_SpanScope":
        """``with tracer.span("name") as s:`` convenience scope."""
        return _SpanScope(self, name, kwargs)

    # -- retention --------------------------------------------------------

    def _retain(self, span: Span) -> None:
        if span.job is None:
            self._loose.append(span)
            return
        bucket = self._by_job.get(span.job)
        if bucket is None:
            bucket = []
            self._by_job[span.job] = bucket
            while len(self._by_job) > self.keep_jobs:
                self._by_job.popitem(last=False)
        bucket.append(span)

    def adopt(self, span: Span, job: str) -> None:
        """Re-home a span (finished before its job existed) under the
        job, so admission-time spans appear in ``/jobs/<id>/spans``."""
        span.job = job
        if span.end_s is None:
            return  # still open; _retain will file it at finish time
        try:
            self._loose.remove(span)
        except ValueError:
            return  # evicted from the bounded loose list — drop it
        self._retain(span)

    # -- export -----------------------------------------------------------

    def _to_ms(self, seconds: float) -> float:
        return round((seconds - self.origin_s) * 1000.0, 3)

    def export(self, span: Span) -> JsonDict:
        duration = span.duration_s
        return {
            "trace": span.trace_id,
            "span": span.span_id,
            "parent": span.parent_id,
            "name": span.name,
            "job": span.job,
            "cell": span.cell,
            "start_ms": self._to_ms(span.start_s),
            "end_ms": (self._to_ms(span.end_s)
                       if span.end_s is not None else None),
            "duration_ms": (round(duration * 1000.0, 3)
                            if duration is not None else None),
            "status": span.status,
            "attrs": dict(span.attrs),
        }

    def job_spans(self, job: str) -> List[JsonDict]:
        """Finished spans for a job, in finish order."""
        return [self.export(span) for span in self._by_job.get(job, [])]


class _SpanScope:
    """Context manager wrapper so hot paths read naturally."""

    __slots__ = ("_tracer", "_name", "_kwargs", "_token", "span")

    def __init__(self, tracer: SpanTracer, name: str,
                 kwargs: Dict[str, object]) -> None:
        self._tracer = tracer
        self._name = name
        self._kwargs = kwargs
        self._token: Optional["contextvars.Token[Optional[Span]]"] = None
        self.span: Optional[Span] = None

    def __enter__(self) -> Span:
        self.span = self._tracer.start(self._name, **self._kwargs)  # type: ignore[arg-type]
        self._token = CURRENT_SPAN.set(self.span)
        return self.span

    def __exit__(self, exc_type: object, exc: object,
                 tb: object) -> None:
        assert self.span is not None
        if self._token is not None:
            CURRENT_SPAN.reset(self._token)
        status = "error" if exc_type is not None else None
        self._tracer.finish(self.span, status=status)


# -- tree analysis (wire-format dicts, shared by tests / CLI / smoke) -----

def build_tree(spans: List[JsonDict],
               root_name: str = "job") -> Optional[JsonDict]:
    """Nest exported spans into a tree rooted at the ``root_name`` span.

    Returns ``None`` when no such span exists.  Each node is the span
    dict plus a ``"children"`` list sorted by start time.
    """
    root: Optional[JsonDict] = None
    for span in spans:
        if span.get("name") == root_name:
            root = span
            break
    if root is None:
        return None
    children: Dict[str, List[JsonDict]] = {}
    for span in spans:
        parent = span.get("parent")
        if isinstance(parent, str):
            children.setdefault(parent, []).append(span)

    def _node(span: JsonDict) -> JsonDict:
        kids = sorted(children.get(str(span.get("span")), []),
                      key=lambda s: float(s.get("start_ms") or 0.0))
        return {**span, "children": [_node(kid) for kid in kids]}

    return _node(root)


def _union_ms(intervals: List[Tuple[float, float]]) -> float:
    total = 0.0
    last_end = float("-inf")
    for start, end in sorted(intervals):
        if end <= last_end:
            continue
        total += end - max(start, last_end)
        last_end = end
    return total


def child_coverage(tree: JsonDict) -> float:
    """Fraction of the root span covered by the union of its direct
    children, clipped to the root window — the span-tree analogue of
    the CPI stack's "slots sum to cycles" invariant.  1.0 == every
    millisecond of the root is attributed to a child."""
    start = float(tree.get("start_ms") or 0.0)
    end_value = tree.get("end_ms")
    if end_value is None:
        return 0.0
    end = float(end_value)
    if end <= start:
        return 1.0
    intervals: List[Tuple[float, float]] = []
    for child in tree.get("children", []):
        child_end = child.get("end_ms")
        if child_end is None:
            continue
        lo = max(float(child.get("start_ms") or 0.0), start)
        hi = min(float(child_end), end)
        if hi > lo:
            intervals.append((lo, hi))
    return _union_ms(intervals) / (end - start)


def walk(tree: JsonDict) -> Iterator[JsonDict]:
    """Depth-first iteration over a :func:`build_tree` result."""
    stack = [tree]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(node.get("children", []))
