"""Unified Perfetto timeline: server spans + simulated pipelines.

``repro timeline JOB_ID`` produces **one** Chrome-trace file showing a
served job end to end: the server-side span tree (HTTP arrival,
admission, per-cell cache probe / queue wait / worker execution) as
complete slices, and — nested inside selected cells' execution
windows — the simulated pipeline itself (instruction slices, event
marks, counter series) from :mod:`repro.obs.chrometrace`.

Two time domains meet here.  Server spans are wall milliseconds;
simulated traces tick in cycles (one cycle == one trace microsecond by
the chrometrace convention).  The merge rescales each cell's simulated
trace onto that cell's real execution window::

    ts_us' = window_start_us + ts_cycles * (window_dur_us / cycles)

so the simulated pipeline visually fills exactly the wall-clock slice
the fleet spent computing it — zooming into a ``worker.exec`` span
reveals the microarchitecture that was executing during it.

Cell traces are **re-simulated** on demand: the server's progress
events carry only summaries (raw event streams are deliberately not
pickled through the cache), but the engine is deterministic — the
golden-parity suite pins this — so regenerating a cell from its
result row (benchmark / label / seed / n_instructions) reproduces the
run bit-for-bit.  The exporter validates its own output with
:func:`repro.obs.chrometrace.validate_chrome_trace` before writing.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.obs.chrometrace import (
    JsonDict,
    export_chrome_trace,
    validate_chrome_trace,
)

#: pid of the server-span process row in the merged document.
SERVER_PID = 0
#: First pid used for per-cell simulated-trace process rows; each cell
#: gets a block of three (pipeline / events / metrics).
CELL_PID_BASE = 10
_CELL_PID_STRIDE = 3

_LABEL_RE = re.compile(r"^(?P<preset>[a-z]+)-(?P<ports>\d+)p$")


def machine_for_label(label: str) -> Any:
    """Rebuild the machine config a serve-spec label names.

    The serving layer labels every cell ``{preset}-{ports}p`` (see
    ``repro.serve.spec.expand_cells``); this inverts that mapping so a
    result row is enough to re-simulate the cell.
    """
    from dataclasses import replace

    from repro.config import (
        base_machine,
        conventional_lsq,
        full_techniques_lsq,
        segmented_lsq,
        techniques_lsq,
    )
    presets = {
        "conventional": conventional_lsq,
        "techniques": techniques_lsq,
        "segmented": segmented_lsq,
        "full": full_techniques_lsq,
    }
    match = _LABEL_RE.match(label)
    if match is None or match.group("preset") not in presets:
        raise ValueError(
            f"label {label!r} is not a serve-spec '{{preset}}-{{N}}p' "
            f"label; cannot rebuild the machine")
    factory = presets[match.group("preset")]
    return replace(base_machine(),
                   lsq=factory(ports=int(match.group("ports"))))


def resimulate_cell_trace(row: Mapping[str, object],
                          pipetrace: int = 48) -> JsonDict:
    """Re-run one result row's cell under full observation.

    ``row`` is a server result row (``benchmark``/``label``/``seed``/
    ``n_instructions``).  Deterministic replay: same trace generator,
    same machine, same seed — the stats are bit-identical to the served
    run (cache untouched; this is a fresh in-process simulation).
    """
    from repro.obs import ObsConfig, Observer
    from repro.pipeline.debug import PipelineTracer
    from repro.pipeline.processor import Processor
    from repro.workload import generate_trace

    benchmark = str(row["benchmark"])
    label = str(row["label"])
    trace = generate_trace(benchmark,
                           n_instructions=int(str(row["n_instructions"])),
                           seed=int(str(row["seed"])))
    observer = Observer(ObsConfig())
    processor = Processor(machine_for_label(label), obs=observer)
    tracer = PipelineTracer(limit=max(1, pipetrace))
    processor.tracer = tracer
    processor.run(trace)
    return export_chrome_trace(observer, tracer=tracer,
                               label=f"{benchmark} x {label}")


# -- span slices ----------------------------------------------------------

def _span_meta(cells: Sequence[int]) -> List[JsonDict]:
    rows: List[JsonDict] = [
        {"ph": "M", "pid": SERVER_PID, "ts": 0, "name": "process_name",
         "args": {"name": "serve fleet"}},
        {"ph": "M", "pid": SERVER_PID, "ts": 0, "name": "thread_name",
         "tid": 0, "args": {"name": "job"}},
    ]
    for cell in sorted(set(cells)):
        rows.append({"ph": "M", "pid": SERVER_PID, "ts": 0,
                     "name": "thread_name", "tid": cell + 1,
                     "args": {"name": f"cell {cell}"}})
    return rows


def span_slices(spans: Sequence[JsonDict],
                origin_ms: float) -> List[JsonDict]:
    """Finished spans as complete ("X") slices on the server pid.

    One thread row per cell (tid = cell index + 1); job-level spans on
    tid 0.  ``origin_ms`` (normally the root span's start) becomes
    trace time zero.
    """
    slices: List[JsonDict] = []
    cells: List[int] = []
    for span in spans:
        end_ms = span.get("end_ms")
        if end_ms is None:
            continue
        start_us = (float(span.get("start_ms") or 0.0) - origin_ms) \
            * 1000.0
        duration_us = (float(end_ms)
                       - float(span.get("start_ms") or 0.0)) * 1000.0
        cell = span.get("cell")
        tid = int(str(cell)) + 1 if cell is not None else 0
        if cell is not None:
            cells.append(int(str(cell)))
        slices.append({
            "name": str(span.get("name")),
            "cat": "span",
            "ph": "X",
            "ts": round(start_us, 3),
            "dur": round(max(duration_us, 1.0), 3),
            "pid": SERVER_PID,
            "tid": tid,
            "args": {"span": span.get("span"),
                     "trace": span.get("trace"),
                     "status": span.get("status"),
                     **dict(span.get("attrs") or {})},
        })
    return _span_meta(cells) + slices


# -- merging --------------------------------------------------------------

@dataclasses.dataclass
class _Window:
    start_us: float
    dur_us: float
    name: str


def _exec_window(spans: Sequence[JsonDict], cell: int,
                 origin_ms: float) -> Optional[_Window]:
    """The wall window a cell's simulated trace is scaled into:
    its ``worker.exec`` span when it computed, else the whole cell
    span (cache hits have no execution window)."""
    best: Optional[_Window] = None
    for name in ("worker.exec", "cell"):
        for span in spans:
            if span.get("name") != name or span.get("cell") != cell:
                continue
            end_ms = span.get("end_ms")
            if end_ms is None:
                continue
            start = (float(span.get("start_ms") or 0.0) - origin_ms) \
                * 1000.0
            dur = (float(end_ms)
                   - float(span.get("start_ms") or 0.0)) * 1000.0
            best = _Window(start_us=start, dur_us=max(dur, 1.0),
                           name=name)
            break
        if best is not None:
            break
    return best


def _rescale_cell_events(doc: JsonDict, cell: int, pid_base: int,
                         window: _Window) -> List[JsonDict]:
    other = doc.get("otherData") or {}
    cycles = max(int(other.get("cycles") or 0), 1)
    scale = window.dur_us / cycles
    rows: List[JsonDict] = []
    for event in doc.get("traceEvents", []):
        moved = dict(event)
        moved["pid"] = pid_base + int(event.get("pid") or 0)
        if event.get("ph") == "M":
            if event.get("name") == "process_name":
                args = dict(moved.get("args") or {})
                args["name"] = f"cell {cell}: {args.get('name', '')}"
                moved["args"] = args
            rows.append(moved)
            continue
        moved["ts"] = round(
            window.start_us + float(event.get("ts") or 0.0) * scale, 3)
        if "dur" in moved:
            moved["dur"] = round(
                max(float(moved["dur"]) * scale, 0.001), 3)
        rows.append(moved)
    return rows


def merge_timeline(job: Mapping[str, object],
                   spans: Sequence[JsonDict],
                   cell_traces: Sequence[Tuple[int, JsonDict]],
                   ) -> JsonDict:
    """Build the unified document: spans + rescaled cell traces.

    ``spans`` is the ``/jobs/<id>/spans`` wire list; ``cell_traces``
    pairs a cell index with its :func:`resimulate_cell_trace` output.
    The result passes :func:`validate_chrome_trace` by construction
    (and callers assert it anyway).
    """
    origin_ms = 0.0
    for span in spans:
        if span.get("name") == "job":
            origin_ms = float(span.get("start_ms") or 0.0)
            break
    events = span_slices(spans, origin_ms)
    scaled: List[Dict[str, object]] = []
    for slot, (cell, doc) in enumerate(cell_traces):
        window = _exec_window(spans, cell, origin_ms)
        if window is None:
            continue
        pid_base = CELL_PID_BASE + slot * _CELL_PID_STRIDE
        events.extend(_rescale_cell_events(doc, cell, pid_base, window))
        other = doc.get("otherData") or {}
        scaled.append({"cell": cell, "pid": pid_base,
                       "window": window.name,
                       "window_us": round(window.dur_us, 3),
                       "cycles": other.get("cycles"),
                       "label": other.get("label")})
    merged: JsonDict = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "kind": "repro-timeline",
            "job": job.get("id"),
            "trace": job.get("trace"),
            "state": job.get("state"),
            "elapsed_s": job.get("elapsed_s"),
            "spans": sum(1 for span in spans
                         if span.get("end_ms") is not None),
            "cells": scaled,
        },
    }
    problems = validate_chrome_trace(merged)
    if problems:
        raise ValueError(
            f"merged timeline failed schema validation: {problems[0]}")
    return merged
