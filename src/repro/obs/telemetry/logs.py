"""Structured JSON logging with trace/job/cell correlation ids.

Replaces the serve stack's ad-hoc prints: every record is one flat
dict — ``seq``, ``ts_ms`` (milliseconds since the ring was created),
``level``, ``event``, plus the correlation ids (``trace``/``job``/
``cell``) and free-form fields.  Records land in a bounded in-memory
ring (``GET /logs?job=...`` reads it back); optionally each record is
also echoed to a stream as one JSON line, which is what ``repro
serve`` does to stdout.

The ring is deliberately lossy-at-the-tail: when full, the oldest
record is dropped and ``dropped`` counts it.  Telemetry must never be
the thing that runs the server out of memory.
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from typing import Any, Deque, Dict, List, Optional, TextIO

JsonDict = Dict[str, Any]

LEVELS = ("debug", "info", "warning", "error")


class LogRing:
    """Bounded, thread-safe ring of structured log records."""

    def __init__(self, capacity: int = 2048,
                 echo: Optional[TextIO] = None) -> None:
        self.capacity = max(1, capacity)
        self._rows: Deque[JsonDict] = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._origin_s = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        self._seq = 0
        self.echo = echo
        #: Records pushed out of the ring by newer ones.
        self.dropped = 0
        #: Records emitted, by level.
        self.counts: Dict[str, int] = {}

    def log(self, level: str, event: str, *,
            trace: Optional[str] = None, job: Optional[str] = None,
            cell: Optional[int] = None, **fields: object) -> JsonDict:
        """Append one record; returns it (handy for tests)."""
        if level not in LEVELS:
            level = "info"
        now_ms = round(
            (time.perf_counter() - self._origin_s) * 1000.0,  # sim-lint: ignore[SIM-D004]
            3)
        with self._lock:
            self._seq += 1
            record: JsonDict = {"seq": self._seq, "ts_ms": now_ms,
                                "level": level, "event": event,
                                "trace": trace, "job": job, "cell": cell}
            for name, value in fields.items():
                if name not in record:
                    record[name] = value
            if len(self._rows) == self.capacity:
                self.dropped += 1
            self._rows.append(record)
            self.counts[level] = self.counts.get(level, 0) + 1
        if self.echo is not None:
            try:
                self.echo.write(json.dumps(record) + "\n")
                self.echo.flush()
            except (OSError, ValueError):
                pass  # a closed stdout must not take the server down
        return record

    def rows(self, *, job: Optional[str] = None,
             level: Optional[str] = None,
             limit: int = 0) -> List[JsonDict]:
        """Matching records, oldest first; ``limit`` keeps the newest."""
        with self._lock:
            rows = [dict(row) for row in self._rows
                    if (job is None or row.get("job") == job)
                    and (level is None or row.get("level") == level)]
        if limit > 0:
            rows = rows[-limit:]
        return rows

    def __len__(self) -> int:
        with self._lock:
            return len(self._rows)
