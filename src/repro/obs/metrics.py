"""Interval metrics: per-N-cycle time series over one simulation.

The paper's occupancy and bandwidth numbers (Tables 4-6) are end-of-run
averages; this sampler records the same quantities as a *time series* so
a port saturating for 2k cycles, or an IPC dip around a squash storm, is
visible instead of averaged away.

Every ``interval`` cycles the sampler snapshots structure occupancies
(point-in-time) and counter *deltas* over the interval (search traffic,
port stalls, L1-D misses), derives interval IPC and MPKI, and appends a
:class:`Sample` row to a bounded ring buffer.  Export is plain
JSON-able dicts or CSV — no plotting dependencies.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, List, NamedTuple, Sequence, \
    Union

if TYPE_CHECKING:
    from repro.pipeline.processor import Processor


class Sample(NamedTuple):
    """One interval row: point occupancies plus interval deltas."""

    cycle: int            # last cycle of the interval (inclusive)
    committed: int        # instructions committed during the interval
    ipc: float            # interval IPC (committed / interval cycles)
    rob_occ: int          # ROB entries at sample time
    lq_occ: int           # load-queue entries at sample time
    sq_occ: int           # store-queue entries at sample time
    lb_occ: int           # load-buffer entries at sample time
    sq_searches: int      # SQ forwarding searches during the interval
    lq_searches: int      # LQ ordering searches during the interval
    port_stalls: int      # SQ+LQ+D-cache port retries during the interval
    l1d_misses: int       # L1-D misses during the interval
    mpki: float           # interval L1-D misses per kilo-instruction
    port_util: float      # search events per port-cycle (0..~1)


#: SimStats counters whose interval deltas feed a :class:`Sample`.
_DELTA_FIELDS = ("committed", "sq_searches", "lq_searches",
                 "sq_port_stalls", "lq_port_stalls", "dcache_port_stalls")


def stream_points(samples: Sequence[Sample],
                  limit: int = 16) -> List[Dict[str, Union[int, float]]]:
    """Compact tail of an interval series for a live progress feed.

    The serving layer (:mod:`repro.serve`) attaches one of these to
    every finished cell's progress event, so a streaming client sees
    the shape of the run — IPC trajectory, queue pressure, port
    saturation — not just a completion tick.  ``limit`` bounds the
    payload (the full series still travels in the cached
    :class:`~repro.obs.ObsSummary`); the most recent rows win because
    they describe the run's steady state.
    """
    tail = list(samples)[-limit:] if limit > 0 else []
    return [{
        "cycle": row.cycle,
        "ipc": round(row.ipc, 4),
        "rob_occ": row.rob_occ,
        "lq_occ": row.lq_occ,
        "sq_occ": row.sq_occ,
        "lb_occ": row.lb_occ,
        "port_util": round(row.port_util, 4),
        "mpki": round(row.mpki, 3),
    } for row in tail]


class IntervalSampler:
    """Ring buffer of :class:`Sample` rows, one per ``interval`` cycles."""

    def __init__(self, interval: int = 64, capacity: int = 4096) -> None:
        if interval < 1:
            raise ValueError("sample interval must be >= 1")
        if capacity < 1:
            raise ValueError("sample capacity must be >= 1")
        self.interval = interval
        self.capacity = capacity
        #: Rows evicted from the ring buffer (oldest first).
        self.dropped = 0
        self._rows: Deque[Sample] = deque(maxlen=capacity)
        self._last: Dict[str, int] = {}
        self._last_l1d_misses = 0
        self._cycles_seen = 0

    # -- collection -------------------------------------------------------

    def on_cycle_end(self, processor: "Processor") -> None:
        """Called once per simulated cycle; samples every Nth."""
        self._cycles_seen += 1
        if self._cycles_seen % self.interval:
            return
        stats = processor.stats
        deltas = {}
        for name in _DELTA_FIELDS:
            value = int(getattr(stats, name))
            deltas[name] = value - self._last.get(name, 0)
            self._last[name] = value
        l1d_misses = processor.memory.l1d.stats.misses
        miss_delta = l1d_misses - self._last_l1d_misses
        self._last_l1d_misses = l1d_misses
        committed = deltas["committed"]
        searches = deltas["sq_searches"] + deltas["lq_searches"]
        ports = max(processor.machine.lsq.search_ports, 1)
        if len(self._rows) == self.capacity:
            self.dropped += 1
        self._rows.append(Sample(
            cycle=processor.cycle,
            committed=committed,
            ipc=committed / self.interval,
            rob_occ=len(processor.rob),
            lq_occ=len(processor.lsq.lq),
            sq_occ=len(processor.lsq.sq),
            lb_occ=len(processor.lsq.load_buffer),
            sq_searches=deltas["sq_searches"],
            lq_searches=deltas["lq_searches"],
            port_stalls=(deltas["sq_port_stalls"]
                         + deltas["lq_port_stalls"]
                         + deltas["dcache_port_stalls"]),
            l1d_misses=miss_delta,
            mpki=(miss_delta / committed * 1000.0) if committed else 0.0,
            port_util=searches / (ports * self.interval),
        ))

    # -- access / export --------------------------------------------------

    def rows(self) -> List[Sample]:
        return list(self._rows)

    def __len__(self) -> int:
        return len(self._rows)

    def as_dicts(self) -> List[Dict[str, Union[int, float]]]:
        return [dict(row._asdict()) for row in self._rows]

    def to_csv(self) -> str:
        """CSV text: header row plus one line per sample."""
        lines = [",".join(Sample._fields)]
        for row in self._rows:
            lines.append(",".join(f"{value:.6f}"
                                  if isinstance(value, float)
                                  else str(value)
                                  for value in row))
        return "\n".join(lines) + "\n"
