"""Machine configuration for the LSQ-scaling reproduction.

Every experiment in the paper is a combination of

* a **core** configuration (Table 1 of the paper: widths, window sizes,
  functional units, branch predictor, penalties),
* a **memory hierarchy** configuration (L1 I/D, L2, main memory), and
* a **load/store queue** configuration (the paper's contribution: number
  of entries, search ports, predictor mode, load-buffer mode,
  segmentation).

This module defines plain dataclasses for each of those pieces plus the
two machine presets used in the evaluation: :func:`base_machine`
(Section 4, Table 1) and :func:`scaled_machine` (Section 4.3: 12-wide
issue, 96-entry issue queue, 3-cycle L1 hit).
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field, replace
from typing import Any, Optional


def _default_watchdog_cycles() -> int:
    """Deadlock-watchdog threshold: ``REPRO_WATCHDOG_CYCLES`` env
    override, else 50k cycles (generous for any real stall)."""
    return int(os.environ.get("REPRO_WATCHDOG_CYCLES", "50000"))


class PredictorMode(enum.Enum):
    """How loads decide whether to search the store queue.

    ``CONVENTIONAL``
        Every load searches the store queue (the paper's base case).
        The store-set predictor is still used for memory-dependence
        speculation (loads wait on predicted-dependent unissued stores),
        as in Table 1.
    ``PAIR``
        The paper's store-load pair predictor: the LFST entry carries a
        multi-bit in-flight store counter; a load predicted independent
        skips the store-queue search, and store-load order violations are
        detected when the store *commits*.
    ``AGGRESSIVE``
        Alias-free idealisation of ``PAIR``: unbounded, exact-PC tables
        (Section 4.1.1's "aggressive predictor").
    ``PERFECT``
        Oracle: a load searches the store queue exactly when a matching
        older store is in flight (Section 4.1.1's "perfect predictor").
    """

    CONVENTIONAL = "conventional"
    PAIR = "pair"
    AGGRESSIVE = "aggressive"
    PERFECT = "perfect"


class LoadQueueSearchMode(enum.Enum):
    """How load-load order violations are detected (Section 2.2).

    ``SEARCH_LQ``
        Every load associatively searches the whole load queue
        (conventional; consumes a load-queue search port).
    ``LOAD_BUFFER``
        Loads search only the small load buffer of out-of-order-issued
        loads (the paper's technique; no load-queue port needed).
    ``IN_ORDER_ALWAYS_SEARCH``
        Loads issue in program order *with respect to each other* but
        still fruitlessly search the load queue (Figure 9's leftmost
        bar).
    ``IN_ORDER``
        Loads issue in program order and skip the search entirely
        (Figure 9's "0-entry load buffer").
    ``MEMBAR``
        No hardware load-load checks at all: ordering is the
        *programmer's* job via memory-barrier instructions in the trace
        (the software option of Section 2.2).
    ``INVALIDATION``
        Scheme (2) of Section 2.2 (MIPS R10000): no per-load searches;
        external coherence invalidations search the load queue instead.
        Invalidation traffic is injected at ``LsqConfig
        .invalidation_rate`` per cycle.
    """

    SEARCH_LQ = "search_lq"
    LOAD_BUFFER = "load_buffer"
    IN_ORDER_ALWAYS_SEARCH = "in_order_always_search"
    IN_ORDER = "in_order"
    MEMBAR = "membar"
    INVALIDATION = "invalidation"


class OrderingModel(enum.Enum):
    """Declared memory-consistency contract of an LSQ configuration.

    The litmus rig (:mod:`repro.litmus`) verifies every observed
    outcome against the outcome set this declaration allows.  The
    simulated pipeline commits any single interleaving sequentially, so
    clean runs can only produce SC-reachable outcomes; the declaration
    states the *contract* the configuration promises, which is what the
    checker holds faulted runs to.

    ``AUTO``
        Resolve from ``lq_search``: modes that enforce hardware
        load-load ordering declare ``TSO``; ``MEMBAR``/``INVALIDATION``
        (no per-load ordering promise) declare ``RELAXED``.
    ``SC``
        Sequential consistency: program order is preserved between all
        pairs of memory operations.
    ``TSO``
        Total store order: a store may be reordered after a later load
        (store buffering); all other program-order pairs hold.
    ``RELAXED``
        No ordering promises except those re-established by explicit
        ``MEMBAR`` instructions (Section 2.2's software option).
    """

    AUTO = "auto"
    SC = "sc"
    TSO = "tso"
    RELAXED = "relaxed"


class AllocationPolicy(enum.Enum):
    """Entry-allocation policy for the segmented LSQ (Section 3.1)."""

    NO_SELF_CIRCULAR = "no_self_circular"
    SELF_CIRCULAR = "self_circular"


class ContentionPolicy(enum.Enum):
    """What to do when pipelined segment searches collide (Section 3.2).

    ``SQUASH`` squashes the in-flight load whose search lost arbitration
    (the paper's primary mechanism); ``STALL`` delays the search by a
    cycle instead (the paper's alternative).
    """

    SQUASH = "squash"
    STALL = "stall"


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and timing of one cache level."""

    size_bytes: int
    associativity: int
    block_bytes: int
    hit_latency: int
    ports: int = 1

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.associativity * self.block_bytes)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.associativity * self.block_bytes):
            raise ValueError(
                "cache size must be a multiple of associativity * block size"
            )
        if self.num_sets & (self.num_sets - 1):
            raise ValueError("number of sets must be a power of two")


@dataclass(frozen=True)
class MemoryConfig:
    """The full hierarchy of Table 1."""

    l1i: CacheConfig = CacheConfig(
        size_bytes=64 * 1024, associativity=2, block_bytes=32, hit_latency=2, ports=2
    )
    l1d: CacheConfig = CacheConfig(
        size_bytes=64 * 1024, associativity=2, block_bytes=32, hit_latency=2, ports=4
    )
    l2: CacheConfig = CacheConfig(
        size_bytes=2 * 1024 * 1024,
        associativity=8,
        block_bytes=64,
        hit_latency=12,
        ports=1,
    )
    memory_latency: int = 150
    # Miss-status holding registers on the L1-D miss path: bounds the
    # number of outstanding misses and merges accesses to an in-flight
    # block.  0 = unmodelled (unbounded overlap), the paper's implicit
    # assumption and this repo's calibrated default.
    l1d_mshrs: int = 0


@dataclass(frozen=True)
class StoreSetConfig:
    """Store-set / store-load pair predictor tables (Table 1).

    ``clear_interval`` is the committed-instruction period of the
    Chrysos/Emer-style table invalidation, scaled down in proportion to
    our short synthetic runs (they clear every ~1M cycles over 100M+
    instruction runs).  Clearing is what separates the realistic pair
    predictor from the alias-free aggressive idealisation: after a
    clear, one violation re-trains a whole aliased SSIT group, while
    the aggressive predictor pays one squash per load PC.
    """

    ssit_entries: int = 4096
    lfst_entries: int = 128
    counter_bits: int = 3
    clear_interval: int = 8192
    # Chrysos/Emer refinement: stores within one store set execute in
    # program order (their memory-dependence paper's full rule; the LSQ
    # paper's mechanisms do not rely on it, so it defaults off).
    store_store_ordering: bool = False

    def __post_init__(self) -> None:
        for name in ("ssit_entries", "lfst_entries"):
            value = getattr(self, name)
            if value <= 0 or value & (value - 1):
                raise ValueError(f"{name} must be a positive power of two")
        if not 1 <= self.counter_bits <= 8:
            raise ValueError("counter_bits must be in [1, 8]")

    @property
    def counter_max(self) -> int:
        return (1 << self.counter_bits) - 1


@dataclass(frozen=True)
class LsqConfig:
    """Configuration of the load/store queue under evaluation.

    ``lq_entries``/``sq_entries`` give the capacity of the (split) load
    and store queues; when ``segments > 1`` each queue is built from
    ``segments`` chained segments of ``segment_entries`` entries and the
    flat capacities are ignored.
    """

    lq_entries: int = 32
    sq_entries: int = 32
    search_ports: int = 2
    predictor: PredictorMode = PredictorMode.CONVENTIONAL
    lq_search: LoadQueueSearchMode = LoadQueueSearchMode.SEARCH_LQ
    load_buffer_entries: int = 2
    segments: int = 1
    segment_entries: int = 28
    allocation: AllocationPolicy = AllocationPolicy.SELF_CIRCULAR
    contention: ContentionPolicy = ContentionPolicy.SQUASH
    # Section 3: forgo early (speculative) scheduling of load dependents
    # unless the load sits in the head segment.  Kept as a knob for the
    # ablation bench.
    early_scheduling_head_only: bool = True
    # Section 2.1: with the pair predictor, store-load order violations
    # are detected at store *commit* rather than store *execute*.  This
    # follows the predictor mode by default; the ablation bench overrides
    # it explicitly.
    detect_at_commit: Optional[bool] = None
    # Section 2.2, scheme (2): external-invalidation arrivals per cycle
    # when ``lq_search`` is INVALIDATION (the paper notes invalidations
    # are rare and may be filtered by L2/L3).
    invalidation_rate: float = 0.002
    # Declared memory-consistency contract (see OrderingModel): what
    # the litmus rig holds observed outcomes to.  AUTO derives it from
    # lq_search via resolved_ordering_model.
    ordering_model: OrderingModel = OrderingModel.AUTO
    # One combined queue holding loads and stores (the structure the
    # paper's Figure 5 draws "for brevity") instead of the split LQ/SQ
    # modern processors implement.  Capacity is shared and every search
    # competes for the same ports — the ablation that shows why the
    # split design is standard.
    unified_queue: bool = False

    def __post_init__(self) -> None:
        if self.lq_entries <= 0 or self.sq_entries <= 0:
            raise ValueError("queue capacities must be positive")
        if self.search_ports <= 0:
            raise ValueError("search_ports must be positive")
        if self.segments < 1:
            raise ValueError("segments must be >= 1")
        if self.segments > 1 and self.segment_entries <= 0:
            raise ValueError("segment_entries must be positive when segmented")
        if self.load_buffer_entries < 0:
            raise ValueError("load_buffer_entries must be >= 0")

    @property
    def segmented(self) -> bool:
        return self.segments > 1

    @property
    def effective_lq_entries(self) -> int:
        return self.segments * self.segment_entries if self.segmented else self.lq_entries

    @property
    def effective_sq_entries(self) -> int:
        return self.segments * self.segment_entries if self.segmented else self.sq_entries

    @property
    def resolved_ordering_model(self) -> OrderingModel:
        """The declared ordering model, with ``AUTO`` resolved.

        Hardware load-load ordering (search-the-LQ, load-buffer, or
        in-order issue) plus execute/commit-time store-load checks make
        the configuration at least TSO; without a per-load ordering
        mechanism (``MEMBAR``/``INVALIDATION``) only barriers order
        loads, so the declaration weakens to RELAXED.
        """
        if self.ordering_model is not OrderingModel.AUTO:
            return self.ordering_model
        if self.lq_search in (LoadQueueSearchMode.MEMBAR,
                              LoadQueueSearchMode.INVALIDATION):
            return OrderingModel.RELAXED
        return OrderingModel.TSO

    @property
    def detection_at_commit(self) -> bool:
        """Resolve the violation-detection point.

        The pair predictor (and its idealised variants that also skip
        searches) require detection at commit; the conventional design
        detects at store execute.
        """
        if self.detect_at_commit is not None:
            return self.detect_at_commit
        return self.predictor in (PredictorMode.PAIR, PredictorMode.AGGRESSIVE)


@dataclass(frozen=True)
class CoreConfig:
    """Out-of-order core parameters (Table 1)."""

    fetch_width: int = 8
    issue_width: int = 8
    commit_width: int = 8
    rob_entries: int = 256
    issue_queue_entries: int = 64
    int_units: int = 8
    fp_units: int = 8
    int_registers: int = 356
    fp_registers: int = 356
    branch_mispredict_penalty: int = 14
    # Extra cycle charged on recovery to roll back the pair predictor's
    # LFST counters (Section 2.1.2).
    pair_rollback_penalty: int = 1
    # Abort the run when no instruction commits for this many cycles
    # (deadlock guard); default from REPRO_WATCHDOG_CYCLES, else 50000.
    watchdog_cycles: int = field(default_factory=_default_watchdog_cycles)

    def __post_init__(self) -> None:
        if min(self.fetch_width, self.issue_width, self.commit_width) <= 0:
            raise ValueError("pipeline widths must be positive")
        if self.rob_entries <= 0 or self.issue_queue_entries <= 0:
            raise ValueError("window sizes must be positive")
        if self.watchdog_cycles <= 0:
            raise ValueError("watchdog_cycles must be positive")


@dataclass(frozen=True)
class BranchPredictorConfig:
    """Hybrid GAg + PAg predictor, 4K entries each (Table 1)."""

    gag_entries: int = 4096
    pag_entries: int = 4096
    pag_history_entries: int = 1024
    history_bits: int = 12
    chooser_entries: int = 4096


#: Simulation engines a :class:`MachineConfig` may select.  Both must
#: produce bit-identical :class:`~repro.stats.counters.SimStats`; the
#: golden-parity suite and the ``fast-parity`` CI job enforce it.
SIM_BACKENDS = ("python", "fast")


@dataclass(frozen=True)
class MachineConfig:
    """A complete machine: core + memory + LSQ + predictors.

    ``backend`` selects the simulation engine: ``"python"`` is the
    reference per-object cycle loop, ``"fast"`` the batched
    struct-of-arrays engine (:mod:`repro.fastcore`).  The backend is
    part of the sweep engine's cache key — same design, different
    engine, different cell digest — so reports stay attributable.
    """

    core: CoreConfig = field(default_factory=CoreConfig)
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    lsq: LsqConfig = field(default_factory=LsqConfig)
    store_sets: StoreSetConfig = field(default_factory=StoreSetConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    backend: str = "python"

    def __post_init__(self) -> None:
        if self.backend not in SIM_BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from: "
                f"{', '.join(SIM_BACKENDS)}")

    def with_backend(self, backend: str) -> "MachineConfig":
        """Return a copy running on the given simulation engine."""
        return replace(self, backend=backend)

    def with_lsq(self, **kwargs: Any) -> "MachineConfig":
        """Return a copy with load/store-queue parameters replaced."""
        return replace(self, lsq=replace(self.lsq, **kwargs))

    def with_core(self, **kwargs: Any) -> "MachineConfig":
        """Return a copy with core parameters replaced."""
        return replace(self, core=replace(self.core, **kwargs))


def base_machine(**lsq_overrides: Any) -> MachineConfig:
    """The paper's base configuration (Table 1).

    Keyword arguments override :class:`LsqConfig` fields, e.g.
    ``base_machine(search_ports=1, predictor=PredictorMode.PAIR)``.
    """
    machine = MachineConfig()
    if lsq_overrides:
        machine = machine.with_lsq(**lsq_overrides)
    return machine


def scaled_machine(**lsq_overrides: Any) -> MachineConfig:
    """The scaled processor of Section 4.3.

    Issue width 8 -> 12, issue queue 64 -> 96, L1 hit latency 2 -> 3
    cycles, cache sizes unchanged.
    """
    machine = base_machine(**lsq_overrides)
    machine = machine.with_core(fetch_width=12, issue_width=12, commit_width=12,
                                issue_queue_entries=96)
    slower_l1i = replace(machine.memory.l1i, hit_latency=3)
    slower_l1d = replace(machine.memory.l1d, hit_latency=3)
    memory = replace(machine.memory, l1i=slower_l1i, l1d=slower_l1d)
    return replace(machine, memory=memory)


# -- LSQ presets used throughout the evaluation ------------------------------

def conventional_lsq(ports: int = 2, lq_entries: int = 32,
                     sq_entries: int = 32) -> LsqConfig:
    """The base-case LSQ: split 32+32, all loads search both queues."""
    return LsqConfig(lq_entries=lq_entries, sq_entries=sq_entries,
                     search_ports=ports)


def techniques_lsq(ports: int = 1, load_buffer_entries: int = 2,
                   lq_entries: int = 32, sq_entries: int = 32) -> LsqConfig:
    """Pair predictor + load buffer (Section 4.1.3), flat queues."""
    return LsqConfig(lq_entries=lq_entries, sq_entries=sq_entries,
                     search_ports=ports, predictor=PredictorMode.PAIR,
                     lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                     load_buffer_entries=load_buffer_entries)


def segmented_lsq(ports: int = 2, segments: int = 4, segment_entries: int = 28,
                  allocation: AllocationPolicy = AllocationPolicy.SELF_CIRCULAR,
                  ) -> LsqConfig:
    """Segmentation alone (Section 4.2): conventional searches, 4 x 28."""
    return LsqConfig(search_ports=ports, segments=segments,
                     segment_entries=segment_entries, allocation=allocation)


def full_techniques_lsq(ports: int = 1, segments: int = 4,
                        segment_entries: int = 28,
                        load_buffer_entries: int = 2) -> LsqConfig:
    """All three techniques combined (Section 4.3)."""
    return LsqConfig(search_ports=ports, predictor=PredictorMode.PAIR,
                     lq_search=LoadQueueSearchMode.LOAD_BUFFER,
                     load_buffer_entries=load_buffer_entries,
                     segments=segments, segment_entries=segment_entries,
                     allocation=AllocationPolicy.SELF_CIRCULAR)
