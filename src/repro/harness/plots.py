"""Terminal rendering of the paper's figures.

The paper's figures are grouped bar charts over the benchmark suite.
:func:`bar_chart` renders an :class:`~repro.harness.figures
.ExperimentResult` the same way in plain text, so
``examples/reproduce_paper.py --chart fig10`` shows the familiar shape
without any plotting dependency.

Values are parsed back out of the result's formatted cells ("+6.3%",
"0.28", "1.93"), so the module works uniformly for speedup figures and
ratio figures.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.harness.figures import ExperimentResult

#: Glyph per series, cycled.
_GLYPHS = "#*+o@x"


def _parse(cell) -> Optional[float]:
    text = str(cell).strip().rstrip("%")
    try:
        value = float(text)
    except ValueError:
        return None
    if str(cell).strip().endswith("%"):
        value /= 100.0
    return value


def _scale(value: float, lo: float, hi: float, width: int) -> int:
    if hi <= lo:
        return 0
    return round((value - lo) / (hi - lo) * width)


def bar_chart(result: ExperimentResult, width: int = 48) -> str:
    """Render an experiment result as horizontal grouped bars.

    Each benchmark row becomes a group; each column of the figure one
    bar.  A vertical ``|`` marks zero for speedup-style results whose
    range spans it.
    """
    parsed: List[Tuple[str, List[Optional[float]]]] = []
    for row in result.rows:
        parsed.append((str(row[0]), [_parse(cell) for cell in row[1:]]))
    values = [v for __, vs in parsed for v in vs if v is not None]
    if not values:
        return result.format()
    lo = min(0.0, min(values))
    hi = max(0.0, max(values))
    if lo == hi:
        hi = lo + 1.0
    zero = _scale(0.0, lo, hi, width)

    label_w = max(len(name) for name, __ in parsed)
    lines = [result.name, ""]
    for series, header in enumerate(result.headers[1:]):
        glyph = _GLYPHS[series % len(_GLYPHS)]
        lines.append(f"  {glyph} = {header}")
    lines.append("")
    for name, series_values in parsed:
        for series, value in enumerate(series_values):
            glyph = _GLYPHS[series % len(_GLYPHS)]
            label = name if series == 0 else ""
            if value is None:
                lines.append(f"{label:>{label_w}} |")
                continue
            at = _scale(value, lo, hi, width)
            row = [" "] * (width + 1)
            start, end = sorted((zero, at))
            for i in range(start, end + 1):
                row[i] = glyph
            row[zero] = "|"
            shown = f"{value * 100:+.1f}%" if abs(value) < 10 and \
                any("%" in str(c) for r in result.rows for c in r[1:]) \
                else f"{value:.2f}"
            lines.append(f"{label:>{label_w}} {''.join(row)} {shown}")
        lines.append("")
    axis = f"{'':>{label_w}} {lo * 100:+.0f}%{'':>{max(width - 12, 0)}}" \
        f"{hi * 100:+.0f}%"
    lines.append(axis)
    return "\n".join(lines)


def sparkline(values: Sequence[float]) -> str:
    """A one-line sparkline (occupancy over time, etc.)."""
    blocks = " .:-=+*#%@"
    if not values:
        return ""
    lo, hi = min(values), max(values)
    if hi == lo:
        return blocks[0] * len(values)
    return "".join(
        blocks[min(int((v - lo) / (hi - lo) * (len(blocks) - 1)),
                   len(blocks) - 1)]
        for v in values)
