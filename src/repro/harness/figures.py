"""One entry point per table and figure of the paper's evaluation.

Every function takes an :class:`~repro.harness.experiment.ExperimentRunner`
and returns an :class:`ExperimentResult` whose rows mirror the paper's
X axis (the benchmarks, INT then FP) and whose columns mirror the bars
or series of the original figure.  ``result.format()`` renders the
plain-text equivalent that the benchmark harness prints.

Mapping (see DESIGN.md for the full index):

========  ==================================================
Table 2   :func:`table2_base_ipc`
Figure 6  :func:`fig6_sq_bandwidth`
Figure 7  :func:`fig7_sq_speedup`
Table 3   :func:`table3_predictor_accuracy`
Figure 8  :func:`fig8_lq_bandwidth`
Table 4   :func:`table4_ooo_loads`
Figure 9  :func:`fig9_load_buffer_speedup`
Figure 10 :func:`fig10_combined_ports`
Figure 11 :func:`fig11_segmentation`
Table 5   :func:`table5_occupancy`
Table 6   :func:`table6_segment_distribution`
Figure 12 :func:`fig12_all_techniques`
========  ==================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Sequence

from repro.config import (
    AllocationPolicy,
    LoadQueueSearchMode,
    LsqConfig,
    PredictorMode,
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    scaled_machine,
    segmented_lsq,
    techniques_lsq,
)
from repro.harness.experiment import ExperimentRunner
from repro.stats.report import format_table, geometric_mean
from repro.workload import FP_BENCHMARKS, INT_BENCHMARKS


@dataclass
class ExperimentResult:
    """Structured result of one figure/table reproduction."""

    name: str
    headers: List[str]
    rows: List[List]            # one per benchmark, then suite averages
    notes: str = ""

    def format(self) -> str:
        text = format_table(self.headers, self.rows, title=self.name)
        if self.notes:
            text += f"\n{self.notes}"
        return text

    def by_benchmark(self, column: int) -> Dict[str, float]:
        """Column values keyed by benchmark name (skips average rows)."""
        averages = {"Int.Avg", "Fp.Avg"}
        return {row[0]: row[column] for row in self.rows
                if row[0] not in averages}


def _suite_rows(values: Dict[str, Dict[str, float]], columns: Sequence[str],
                fmt: Callable[[float], str] = lambda v: f"{v:.3f}",
                average: str = "geomean") -> List[List]:
    """Assemble per-benchmark rows plus Int.Avg / Fp.Avg rows."""
    rows: List[List] = []
    for name in list(INT_BENCHMARKS) + list(FP_BENCHMARKS):
        if name not in values:
            continue
        rows.append([name] + [fmt(values[name][c]) for c in columns])
    for label, names in [("Int.Avg", INT_BENCHMARKS), ("Fp.Avg", FP_BENCHMARKS)]:
        row = [label]
        for c in columns:
            series = [values[n][c] for n in names if n in values]
            if average == "geomean":
                row.append(fmt(geometric_mean([max(v, 1e-9) for v in series])))
            else:
                row.append(fmt(sum(series) / len(series)))
        rows.append(row)
    return rows


def _pct(v: float) -> str:
    return f"{v * 100:+.1f}%"


def _ratio(v: float) -> str:
    return f"{v:.2f}"


# ---------------------------------------------------------------------------
# Table 2 — base IPCs
# ---------------------------------------------------------------------------

def table2_base_ipc(runner: ExperimentRunner) -> ExperimentResult:
    """Applications and their base IPCs (Table 2)."""
    from repro.workload import profile_for
    results = runner.run_suite(base_machine())
    values = {name: {"measured": res.ipc,
                     "paper": profile_for(name).base_ipc}
              for name, res in results.items()}
    rows = _suite_rows(values, ["measured", "paper"],
                       fmt=lambda v: f"{v:.2f}", average="mean")
    return ExperimentResult(
        name="Table 2: base IPCs (2-ported conventional LSQ)",
        headers=["bench", "measured IPC", "paper IPC"],
        rows=rows)


# ---------------------------------------------------------------------------
# Figures 6/7 + Table 3 — store-queue search reduction
# ---------------------------------------------------------------------------

#: The predictor-dynamics experiments (Figures 6/7, Table 3) use a
#: shorter table-clearing interval so that at least one retraining cycle
#: falls inside the short synthetic runs; this is what exposes the
#: realistic-vs-aggressive difference of Section 4.1.1 (see DESIGN.md).
PREDICTOR_CLEAR_INTERVAL = 2048


def _predictor_machine(mode: PredictorMode):
    from dataclasses import replace
    machine = base_machine()
    return replace(
        machine,
        lsq=LsqConfig(search_ports=2, predictor=mode),
        store_sets=replace(machine.store_sets,
                           clear_interval=PREDICTOR_CLEAR_INTERVAL))


def _predictor_base_machine():
    from dataclasses import replace
    machine = base_machine()
    return replace(
        machine,
        store_sets=replace(machine.store_sets,
                           clear_interval=PREDICTOR_CLEAR_INTERVAL))


def fig6_sq_bandwidth(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 6: store-queue search demand, normalised to the base case
    in which every load searches (perfect / aggressive / pair)."""
    base = runner.run_suite(_predictor_base_machine())
    columns = {
        "perfect": runner.run_suite(
            _predictor_machine(PredictorMode.PERFECT)),
        "aggressive": runner.run_suite(
            _predictor_machine(PredictorMode.AGGRESSIVE)),
        "pair": runner.run_suite(_predictor_machine(PredictorMode.PAIR)),
    }
    values: Dict[str, Dict[str, float]] = {}
    for name, base_res in base.items():
        denom = max(base_res.stats.sq_searches, 1)
        values[name] = {label: res[name].stats.sq_searches / denom
                        for label, res in columns.items()}
    rows = _suite_rows(values, list(columns), fmt=_ratio)
    return ExperimentResult(
        name="Figure 6: SQ search demand relative to a conventional store "
             "queue (lower is better; paper avg: perfect 0.14, "
             "aggressive ~0.17, pair ~0.28)",
        headers=["bench", "perfect", "aggressive", "pair"],
        rows=rows)


def fig7_sq_speedup(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 7: speedup of the three predictors over the base case."""
    base = runner.run_suite(_predictor_base_machine())
    columns = {
        "perfect": runner.run_suite(
            _predictor_machine(PredictorMode.PERFECT)),
        "aggressive": runner.run_suite(
            _predictor_machine(PredictorMode.AGGRESSIVE)),
        "pair": runner.run_suite(_predictor_machine(PredictorMode.PAIR)),
    }
    values = {name: {label: res[name].ipc / base[name].ipc
                     for label, res in columns.items()}
              for name in base}
    rows = _suite_rows(values, list(columns), fmt=lambda v: _pct(v - 1.0))
    return ExperimentResult(
        name="Figure 7: performance benefit from SQ search reduction "
             "(paper: pair predictor ~+2% avg, up to +7%; aggressive "
             "hurts vortex/wupwise)",
        headers=["bench", "perfect", "aggressive", "pair"],
        rows=rows)


def table3_predictor_accuracy(runner: ExperimentRunner) -> ExperimentResult:
    """Table 3: store-load pair predictor accuracy."""
    results = runner.run_suite(_predictor_machine(PredictorMode.PAIR))
    values = {}
    for name, res in results.items():
        stats = res.stats
        values[name] = {"mispred": stats.predictor_mispredict_rate,
                        "squash": stats.squash_rate}
    rows = _suite_rows(
        values, ["mispred", "squash"],
        fmt=lambda v: f"{v * 100:.2f}%" if v >= 1e-3 else f"{v:.1e}",
        average="mean")
    return ExperimentResult(
        name="Table 3: accuracy of the store-load pair predictor "
             "(mispredictions per load; squashes per instruction)",
        headers=["bench", "mispred.", "squash"],
        rows=rows)


# ---------------------------------------------------------------------------
# Figure 8 + Table 4 + Figure 9 — load-queue search reduction
# ---------------------------------------------------------------------------

def _load_buffer_lsq(entries: int,
                     mode: LoadQueueSearchMode = LoadQueueSearchMode.LOAD_BUFFER
                     ) -> LsqConfig:
    return LsqConfig(search_ports=2, lq_search=mode,
                     load_buffer_entries=entries)


def fig8_lq_bandwidth(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 8: load-queue search demand with a 2-entry load buffer,
    normalised to the conventional load queue."""
    base = runner.run_lsq_suite(conventional_lsq(ports=2))
    with_buffer = runner.run_lsq_suite(_load_buffer_lsq(2))
    values = {name: {"load buffer": with_buffer[name].stats.lq_searches
                     / max(base[name].stats.lq_searches, 1)}
              for name in base}
    rows = _suite_rows(values, ["load buffer"], fmt=_ratio)
    return ExperimentResult(
        name="Figure 8: LQ search demand with a 2-entry load buffer "
             "relative to a conventional load queue (paper avg: 0.26 int"
             " / 0.23 fp; mgrid lowest, vortex highest)",
        headers=["bench", "load buffer"],
        rows=rows)


def table4_ooo_loads(runner: ExperimentRunner) -> ExperimentResult:
    """Table 4: average number of loads issued out of program order."""
    from repro.workload import profile_for
    results = runner.run_suite(base_machine())
    values = {name: {"measured": res.stats.avg_ooo_loads,
                     "paper": profile_for(name).ooo_loads}
              for name, res in results.items()}
    rows = _suite_rows(values, ["measured", "paper"],
                       fmt=lambda v: f"{v:.2f}", average="mean")
    return ExperimentResult(
        name="Table 4: average loads issued out of program order "
             "(paper: < 3 on average, motivating a <=4-entry buffer)",
        headers=["bench", "measured", "paper"],
        rows=rows)


def fig9_load_buffer_speedup(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 9: in-order-issue variants and 1/2/4-entry load buffers
    versus the conventional load queue."""
    base = runner.run_lsq_suite(conventional_lsq(ports=2))
    columns = {
        "inord-search": runner.run_lsq_suite(_load_buffer_lsq(
            0, LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH)),
        "0-entry": runner.run_lsq_suite(_load_buffer_lsq(
            0, LoadQueueSearchMode.IN_ORDER)),
        "1-entry": runner.run_lsq_suite(_load_buffer_lsq(1)),
        "2-entry": runner.run_lsq_suite(_load_buffer_lsq(2)),
        "4-entry": runner.run_lsq_suite(_load_buffer_lsq(4)),
    }
    values = {name: {label: res[name].ipc / base[name].ipc
                     for label, res in columns.items()}
              for name in base}
    rows = _suite_rows(values, list(columns), fmt=lambda v: _pct(v - 1.0))
    return ExperimentResult(
        name="Figure 9: load-buffer performance vs a conventional load "
             "queue (paper: in-order variants lose; 2-entry ~+3% int / "
             "+7% fp; 4-entry ~= infinite)",
        headers=["bench"] + list(columns),
        rows=rows)


# ---------------------------------------------------------------------------
# Figure 10 — both bandwidth techniques, port sweep
# ---------------------------------------------------------------------------

def fig10_combined_ports(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 10: ports sweep with and without the two bandwidth
    techniques, relative to the 2-ported conventional LSQ."""
    base = runner.run_lsq_suite(conventional_lsq(ports=2))
    columns = {
        "1p-conv": runner.run_lsq_suite(conventional_lsq(ports=1)),
        "1p-tech": runner.run_lsq_suite(techniques_lsq(ports=1)),
        "2p-tech": runner.run_lsq_suite(techniques_lsq(ports=2)),
        "4p-conv": runner.run_lsq_suite(conventional_lsq(ports=4)),
    }
    values = {name: {label: res[name].ipc / base[name].ipc
                     for label, res in columns.items()}
              for name in base}
    rows = _suite_rows(values, list(columns), fmt=lambda v: _pct(v - 1.0))
    return ExperimentResult(
        name="Figure 10: combining the two search-bandwidth reductions "
             "(paper: 1p-conv -24%; 1p-tech +2% int / +7% fp; 2p-tech "
             "~= 4p-conv)",
        headers=["bench"] + list(columns),
        rows=rows)


# ---------------------------------------------------------------------------
# Figure 11 + Tables 5/6 — segmentation
# ---------------------------------------------------------------------------

def fig11_segmentation(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 11: 4x28 segmented LSQ under both allocation policies and
    the unrealistic 128-entry unsegmented LSQ, vs the 32-entry base."""
    base = runner.run_lsq_suite(conventional_lsq(ports=2))
    columns = {
        "no-self-circ": runner.run_lsq_suite(segmented_lsq(
            ports=2, allocation=AllocationPolicy.NO_SELF_CIRCULAR)),
        "self-circ": runner.run_lsq_suite(segmented_lsq(ports=2)),
        "128-flat": runner.run_lsq_suite(conventional_lsq(
            ports=2, lq_entries=128, sq_entries=128)),
    }
    values = {name: {label: res[name].ipc / base[name].ipc
                     for label, res in columns.items()}
              for name in base}
    rows = _suite_rows(values, list(columns), fmt=lambda v: _pct(v - 1.0))
    return ExperimentResult(
        name="Figure 11: segmented LSQ vs 32-entry conventional (paper: "
             "no-self-circ 0% int / +16% fp; self-circ +5% int / +19% "
             "fp, beating the 128-entry flat queue)",
        headers=["bench"] + list(columns),
        rows=rows)


def table5_occupancy(runner: ExperimentRunner) -> ExperimentResult:
    """Table 5: average LQ/SQ entries *needed* — measured with large
    (128-entry) queues so capacity does not clip the demand."""
    from repro.workload import profile_for
    results = runner.run_lsq_suite(conventional_lsq(
        ports=4, lq_entries=128, sq_entries=128))
    values = {}
    for name, res in results.items():
        profile = profile_for(name)
        values[name] = {"lq": res.stats.avg_lq_occupancy,
                        "sq": res.stats.avg_sq_occupancy,
                        "paper lq": profile.lq_occupancy,
                        "paper sq": profile.sq_occupancy}
    rows = _suite_rows(values, ["lq", "sq", "paper lq", "paper sq"],
                       fmt=lambda v: f"{v:.0f}", average="mean")
    return ExperimentResult(
        name="Table 5: average entries needed in the load and store "
             "queues (measured with 128-entry queues)",
        headers=["bench", "lq", "sq", "paper lq", "paper sq"],
        rows=rows)


def table6_segment_distribution(runner: ExperimentRunner) -> ExperimentResult:
    """Table 6: distribution of segments searched per load forwarding
    search, self-circular allocation."""
    results = runner.run_lsq_suite(segmented_lsq(ports=2))
    values = {}
    for name, res in results.items():
        dist = res.stats.segment_search_distribution()
        values[name] = {str(k): dist.get(k, 0.0) for k in (1, 2, 3, 4)}
    rows = _suite_rows(values, ["1", "2", "3", "4"],
                       fmt=lambda v: f"{v * 100:.1f}", average="mean")
    return ExperimentResult(
        name="Table 6: % of loads searching k segments for the latest "
             "store (paper: ~90% int / ~79% fp search one segment)",
        headers=["bench", "1 seg", "2 seg", "3 seg", "4 seg"],
        rows=rows)


# ---------------------------------------------------------------------------
# Figure 12 — everything combined, base and scaled processors
# ---------------------------------------------------------------------------

def fig12_all_techniques(runner: ExperimentRunner) -> ExperimentResult:
    """Figure 12: one-ported LSQ with all three techniques on the base
    and the scaled (12-wide, 96-IQ, 3-cycle L1) processors, each versus
    its own 2-ported conventional configuration."""
    from dataclasses import replace
    base_conv = runner.run_lsq_suite(conventional_lsq(ports=2))
    base_all = runner.run_lsq_suite(full_techniques_lsq(ports=1))
    scaled_conv = runner.run_suite(
        replace(scaled_machine(), lsq=conventional_lsq(ports=2)))
    scaled_all = runner.run_suite(
        replace(scaled_machine(), lsq=full_techniques_lsq(ports=1)))
    values = {name: {
        "base": base_all[name].ipc / base_conv[name].ipc,
        "scaled": scaled_all[name].ipc / scaled_conv[name].ipc,
    } for name in base_conv}
    rows = _suite_rows(values, ["base", "scaled"],
                       fmt=lambda v: _pct(v - 1.0))
    return ExperimentResult(
        name="Figure 12: 1-ported LSQ with all three techniques vs "
             "2-ported conventional (paper: +6% int / +23% fp on the "
             "base machine; larger on the scaled machine)",
        headers=["bench", "8-wide base", "12-wide scaled"],
        rows=rows)


#: Every experiment, for `examples/reproduce_paper.py` and the benches.
ALL_EXPERIMENTS = {
    "table2": table2_base_ipc,
    "fig6": fig6_sq_bandwidth,
    "fig7": fig7_sq_speedup,
    "table3": table3_predictor_accuracy,
    "fig8": fig8_lq_bandwidth,
    "table4": table4_ooo_loads,
    "fig9": fig9_load_buffer_speedup,
    "fig10": fig10_combined_ports,
    "fig11": fig11_segmentation,
    "table5": table5_occupancy,
    "table6": table6_segment_distribution,
    "fig12": fig12_all_techniques,
}
