"""Parallel, disk-cached sweep engine.

Every figure and table of the paper replays some slice of the
18-benchmark x N-configuration sweep.  This module turns that sweep into
an explicit object: a :class:`Cell` is one (benchmark, machine, seed)
point, a :class:`SweepEngine` fans cells out over a ``multiprocessing``
pool, and a :class:`ResultCache` persists finished cells on disk so a
second process (another bench, a rerun, CI) pays nothing for work
already done.

Cache design
------------

The cache is content-addressed: a cell's key is the SHA-256 digest of a
canonical JSON encoding of everything that determines its result —

* the full :class:`~repro.config.MachineConfig` (dataclasses flattened,
  enums by value),
* the benchmark name, generator seed and run length,
* whether the run is validated (the oracle summary is cached alongside),
* a *code version*: a digest over every ``repro`` source file, so any
  change to the simulator silently invalidates all prior entries, and
* a schema number for the cached payload format itself.

Entries live under ``<cache dir>/<digest[:2]>/<digest>.pkl`` (the
``REPRO_CACHE_DIR`` environment variable overrides the default
``.repro-cache/``).  Writes go through a temporary file in the same
directory followed by :func:`os.replace`, so concurrent workers and
concurrent processes can share a cache directory without ever observing
a torn entry; unreadable or stale entries are treated as misses and
rewritten.  Simulation is deterministic given (trace, machine), so a
cached result is bit-identical to a fresh one — the determinism tests
in ``tests/test_engine.py`` assert exactly that.

Parallelism
-----------

``SweepEngine(jobs=N)`` runs missing cells through a worker pool;
workers receive the pickled :class:`Cell` (the :class:`MachineConfig`
plus trace spec), regenerate the trace, simulate, and ship the
:class:`~repro.pipeline.processor.SimulationResult` back.  Results are
returned in input order regardless of completion order, so the parallel
path is observationally identical to the serial one.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import tempfile
import time
from multiprocessing import Pool
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.config import MachineConfig
from repro.obs import Observer, ObsConfig, ObsSummary
from repro.pipeline.processor import SimulationResult, simulate
from repro.workload import generate_trace

#: Version of the cached payload format; bump to invalidate every entry.
#: 2: cells carry an observability configuration (part of the key) and
#: payloads an optional ObsSummary.
CACHE_SCHEMA = 2

#: Default cache directory (relative to the current working directory)
#: when ``REPRO_CACHE_DIR`` is not set.
DEFAULT_CACHE_DIR = ".repro-cache"


def default_cache_dir() -> Path:
    """The cache root: ``REPRO_CACHE_DIR`` env override, else
    ``.repro-cache/`` under the current directory."""
    return Path(os.environ.get("REPRO_CACHE_DIR") or DEFAULT_CACHE_DIR)


_code_version: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (cached per process).

    Folding this into each cell key means any edit to the simulator —
    pipeline, core structures, workload generator, configuration — makes
    every previously cached result unreachable, which is the entire
    invalidation story: stale entries are never *deleted*, they simply
    stop matching.  ``REPRO_CODE_VERSION`` overrides the scan (useful
    for tests that need a stable or deliberately different version).
    """
    global _code_version
    if _code_version is None:
        override = os.environ.get("REPRO_CODE_VERSION")
        if override:
            _code_version = override
        else:
            digest = hashlib.sha256()
            package_root = Path(__file__).resolve().parent.parent
            for path in sorted(package_root.rglob("*.py")):
                digest.update(path.relative_to(package_root).as_posix().encode())
                digest.update(b"\0")
                digest.update(path.read_bytes())
                digest.update(b"\0")
            _code_version = digest.hexdigest()[:16]
    return _code_version


def _canonical(value: object) -> object:
    """Encode a config value as plain JSON-able data, deterministically."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {f.name: _canonical(getattr(value, f.name))
                for f in dataclasses.fields(value)}
    if isinstance(value, enum.Enum):
        return value.value
    if isinstance(value, (list, tuple)):
        return [_canonical(item) for item in value]
    return value


def config_fingerprint(machine: MachineConfig) -> str:
    """Stable digest of a full machine configuration."""
    payload = json.dumps(_canonical(machine), sort_keys=True,
                         separators=(",", ":"))
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class ValidationSummary:
    """What the memory-model oracle / invariant checker verified while
    producing a (possibly now-cached) result."""

    checked_loads: int
    checked_cycles: int
    report: str


@dataclasses.dataclass(frozen=True)
class Cell:
    """One (benchmark, machine, seed) point of a sweep.

    ``label`` is a human-readable tag (e.g. the LSQ preset name) carried
    into reports; it is deliberately **excluded** from the cache key.
    """

    benchmark: str
    machine: MachineConfig
    seed: int = 0
    n_instructions: int = 6000
    validate: bool = False
    label: str = ""
    #: Observability configuration (repro.obs); ``None`` runs without
    #: instrumentation.  Part of the cache key: although SimStats are
    #: bit-identical either way, the cached payload differs (it carries
    #: the ObsSummary), so a traced run must never be served where an
    #: untraced one was asked for — or vice versa.
    obs: Optional[ObsConfig] = None

    def digest(self) -> str:
        """Content address of this cell's result."""
        payload = json.dumps(
            {
                "schema": CACHE_SCHEMA,
                "code": code_version(),
                "benchmark": self.benchmark,
                "seed": self.seed,
                "n_instructions": self.n_instructions,
                "validate": self.validate,
                "machine": _canonical(self.machine),
                "obs": _canonical(self.obs),
            },
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass
class CellResult:
    """A finished cell: the simulation result plus provenance."""

    cell: Cell
    result: SimulationResult
    #: Pure simulation seconds spent by whichever process *produced*
    #: the result (preserved across the cache).
    sim_s: float
    #: Seconds this engine spent obtaining the result (cache probe or
    #: live simulation, as seen by the coordinating process).
    wall_s: float
    cached: bool
    validation: Optional[ValidationSummary] = None
    #: Observability summary when the cell requested instrumentation.
    obs: Optional[ObsSummary] = None
    #: True when the run executed under cProfile.  Profiler overhead
    #: inflates ``sim_s`` severely, so profiled results are never
    #: cached and the perf gate skips their timings.
    profiled: bool = False

    @property
    def ipc(self) -> float:
        return self.result.ipc


@dataclasses.dataclass
class _StoredPayload:
    """On-disk representation of a finished cell."""

    schema: int
    result: SimulationResult
    sim_s: float
    validation: Optional[ValidationSummary]
    obs: Optional[ObsSummary] = None


class ResultCache:
    """Content-addressed on-disk cache of simulation results.

    Thread/process safe by construction: reads open complete files only,
    writes are tempfile + :func:`os.replace` (atomic on POSIX within a
    filesystem), and a corrupt or unreadable entry is a miss.
    """

    def __init__(self, root: Optional[Path] = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()
        self.hits = 0
        self.misses = 0
        #: Results written by this process.
        self.stores = 0
        # Cumulative probe/store latency, seconds — the telemetry
        # layer's cache latency series read these.
        self.hit_s = 0.0
        self.miss_s = 0.0
        self.store_s = 0.0

    def path_for(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def load(self, digest: str) -> Optional[_StoredPayload]:
        started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        try:
            with open(self.path_for(digest), "rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            self.misses += 1
            self.miss_s += time.perf_counter() - started  # sim-lint: ignore[SIM-D004]
            return None
        if not isinstance(payload, _StoredPayload) \
                or payload.schema != CACHE_SCHEMA:
            self.misses += 1
            self.miss_s += time.perf_counter() - started  # sim-lint: ignore[SIM-D004]
            return None
        self.hits += 1
        self.hit_s += time.perf_counter() - started  # sim-lint: ignore[SIM-D004]
        return payload

    def store(self, digest: str, result: SimulationResult, sim_s: float,
              validation: Optional[ValidationSummary],
              obs: Optional[ObsSummary] = None) -> None:
        started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        path = self.path_for(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = _StoredPayload(schema=CACHE_SCHEMA, result=result,
                                 sim_s=sim_s, validation=validation,
                                 obs=obs)
        descriptor, tmp_name = tempfile.mkstemp(
            dir=str(path.parent), prefix=".tmp-", suffix=".pkl")
        handle = None
        try:
            handle = os.fdopen(descriptor, "wb")
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            handle.close()
            os.replace(tmp_name, path)
            self.stores += 1
            self.store_s += time.perf_counter() - started  # sim-lint: ignore[SIM-D004]
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        finally:
            # Serialization can raise anywhere between mkstemp and
            # os.replace; the raw descriptor must be released on every
            # path (close() is idempotent once fdopen took ownership).
            if handle is not None:
                handle.close()
            else:
                os.close(descriptor)


def _simulate_cell(cell: Cell) -> Tuple[SimulationResult, float,
                                        Optional[ValidationSummary],
                                        Optional[ObsSummary]]:
    """Worker body: regenerate the trace, simulate, summarise.

    Top-level (picklable) so it can run in pool workers; also the serial
    path, so both paths share one definition.  Validation errors
    propagate — a failed run is never cached.
    """
    started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
    trace = generate_trace(cell.benchmark,
                           n_instructions=cell.n_instructions,
                           seed=cell.seed)
    checker = None
    if cell.validate:
        from repro.validate import ValidationChecker
        checker = ValidationChecker()
    observer = Observer(cell.obs) if cell.obs is not None else None
    result = simulate(trace, cell.machine, checker=checker, obs=observer)
    sim_s = time.perf_counter() - started  # sim-lint: ignore[SIM-D004]
    validation = None
    if checker is not None:
        validation = ValidationSummary(checked_loads=checker.checked_loads,
                                       checked_cycles=checker.checked_cycles,
                                       report=checker.report())
    obs_summary = observer.summary() if observer is not None else None
    return result, sim_s, validation, obs_summary


#: Progress callback: (finished cell, 1-based index, total).
ProgressFn = Callable[[CellResult, int, int], None]


class SweepEngine:
    """Runs sweep cells with optional parallelism and disk caching.

    ``jobs`` is the worker-pool width (1 = serial, in-process);
    ``cache=None`` disables disk caching entirely (the ``--no-cache``
    escape hatch).  The engine itself is stateless between calls apart
    from hit/miss/simulated counters.
    """

    def __init__(self, jobs: int = 1,
                 cache: Optional[ResultCache] = None) -> None:
        self.jobs = max(1, jobs)
        self.cache = cache
        #: Cells actually simulated (not served from cache) by this
        #: engine instance.
        self.simulated = 0

    def _from_cache(self, cell: Cell, digest: str) -> Optional[CellResult]:
        if self.cache is None:
            return None
        started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        payload = self.cache.load(digest)
        if payload is None:
            return None
        return CellResult(cell=cell, result=payload.result,
                          sim_s=payload.sim_s,
                          wall_s=time.perf_counter() - started,  # sim-lint: ignore[SIM-D004]
                          cached=True, validation=payload.validation,
                          obs=payload.obs)

    def _finish(self, cell: Cell, digest: str, result: SimulationResult,
                sim_s: float, wall_s: float,
                validation: Optional[ValidationSummary],
                obs: Optional[ObsSummary]) -> CellResult:
        self.simulated += 1
        if self.cache is not None:
            self.cache.store(digest, result, sim_s, validation, obs)
        return CellResult(cell=cell, result=result, sim_s=sim_s,
                          wall_s=wall_s, cached=False, validation=validation,
                          obs=obs)

    def probe_cell(self, cell: Cell) -> Optional[CellResult]:
        """Cache-only lookup: return the cached result or ``None``.

        This is the serving layer's warm-hit path — a single disk read
        measured in microseconds, never a simulation.  Safe to call from
        an event loop without an executor.
        """
        return self._from_cache(cell, cell.digest())

    async def run_cell_async(self, cell: Cell,
                             executor: Optional[object] = None) -> CellResult:
        """Async-friendly :meth:`run_cell`.

        The cache probe happens inline (it cannot stall a loop), while a
        miss's simulation — seconds of pure compute — is pushed into
        ``executor`` (``None`` = the loop's default thread pool) so the
        event loop stays responsive.  The serving layer's worker-process
        pool bypasses this and ships cells to dedicated processes; this
        entry point is the dependency-free fallback.
        """
        import asyncio
        digest = cell.digest()
        cached = self._from_cache(cell, digest)
        if cached is not None:
            return cached
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(executor, self.run_cell, cell)  # type: ignore[arg-type]

    def run_cell(self, cell: Cell) -> CellResult:
        """Run one cell in-process (cache-first)."""
        digest = cell.digest()
        cached = self._from_cache(cell, digest)
        if cached is not None:
            return cached
        started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        result, sim_s, validation, obs = _simulate_cell(cell)
        return self._finish(cell, digest, result, sim_s,
                            time.perf_counter() - started, validation, obs)  # sim-lint: ignore[SIM-D004]

    def run_cells(self, cells: Sequence[Cell],
                  progress: Optional[ProgressFn] = None) -> List[CellResult]:
        """Run many cells, fanning cache misses out over the pool.

        Results come back in input order regardless of completion
        order, so callers cannot observe the parallelism.
        """
        total = len(cells)
        results: Dict[int, CellResult] = {}
        missing: List[Tuple[int, Cell, str]] = []
        done = 0
        for index, cell in enumerate(cells):
            digest = cell.digest()
            cached = self._from_cache(cell, digest)
            if cached is not None:
                results[index] = cached
                done += 1
                if progress is not None:
                    progress(cached, done, total)
            else:
                missing.append((index, cell, digest))

        if missing:
            started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
            if self.jobs > 1 and len(missing) > 1:
                with Pool(processes=min(self.jobs, len(missing))) as pool:
                    outputs = pool.map(_simulate_cell,
                                       [cell for _, cell, _ in missing],
                                       chunksize=1)
            else:
                outputs = [_simulate_cell(cell) for _, cell, _ in missing]
            elapsed = time.perf_counter() - started  # sim-lint: ignore[SIM-D004]
            # Attribute coordinator wall time evenly across the batch:
            # with a pool, per-cell wall time is not individually
            # observable from here, and the sum is what matters.
            share = elapsed / len(missing)
            for (index, cell, digest), (result, sim_s, validation, obs) \
                    in zip(missing, outputs):
                finished = self._finish(cell, digest, result, sim_s,
                                        share, validation, obs)
                results[index] = finished
                done += 1
                if progress is not None:
                    progress(finished, done, total)
        return [results[index] for index in range(total)]


class ReportBackendMismatch(ValueError):
    """Two bench reports were measured under different simulation
    backends (``python`` vs ``fast``); their wall times are not
    comparable and :func:`diff_reports` refuses to pretend otherwise."""


def _cells_backend(cells: Sequence[Cell]) -> str:
    """The ``backend`` tag for a report over ``cells``.

    Reports are taken per-backend in practice; a deliberately mixed
    sweep is tagged ``"mixed"`` so :func:`diff_reports` refuses to
    compare it against anything single-backend.
    """
    backends = sorted({cell.machine.backend for cell in cells})
    if not backends:
        return "python"
    return backends[0] if len(backends) == 1 else "mixed"


def sweep_report(results: Sequence[CellResult], *, jobs: int,
                 cache: Optional[ResultCache],
                 wall_s: float) -> Dict[str, object]:
    """Machine-readable summary of a sweep (the ``BENCH_sweep.json``
    payload): per-cell wall time and IPC plus cache hit/miss totals, so
    the performance trajectory of the harness itself is tracked."""
    cells: List[Dict[str, object]] = []
    for item in results:
        cells.append({
            "benchmark": item.cell.benchmark,
            "label": item.cell.label,
            "seed": item.cell.seed,
            "n_instructions": item.cell.n_instructions,
            "digest": item.cell.digest(),
            "ipc": round(item.ipc, 6),
            "cycles": item.result.stats.cycles,
            "committed": item.result.stats.committed,
            "sim_s": round(item.sim_s, 6),
            "wall_s": round(item.wall_s, 6),
            "cached": item.cached,
            "validated": item.validation is not None,
            "traced": item.obs is not None,
            "profiled": item.profiled,
        })
    simulated = sum(1 for item in results if not item.cached)
    report: Dict[str, object] = {
        "schema": CACHE_SCHEMA,
        "code_version": code_version(),
        "backend": _cells_backend([item.cell for item in results]),
        "jobs": jobs,
        "cells": cells,
        "n_cells": len(results),
        "simulated": simulated,
        "sim_s": round(sum(item.sim_s for item in results), 6),
        "wall_s": round(wall_s, 6),
        "cache": {
            "enabled": cache is not None,
            "dir": str(cache.root) if cache is not None else None,
            "hits": cache.hits if cache is not None else 0,
            "misses": cache.misses if cache is not None else 0,
        },
    }
    return report


def calibration_loop_s(iterations: int = 2_000_000, *,
                       reps: int = 5) -> float:
    """Time a fixed pure-Python loop — a machine-speed probe.

    Stored alongside every baseline report so two reports taken on
    machines of different speed can be compared meaningfully: scaling
    the old report's ``sim_s`` by the calibration ratio cancels the
    host-speed difference (``scripts/bench_diff.py --normalize``).

    Min of ``reps`` runs: the per-cell ``sim_s`` numbers it rescales
    are best-case (min-of-reps) timings, so the probe must be a
    best-case timing too — a single run can be 20%+ slow under
    transient load, which would skew every normalized comparison.
    """
    best = float("inf")
    for __ in range(reps):
        started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
        acc = 0
        for i in range(iterations):
            acc += i & 7
        del acc
        elapsed = time.perf_counter() - started  # sim-lint: ignore[SIM-D004]
        if elapsed < best:
            best = elapsed
    return best


def baseline_report(cells: Sequence[Cell], *,
                    reps: int = 3) -> Dict[str, object]:
    """Measure a fresh performance baseline (the ``BENCH_core.json``
    payload).

    Every cell is simulated live — never through the result cache, which
    preserves *old* timings by design — ``reps`` times, keeping the
    fastest repetition (minimum is the standard estimator for
    "how fast can this code run"; the slower repetitions measure the
    machine, not the code).  One extra repetition runs under
    :mod:`tracemalloc` to record the allocation footprint: peak traced
    bytes and the number of live allocated blocks at the end of the
    run, both of which drop when hot paths stop building per-cycle
    temporaries.  Cells carry the same match keys as sweep reports
    (benchmark/label/seed/n_instructions, ``sim_s``, ``ipc``), so
    :func:`diff_reports` gates one baseline against another unchanged.
    """
    import tracemalloc

    rows: List[Dict[str, object]] = []
    total_sim = 0.0
    for cell in cells:
        best_s: Optional[float] = None
        result: Optional[SimulationResult] = None
        for __ in range(max(reps, 1)):
            outcome, sim_s, __v, __o = _simulate_cell(cell)
            if best_s is None or sim_s < best_s:
                best_s, result = sim_s, outcome
        assert best_s is not None and result is not None
        tracemalloc.start()
        _simulate_cell(cell)
        __, peak_bytes = tracemalloc.get_traced_memory()
        alloc_blocks = sum(
            stat.count
            for stat in tracemalloc.take_snapshot().statistics("filename"))
        tracemalloc.stop()
        stats = result.stats
        total_sim += best_s
        rows.append({
            "benchmark": cell.benchmark,
            "label": cell.label,
            "seed": cell.seed,
            "n_instructions": cell.n_instructions,
            "ipc": round(result.ipc, 6),
            "cycles": stats.cycles,
            "committed": stats.committed,
            "sim_s": round(best_s, 6),
            "cycles_per_sec": round(stats.cycles / best_s) if best_s else 0,
            "reps": max(reps, 1),
            "alloc_peak_kb": round(peak_bytes / 1024, 1),
            "alloc_blocks": alloc_blocks,
        })
    return {
        "schema": CACHE_SCHEMA,
        "kind": "core-baseline",
        "code_version": code_version(),
        "backend": _cells_backend(cells),
        "calibration_s": round(calibration_loop_s(), 6),
        "cells": rows,
        "n_cells": len(rows),
        "simulated": len(rows),
        "sim_s": round(total_sim, 6),
    }


def profile_cell(cell: Cell,
                 top: int = 15) -> Tuple[CellResult, List[Dict[str, object]]]:
    """Simulate one cell under :mod:`cProfile`, in-process.

    Returns the finished cell plus a hot-function table (top ``top``
    functions by internal time) ready to merge into a
    ``BENCH_sweep.json`` report under a ``"profile"`` key.  The run is
    deliberately **not** written to the result cache: profiling inflates
    ``sim_s``, and cached timings feed the perf-regression gate.
    """
    import cProfile
    import pstats

    profiler = cProfile.Profile()
    started = time.perf_counter()  # sim-lint: ignore[SIM-D004]
    profiler.enable()
    result, sim_s, validation, obs = _simulate_cell(cell)
    profiler.disable()
    wall_s = time.perf_counter() - started  # sim-lint: ignore[SIM-D004]
    raw: Dict[Tuple[str, int, str], Tuple[int, int, float, float, object]] = \
        getattr(pstats.Stats(profiler), "stats")
    rows: List[Dict[str, object]] = []
    ranked = sorted(raw.items(), key=lambda item: item[1][2], reverse=True)
    for (filename, line, func), (_cc, ncalls, tottime, cumtime, _callers) \
            in ranked[:max(top, 0)]:
        name = func if filename == "~" else \
            f"{os.path.basename(filename)}:{line}:{func}"
        rows.append({
            "function": name,
            "calls": ncalls,
            "tottime_s": round(tottime, 6),
            "cumtime_s": round(cumtime, 6),
        })
    cell_result = CellResult(cell=cell, result=result, sim_s=sim_s,
                             wall_s=wall_s, cached=False,
                             validation=validation, obs=obs,
                             profiled=True)
    return cell_result, rows


def diff_reports(old: Dict[str, object], new: Dict[str, object], *,
                 wall_tol: float = 0.20,
                 ipc_tol: float = 0.001,
                 aggregate_wall: bool = False) -> List[str]:
    """Compare two ``BENCH_sweep.json`` reports; return regressions.

    Cells are matched on (benchmark, label, seed, n_instructions) — not
    on digest, which changes with every code edit.  A matched cell
    regresses when its pure simulation time (``sim_s``, preserved across
    the cache) grew by more than ``wall_tol`` (relative), or its IPC
    moved by more than ``ipc_tol`` (relative) in either direction — IPC
    is deterministic, so any drift means the simulated machine changed.
    Returns human-readable problem strings; empty means the gate passes.

    With ``aggregate_wall`` the wall budget applies to the *summed*
    sim time of the matched cells instead of each cell individually —
    per-cell timings on short cells flicker past any reasonable budget
    under ambient load, while the total averages the noise out (IPC
    checks stay per-cell; they are exact either way).

    Reports carry a ``backend`` tag (``python``/``fast``; reports from
    before the tag existed count as ``python``).  Mismatched tags raise
    :class:`ReportBackendMismatch` instead of diffing: a fast-engine
    report is 1.5x+ quicker by design, so python-vs-fast wall times
    would either mask a real regression or manufacture a fake
    improvement.  IPC *is* bit-identical across backends, but the gate
    refuses wholesale — regenerate one side under the other backend to
    compare like against like.
    """
    old_backend = str(old.get("backend") or "python")
    new_backend = str(new.get("backend") or "python")
    if old_backend != new_backend:
        raise ReportBackendMismatch(
            f"refusing to diff reports from different simulation "
            f"backends: baseline is backend={old_backend!r}, candidate "
            f"is backend={new_backend!r}; regenerate one side under the "
            f"other backend (repro bench --backend {old_backend}) so "
            f"wall times are comparable")
    def _index(report: Dict[str, object]) -> Dict[Tuple[object, ...],
                                                  Dict[str, object]]:
        cells = report.get("cells", [])
        out: Dict[Tuple[object, ...], Dict[str, object]] = {}
        if isinstance(cells, list):
            for cell in cells:
                if isinstance(cell, dict):
                    key = (cell.get("benchmark"), cell.get("label"),
                           cell.get("seed"), cell.get("n_instructions"))
                    out[key] = cell
        return out

    problems: List[str] = []
    old_cells = _index(old)
    new_cells = _index(new)
    matched = 0
    old_total = 0.0
    new_total = 0.0
    for key, new_cell in new_cells.items():
        old_cell = old_cells.get(key)
        if old_cell is None:
            continue
        matched += 1
        tag = "/".join(str(part) for part in key)
        # A row measured under cProfile carries profiler-skewed sim_s;
        # its timing is not comparable in either direction (IPC still
        # is — profiling does not change the simulated machine).
        timing_ok = not (bool(old_cell.get("profiled"))
                         or bool(new_cell.get("profiled")))
        old_sim = float(old_cell.get("sim_s", 0.0) or 0.0)  # type: ignore[arg-type]
        new_sim = float(new_cell.get("sim_s", 0.0) or 0.0)  # type: ignore[arg-type]
        if timing_ok:
            old_total += old_sim
            new_total += new_sim
        if timing_ok and not aggregate_wall and old_sim > 0 and \
                new_sim > old_sim * (1.0 + wall_tol):
            problems.append(
                f"{tag}: sim time {old_sim:.3f}s -> {new_sim:.3f}s "
                f"(+{(new_sim / old_sim - 1.0) * 100:.1f}% > "
                f"{wall_tol * 100:.0f}% budget)")
        old_ipc = float(old_cell.get("ipc", 0.0) or 0.0)  # type: ignore[arg-type]
        new_ipc = float(new_cell.get("ipc", 0.0) or 0.0)  # type: ignore[arg-type]
        if old_ipc > 0 and abs(new_ipc / old_ipc - 1.0) > ipc_tol:
            problems.append(
                f"{tag}: IPC {old_ipc:.6f} -> {new_ipc:.6f} "
                f"({(new_ipc / old_ipc - 1.0) * 100:+.3f}% beyond "
                f"±{ipc_tol * 100:.1f}%)")
    if aggregate_wall and old_total > 0 and \
            new_total > old_total * (1.0 + wall_tol):
        problems.append(
            f"total: sim time {old_total:.3f}s -> {new_total:.3f}s "
            f"over {matched} cell(s) "
            f"(+{(new_total / old_total - 1.0) * 100:.1f}% > "
            f"{wall_tol * 100:.0f}% budget)")
    if matched == 0:
        problems.append("no comparable cells between the two reports")
    return problems
