"""Cached experiment runner.

Each figure sweeps several LSQ configurations over the 18-benchmark
suite.  Traces and simulation results are cached so figures that share
configurations (e.g. the base case) pay for each run once per process.

The run length defaults to ``REPRO_BENCH_INSTRUCTIONS`` (environment
variable, default 6000): long enough for steady-state behaviour with
warmed caches/predictors, short enough that a full figure regenerates in
about a minute of pure-Python simulation.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import LsqConfig, MachineConfig, base_machine
from repro.pipeline.processor import SimulationResult, simulate
from repro.workload import ALL_BENCHMARKS, generate_trace
from repro.workload.trace import Trace

DEFAULT_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "6000"))


class ExperimentRunner:
    """Runs (benchmark, machine) pairs with trace and result caching."""

    def __init__(self, n_instructions: int = DEFAULT_INSTRUCTIONS,
                 seed: int = 0,
                 benchmarks: Iterable[str] = ALL_BENCHMARKS,
                 validate: bool = False) -> None:
        self.n_instructions = n_instructions
        self.seed = seed
        self.benchmarks: Tuple[str, ...] = tuple(benchmarks)
        #: Run every simulation under the memory-model oracle and
        #: invariant checker (repro.validate) — slower, but any bench
        #: built on this runner becomes a correctness smoke test.
        self.validate = validate
        self._traces: Dict[str, Trace] = {}
        self._results: Dict[tuple, SimulationResult] = {}

    def trace(self, benchmark: str) -> Trace:
        if benchmark not in self._traces:
            self._traces[benchmark] = generate_trace(
                benchmark, n_instructions=self.n_instructions, seed=self.seed)
        return self._traces[benchmark]

    def run(self, benchmark: str, machine: MachineConfig) -> SimulationResult:
        key = (benchmark, machine)
        if key not in self._results:
            self._results[key] = simulate(self.trace(benchmark), machine,
                                          validate=self.validate)
        return self._results[key]

    def run_suite(self, machine: MachineConfig,
                  benchmarks: Optional[Iterable[str]] = None
                  ) -> Dict[str, SimulationResult]:
        names = tuple(benchmarks) if benchmarks is not None else self.benchmarks
        return {name: self.run(name, machine) for name in names}

    def run_lsq_suite(self, lsq: LsqConfig,
                      machine: Optional[MachineConfig] = None
                      ) -> Dict[str, SimulationResult]:
        """Run the whole suite on ``machine`` (default: Table 1 base)
        with its LSQ replaced by ``lsq``."""
        from dataclasses import replace
        base = machine if machine is not None else base_machine()
        return self.run_suite(replace(base, lsq=lsq))


    def run_seeds(self, benchmark: str, machine: MachineConfig,
                  seeds: Iterable[int]) -> List[SimulationResult]:
        """Run one (benchmark, machine) pair under several generator
        seeds — the cheap way to put spread bars on any reported number
        (synthetic traces are the only randomness in a run)."""
        results = []
        for seed in seeds:
            trace = generate_trace(benchmark,
                                   n_instructions=self.n_instructions,
                                   seed=seed)
            results.append(simulate(trace, machine))
        return results


def confidence(values: List[float]) -> Tuple[float, float]:
    """(mean, half-range) of a small sample — the spread annotation used
    by the multi-seed bench."""
    if not values:
        raise ValueError("no values")
    mean = sum(values) / len(values)
    half_range = (max(values) - min(values)) / 2
    return mean, half_range


_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """Process-wide shared runner (the benches all reuse its cache)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner
