"""Cached experiment runner.

Each figure sweeps several LSQ configurations over the 18-benchmark
suite.  The runner keeps its original per-process memo (figures that
share configurations, e.g. the base case, pay for each run once) but
delegates all execution to :class:`repro.harness.engine.SweepEngine`,
which adds two things the memo cannot provide: fan-out of cache misses
over a ``multiprocessing`` pool, and a content-addressed on-disk cache
shared across processes (see :mod:`repro.harness.engine`).

The run length defaults to ``REPRO_BENCH_INSTRUCTIONS`` (environment
variable, default 6000): long enough for steady-state behaviour with
warmed caches/predictors, short enough that a full figure regenerates in
about a minute of pure-Python simulation.  The variable is read when the
runner is *constructed*, not when the module is imported, so setting it
programmatically (e.g. in a test or driver script) works as expected.
"""

from __future__ import annotations

import os
from typing import Dict, Iterable, List, Optional, Tuple

from repro.config import LsqConfig, MachineConfig, base_machine
from repro.harness.engine import Cell, SweepEngine
from repro.obs import ObsConfig, ObsSummary
from repro.pipeline.processor import SimulationResult
from repro.workload import ALL_BENCHMARKS, generate_trace
from repro.workload.trace import Trace


def default_instructions() -> int:
    """Per-trace dynamic instruction count: the current value of the
    ``REPRO_BENCH_INSTRUCTIONS`` environment variable, default 6000."""
    return int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "6000"))


#: (benchmark, machine, seed, n_instructions, validate, obs) —
#: everything that determines a result.  Two runners sharing an engine
#: (or the disk cache behind it) can never collide on runner identity;
#: in particular a traced runner (obs set) never poisons the entries an
#: untraced runner reads, and vice versa.
_ResultKey = Tuple[str, MachineConfig, int, int, bool, Optional[ObsConfig]]


class ExperimentRunner:
    """Runs (benchmark, machine) pairs with trace and result caching."""

    def __init__(self, n_instructions: Optional[int] = None,
                 seed: int = 0,
                 benchmarks: Iterable[str] = ALL_BENCHMARKS,
                 validate: bool = False,
                 engine: Optional[SweepEngine] = None,
                 obs: Optional[ObsConfig] = None) -> None:
        self.n_instructions = (default_instructions()
                               if n_instructions is None else n_instructions)
        self.seed = seed
        self.benchmarks: Tuple[str, ...] = tuple(benchmarks)
        #: Run every simulation under the memory-model oracle and
        #: invariant checker (repro.validate) — slower, but any bench
        #: built on this runner becomes a correctness smoke test.
        self.validate = validate
        #: Observability configuration for every run (``None`` = no
        #: instrumentation); part of both the memo key and the cell
        #: cache key.  Summaries are kept per run (:meth:`obs_summary`).
        self.obs = obs
        #: Execution backend; the default is serial with no disk cache,
        #: which preserves the historical in-process behaviour.  Pass
        #: ``SweepEngine(jobs=N, cache=ResultCache())`` for parallel,
        #: cross-process-cached sweeps.
        self.engine = engine if engine is not None else SweepEngine()
        self._traces: Dict[Tuple[str, int], Trace] = {}
        self._results: Dict[_ResultKey, SimulationResult] = {}
        self._obs_summaries: Dict[_ResultKey, Optional[ObsSummary]] = {}

    def trace(self, benchmark: str, seed: Optional[int] = None) -> Trace:
        seed = self.seed if seed is None else seed
        key = (benchmark, seed)
        if key not in self._traces:
            self._traces[key] = generate_trace(
                benchmark, n_instructions=self.n_instructions, seed=seed)
        return self._traces[key]

    def _cell(self, benchmark: str, machine: MachineConfig,
              seed: int) -> Cell:
        return Cell(benchmark=benchmark, machine=machine, seed=seed,
                    n_instructions=self.n_instructions,
                    validate=self.validate, obs=self.obs)

    def _key(self, benchmark: str, machine: MachineConfig,
             seed: int) -> _ResultKey:
        return (benchmark, machine, seed, self.n_instructions,
                self.validate, self.obs)

    def run(self, benchmark: str, machine: MachineConfig,
            seed: Optional[int] = None) -> SimulationResult:
        seed = self.seed if seed is None else seed
        key = self._key(benchmark, machine, seed)
        if key not in self._results:
            cell_result = self.engine.run_cell(
                self._cell(benchmark, machine, seed))
            self._results[key] = cell_result.result
            self._obs_summaries[key] = cell_result.obs
        return self._results[key]

    def obs_summary(self, benchmark: str, machine: MachineConfig,
                    seed: Optional[int] = None) -> Optional[ObsSummary]:
        """Observability summary of an already-run point (``None`` when
        the runner is untraced or the point has not been run)."""
        seed = self.seed if seed is None else seed
        return self._obs_summaries.get(self._key(benchmark, machine, seed))

    def run_suite(self, machine: MachineConfig,
                  benchmarks: Optional[Iterable[str]] = None
                  ) -> Dict[str, SimulationResult]:
        names = tuple(benchmarks) if benchmarks is not None else self.benchmarks
        self._prefetch([(name, machine, self.seed) for name in names])
        return {name: self.run(name, machine) for name in names}

    def run_lsq_suite(self, lsq: LsqConfig,
                      machine: Optional[MachineConfig] = None
                      ) -> Dict[str, SimulationResult]:
        """Run the whole suite on ``machine`` (default: Table 1 base)
        with its LSQ replaced by ``lsq``."""
        from dataclasses import replace
        base = machine if machine is not None else base_machine()
        return self.run_suite(replace(base, lsq=lsq))

    def run_seeds(self, benchmark: str, machine: MachineConfig,
                  seeds: Iterable[int]) -> List[SimulationResult]:
        """Run one (benchmark, machine) pair under several generator
        seeds — the cheap way to put spread bars on any reported number
        (synthetic traces are the only randomness in a run).

        Runs go through the same cached, validated path as :meth:`run`
        (the seed is part of the cache key), so a multi-seed bench both
        honours ``validate=True`` and reuses prior results.
        """
        seed_list = list(seeds)
        self._prefetch([(benchmark, machine, seed) for seed in seed_list])
        return [self.run(benchmark, machine, seed=seed)
                for seed in seed_list]

    def _prefetch(self, points: List[Tuple[str, MachineConfig, int]]) -> None:
        """Batch-run not-yet-memoised points through the engine so a
        parallel engine can overlap them; results land in the memo."""
        missing = [(benchmark, machine, seed)
                   for benchmark, machine, seed in points
                   if self._key(benchmark, machine, seed)
                   not in self._results]
        if len(missing) < 2 or self.engine.jobs < 2:
            return
        cells = [self._cell(benchmark, machine, seed)
                 for benchmark, machine, seed in missing]
        for (benchmark, machine, seed), cell_result \
                in zip(missing, self.engine.run_cells(cells)):
            key = self._key(benchmark, machine, seed)
            self._results[key] = cell_result.result
            self._obs_summaries[key] = cell_result.obs


def confidence(values: List[float]) -> Tuple[float, float]:
    """(mean, half-range) of a small sample — the spread annotation used
    by the multi-seed bench."""
    if not values:
        raise ValueError("no values")
    mean = sum(values) / len(values)
    half_range = (max(values) - min(values)) / 2
    return mean, half_range


_default_runner: Optional[ExperimentRunner] = None


def default_runner() -> ExperimentRunner:
    """Process-wide shared runner (the benches all reuse its cache)."""
    global _default_runner
    if _default_runner is None:
        _default_runner = ExperimentRunner()
    return _default_runner
