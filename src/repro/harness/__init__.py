"""Experiment harness: regenerate every table and figure of the paper.

:mod:`repro.harness.engine` provides the parallel, disk-cached sweep
engine; :mod:`repro.harness.experiment` the cached runner built on it;
:mod:`repro.harness.figures` defines one entry point per figure and
table of the evaluation (Section 4), each returning a structured result
with a ``format()`` text rendering that mirrors the paper's rows/series.
"""

from repro.harness.engine import (
    Cell,
    CellResult,
    ReportBackendMismatch,
    ResultCache,
    SweepEngine,
    sweep_report,
)
from repro.harness.experiment import (
    ExperimentRunner,
    default_instructions,
    default_runner,
)
from repro.harness import figures

__all__ = [
    "Cell",
    "CellResult",
    "ExperimentRunner",
    "ReportBackendMismatch",
    "ResultCache",
    "SweepEngine",
    "default_instructions",
    "default_runner",
    "figures",
    "sweep_report",
]
