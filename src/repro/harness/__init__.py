"""Experiment harness: regenerate every table and figure of the paper.

:mod:`repro.harness.experiment` provides the cached runner;
:mod:`repro.harness.figures` defines one entry point per figure and
table of the evaluation (Section 4), each returning a structured result
with a ``format()`` text rendering that mirrors the paper's rows/series.
"""

from repro.harness.experiment import ExperimentRunner, default_runner
from repro.harness import figures

__all__ = ["ExperimentRunner", "default_runner", "figures"]
