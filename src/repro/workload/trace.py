"""Trace container and on-disk format.

A :class:`Trace` is an indexable sequence of dynamic
:class:`~repro.workload.isa.Instruction` objects plus a name.  The
simulator requires random access because recovery from memory-order
violations rewinds the fetch pointer and replays instructions.

Traces can be saved to and loaded from a compact binary format
(``.lsqtrace``) so expensive synthetic generations can be reused across
experiment runs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Sequence

from repro.workload.isa import NO_REG, Instruction, OpClass

_MAGIC = b"LSQT"
_VERSION = 2
_HEADER = struct.Struct("<4sHI")
# pc, op, dest, src1, src2, src3, addr, size, flags(taken), target
_RECORD = struct.Struct("<QBbbbbqHBQ")


@dataclass
class TraceStats:
    """Instruction-mix summary of a trace."""

    instructions: int = 0
    loads: int = 0
    stores: int = 0
    branches: int = 0
    fp_ops: int = 0

    @property
    def load_fraction(self) -> float:
        return self.loads / self.instructions if self.instructions else 0.0

    @property
    def store_fraction(self) -> float:
        return self.stores / self.instructions if self.instructions else 0.0

    @property
    def branch_fraction(self) -> float:
        return self.branches / self.instructions if self.instructions else 0.0


class Trace(Sequence[Instruction]):
    """An immutable sequence of dynamic instructions.

    ``cold_regions`` lists address ranges ``(lo, hi)`` that would *not*
    be cache-resident in steady state (huge random/pointer-chased
    regions); the simulator's cache warm-up skips them so their misses
    are preserved.
    """

    def __init__(self, instructions: Iterable[Instruction],
                 name: str = "anonymous",
                 cold_regions: Iterable[tuple] = ()) -> None:
        self._instructions: List[Instruction] = list(instructions)
        self.name = name
        self.cold_regions = tuple(tuple(r) for r in cold_regions)

    def is_cold_address(self, addr: int) -> bool:
        return any(lo <= addr < hi for lo, hi in self.cold_regions)

    def __len__(self) -> int:
        return len(self._instructions)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return Trace(self._instructions[index], name=self.name,
                         cold_regions=self.cold_regions)
        return self._instructions[index]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self._instructions)

    def __repr__(self) -> str:
        return f"Trace(name={self.name!r}, instructions={len(self)})"

    def stats(self) -> TraceStats:
        """Compute the instruction-mix summary."""
        stats = TraceStats(instructions=len(self))
        for inst in self._instructions:
            if inst.is_load:
                stats.loads += 1
            elif inst.is_store:
                stats.stores += 1
            elif inst.is_branch:
                stats.branches += 1
            if inst.op.is_fp:
                stats.fp_ops += 1
        return stats

    # -- serialisation --------------------------------------------------

    def save(self, path) -> None:
        """Write the trace in the binary ``.lsqtrace`` format."""
        name_bytes = self.name.encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(_HEADER.pack(_MAGIC, _VERSION, len(self)))
            fh.write(struct.pack("<H", len(name_bytes)))
            fh.write(name_bytes)
            fh.write(struct.pack("<H", len(self.cold_regions)))
            for lo, hi in self.cold_regions:
                fh.write(struct.pack("<QQ", lo, hi))
            for inst in self._instructions:
                if len(inst.srcs) > 3:
                    raise ValueError("trace format supports at most 3 sources")
                srcs = list(inst.srcs) + [NO_REG] * (3 - len(inst.srcs))
                fh.write(_RECORD.pack(
                    inst.pc, int(inst.op), inst.dest,
                    srcs[0], srcs[1], srcs[2],
                    inst.addr, inst.size, int(inst.taken), inst.target,
                ))

    @classmethod
    def load(cls, path) -> "Trace":
        """Read a trace written by :meth:`save`."""
        with open(path, "rb") as fh:
            magic, version, count = _HEADER.unpack(fh.read(_HEADER.size))
            if magic != _MAGIC:
                raise ValueError(f"{path}: not an .lsqtrace file")
            if version != _VERSION:
                raise ValueError(f"{path}: unsupported version {version}")
            (name_len,) = struct.unpack("<H", fh.read(2))
            name = fh.read(name_len).decode("utf-8")
            (n_regions,) = struct.unpack("<H", fh.read(2))
            cold_regions = [struct.unpack("<QQ", fh.read(16))
                            for _ in range(n_regions)]
            instructions = []
            for _ in range(count):
                (pc, op, dest, s0, s1, s2, addr, size, taken,
                 target) = _RECORD.unpack(fh.read(_RECORD.size))
                srcs = tuple(s for s in (s0, s1, s2) if s != NO_REG)
                instructions.append(Instruction(
                    pc=pc, op=OpClass(op), dest=dest, srcs=srcs, addr=addr,
                    size=size, taken=bool(taken), target=target,
                ))
        return cls(instructions, name=name, cold_regions=cold_regions)


def concatenate(traces: Iterable[Trace], name: str = "concat") -> Trace:
    """Join several traces into one."""
    instructions: List[Instruction] = []
    for trace in traces:
        instructions.extend(trace)
    return Trace(instructions, name=name)
