"""Per-benchmark statistical profiles for the synthetic SPEC2K workloads.

The paper reports, per benchmark: base IPC (Table 2), the average number
of out-of-order-issued loads (Table 4), average load/store queue
occupancies (Table 5), and several in-text instruction-mix facts (mgrid:
51% loads / 2% stores; vortex: 18% loads / 23% stores; equake: 42%
loads).  Each :class:`BenchmarkProfile` encodes those targets plus the
generator knobs that reproduce the *mechanisms* the paper's techniques
respond to:

* instruction mix and dependence distances (ILP),
* cache locality (streaming vs. pointer-chasing vs. resident),
* store-to-load forwarding pairs and their PC (in)stability,
* pair groups sharing SSIT indices — the source of the "constructive
  interference" that makes the realistic predictor out-perform the
  alias-free aggressive predictor on vortex and wupwise (Section 4.1.1),
* same-address load pairs (load-load ordering traffic).

The knob values were calibrated by running the base machine
(``scripts/calibrate.py``) and comparing against Tables 2, 4
and 5; they are inputs to :mod:`repro.workload.synthetic`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

KB = 1024
MB = 1024 * KB


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generator knobs + paper-reported targets for one benchmark."""

    name: str
    suite: str  # "INT" or "FP"

    # -- paper-reported targets (for calibration and reporting) --------
    base_ipc: float            # Table 2
    ooo_loads: float           # Table 4
    lq_occupancy: int          # Table 5 (avg load-queue entries)
    sq_occupancy: int          # Table 5 (avg store-queue entries)

    # -- instruction mix ------------------------------------------------
    load_frac: float
    store_frac: float
    branch_frac: float
    fp_frac: float             # FP share of compute (non-memory, non-branch)

    # -- dataflow / ILP ------------------------------------------------
    dep_distance: float = 4.0  # mean producer->consumer distance (slots)
    unroll: int = 2            # independent strands in the loop body
    kernel_size: int = 64      # static slots per kernel body
    num_kernels: int = 2       # kernels cycled phase-wise
    loop_trip: int = 64        # iterations per phase
    computed_addr_frac: float = 0.3  # loads whose address comes off a chain

    # -- memory locality -------------------------------------------------
    l1_footprint: int = 32 * KB   # hot streamed data
    l2_footprint: int = 1 * MB    # cold region (L2-resident or larger)
    cold_frac: float = 0.05       # loads touching the cold region
    chase_loads: int = 0          # pointer-chase slots per body (serial chains)
    chase_footprint: int = 0      # chase region (0 = use l2_footprint)
    chase_period: int = 1         # chase advances every Nth iteration
    cold_period: int = 1          # cold loads advance every Nth iteration
    cold_on_chain: bool = False   # cold loads' addresses come off the chase

    # -- store-to-load forwarding behaviour ------------------------------
    pair_frac: float = 0.15       # loads paired with an in-flight store
    forward_lag: int = 0          # iterations between store and paired load
    pair_noise: float = 0.10      # paired load reads a perturbed address
    pair_group_size: int = 1      # load PCs sharing one store stream+SSIT set

    # -- load-load ordering traffic ---------------------------------------
    same_addr_load_frac: float = 0.02  # loads duplicating a recent load addr

    # -- control flow -----------------------------------------------------
    branch_noise: float = 0.05    # share of branch slots with random outcome

    # -- software memory-ordering alternative (Section 2.2) ----------------
    #: "none" (hardware load-load ordering), "targeted" (a barrier before
    #: each same-address reload only — ideal software), or
    #: "conservative" (a barrier before *every* load — the defensive
    #: software the paper calls an overkill).
    membar_policy: str = "none"
    #: Rate-based barrier emission, orthogonal to ``membar_policy``: a
    #: ``MEMBAR`` is placed before every ``round(1/rate)``-th load slot,
    #: so the barrier dispatch/complete path is exercised at a known
    #: density even under the "none" policy.  0.0 (the default) emits
    #: nothing and leaves every existing trace byte-identical.
    membar_rate: float = 0.0

    def __post_init__(self) -> None:
        total = self.load_frac + self.store_frac + self.branch_frac
        if not 0.0 < total < 1.0:
            raise ValueError(
                f"{self.name}: load+store+branch fractions must leave room "
                f"for compute (got {total:.2f})"
            )
        if self.membar_policy not in ("none", "targeted", "conservative"):
            raise ValueError(f"{self.name}: bad membar_policy "
                             f"{self.membar_policy!r}")
        for frac_name in ("load_frac", "store_frac", "branch_frac", "fp_frac",
                          "cold_frac", "pair_frac", "pair_noise",
                          "same_addr_load_frac", "branch_noise",
                          "computed_addr_frac", "membar_rate"):
            value = getattr(self, frac_name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{self.name}: {frac_name} out of [0, 1]")

    @property
    def is_fp(self) -> bool:
        return self.suite == "FP"


def _int(name: str, **kw) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, suite="INT", fp_frac=kw.pop("fp_frac", 0.0), **kw)


def _fp(name: str, **kw) -> BenchmarkProfile:
    return BenchmarkProfile(name=name, suite="FP", fp_frac=kw.pop("fp_frac", 0.75), **kw)


#: The nine SPECint2000 and nine SPECfp2000 applications of Table 2.
SPEC2K_PROFILES: Dict[str, BenchmarkProfile] = {p.name: p for p in [
    # ---------------- integer ----------------
    _int("bzip",
         base_ipc=2.5,
         ooo_loads=3.4,
         lq_occupancy=16,
         sq_occupancy=6,
         load_frac=0.26,
         store_frac=0.09,
         branch_frac=0.12,
         dep_distance=5.0,
         unroll=3,
         computed_addr_frac=0.6,
         l1_footprint=384 * KB,
         cold_frac=0.02,
         cold_period=14,
         pair_frac=0.12,
         pair_noise=0.12,
         branch_noise=0.03),
    _int("gcc",
         base_ipc=2.1,
         ooo_loads=0.3,
         lq_occupancy=7,
         sq_occupancy=6,
         load_frac=0.25,
         store_frac=0.12,
         branch_frac=0.18,
         kernel_size=96,
         num_kernels=3,
         loop_trip=24,
         computed_addr_frac=0.1,
         l1_footprint=48 * KB,
         cold_frac=0.0,
         pair_frac=0.18,
         pair_noise=0.35,
         pair_group_size=2,
         branch_noise=0.12),
    _int("gzip",
         base_ipc=2.0,
         ooo_loads=0.8,
         lq_occupancy=14,
         sq_occupancy=7,
         load_frac=0.22,
         store_frac=0.1,
         branch_frac=0.14,
         computed_addr_frac=0.02,
         l1_footprint=96 * KB,
         cold_frac=0.02,
         cold_period=8,
         pair_frac=0.1,
         branch_noise=0.06),
    _int("mcf",
         base_ipc=0.3,
         ooo_loads=0.2,
         lq_occupancy=40,
         sq_occupancy=9,
         load_frac=0.3,
         store_frac=0.09,
         branch_frac=0.17,
         dep_distance=3.0,
         unroll=1,
         kernel_size=56,
         computed_addr_frac=0.95,
         l2_footprint=24 * MB,
         cold_frac=0.2,
         cold_on_chain=True,
         chase_loads=1,
         pair_frac=0.05,
         pair_noise=0.12,
         branch_noise=0.1),
    _int("parser",
         base_ipc=1.9,
         ooo_loads=0.8,
         lq_occupancy=21,
         sq_occupancy=9,
         load_frac=0.24,
         store_frac=0.09,
         branch_frac=0.16,
         computed_addr_frac=0.1,
         l1_footprint=96 * KB,
         cold_frac=0.02,
         cold_period=12,
         pair_frac=0.14,
         pair_noise=0.16,
         branch_noise=0.07),
    _int("perl",
         base_ipc=3.0,
         ooo_loads=3.2,
         lq_occupancy=34,
         sq_occupancy=20,
         load_frac=0.28,
         store_frac=0.15,
         branch_frac=0.12,
         dep_distance=5.0,
         unroll=3,
         computed_addr_frac=0.5,
         l1_footprint=32 * KB,
         cold_frac=0.0,
         pair_frac=0.18,
         pair_noise=0.12,
         branch_noise=0.01),
    _int("twolf",
         base_ipc=1.5,
         ooo_loads=1.0,
         lq_occupancy=18,
         sq_occupancy=6,
         load_frac=0.24,
         store_frac=0.07,
         branch_frac=0.14,
         dep_distance=3.5,
         computed_addr_frac=0.05,
         l1_footprint=96 * KB,
         l2_footprint=4 * MB,
         cold_frac=0.04,
         cold_period=5,
         pair_frac=0.08,
         branch_noise=0.09),
    _int("vortex",
         base_ipc=2.2,
         ooo_loads=1.9,
         lq_occupancy=13,
         sq_occupancy=18,
         load_frac=0.18,
         store_frac=0.23,
         branch_frac=0.14,
         dep_distance=5.0,
         unroll=3,
         kernel_size=112,
         num_kernels=3,
         loop_trip=20,
         computed_addr_frac=0.60,
         l1_footprint=48 * KB,
         cold_frac=0.02,
         cold_period=16,
         pair_frac=0.3,
         pair_noise=0.18,
         pair_group_size=6,
         branch_noise=0.1),
    _int("vpr",
         base_ipc=1.3,
         ooo_loads=1.5,
         lq_occupancy=41,
         sq_occupancy=15,
         load_frac=0.28,
         store_frac=0.1,
         branch_frac=0.12,
         computed_addr_frac=0.15,
         l1_footprint=160 * KB,
         l2_footprint=4 * MB,
         cold_period=4,
         pair_frac=0.12,
         pair_noise=0.14,
         branch_noise=0.08),
    # ---------------- floating point ----------------
    _fp("ammp",
         base_ipc=1.2,
         ooo_loads=1.2,
         lq_occupancy=65,
         sq_occupancy=28,
         load_frac=0.3,
         store_frac=0.13,
         branch_frac=0.05,
         computed_addr_frac=0.0,
         l1_footprint=192 * KB,
         l2_footprint=8 * MB,
         cold_period=4,
         pair_frac=0.06,
         branch_noise=0.02),
    _fp("applu",
         base_ipc=2.6,
         ooo_loads=1.5,
         lq_occupancy=49,
         sq_occupancy=19,
         load_frac=0.28,
         store_frac=0.11,
         branch_frac=0.03,
         dep_distance=6.0,
         computed_addr_frac=0.0,
         l1_footprint=256 * KB,
         l2_footprint=8 * MB,
         cold_frac=0.02,
         cold_period=16,
         pair_frac=0.12,
         pair_noise=0.08,
         branch_noise=0.01),
    _fp("art",
         base_ipc=0.3,
         ooo_loads=3.4,
         lq_occupancy=49,
         sq_occupancy=17,
         load_frac=0.32,
         store_frac=0.11,
         branch_frac=0.09,
         kernel_size=48,
         computed_addr_frac=0.10,
         l2_footprint=8 * MB,
         cold_frac=0.55,
         pair_frac=0.08,
         branch_noise=0.04),
    _fp("equake",
         base_ipc=1.1,
         ooo_loads=2.5,
         lq_occupancy=72,
         sq_occupancy=15,
         load_frac=0.42,
         store_frac=0.07,
         branch_frac=0.05,
         dep_distance=6.0,
         computed_addr_frac=0.05,
         l1_footprint=256 * KB,
         l2_footprint=8 * MB,
         cold_frac=0.04,
         cold_period=4,
         pair_frac=0.08,
         pair_noise=0.08,
         same_addr_load_frac=0.005,
         branch_noise=0.02),
    _fp("mesa",
         base_ipc=3.3,
         ooo_loads=0.9,
         lq_occupancy=33,
         sq_occupancy=20,
         load_frac=0.27,
         store_frac=0.14,
         branch_frac=0.08,
         dep_distance=8.0,
         computed_addr_frac=0.2,
         l1_footprint=16 * KB,
         cold_frac=0.02,
         cold_period=20,
         pair_frac=0.16,
         branch_noise=0.01),
    _fp("mgrid",
         base_ipc=2.2,
         ooo_loads=2.9,
         lq_occupancy=90,
         sq_occupancy=4,
         load_frac=0.51,
         store_frac=0.02,
         branch_frac=0.02,
         dep_distance=8.0,
         unroll=4,
         computed_addr_frac=0.08,
         l1_footprint=1 * MB,
         cold_frac=0.02,
         cold_period=24,
         pair_frac=0.04,
         pair_noise=0.05,
         same_addr_load_frac=0.0,
         branch_noise=0.01),
    _fp("sixtrack",
         base_ipc=2.9,
         ooo_loads=1.0,
         lq_occupancy=60,
         sq_occupancy=30,
         load_frac=0.3,
         store_frac=0.15,
         branch_frac=0.05,
         dep_distance=8.0,
         unroll=4,
         computed_addr_frac=0.15,
         l1_footprint=48 * KB,
         cold_frac=0.02,
         cold_period=20,
         pair_frac=0.1,
         pair_noise=0.08,
         branch_noise=0.02),
    _fp("swim",
         base_ipc=1.0,
         ooo_loads=0.9,
         lq_occupancy=70,
         sq_occupancy=21,
         load_frac=0.35,
         store_frac=0.1,
         branch_frac=0.02,
         dep_distance=5.0,
         computed_addr_frac=0.05,
         l1_footprint=512 * KB,
         l2_footprint=16 * MB,
         cold_period=3,
         pair_frac=0.08,
         pair_noise=0.08,
         branch_noise=0.01),
    _fp("wupwise",
         base_ipc=2.9,
         ooo_loads=2.3,
         lq_occupancy=47,
         sq_occupancy=31,
         load_frac=0.24,
         store_frac=0.16,
         branch_frac=0.05,
         dep_distance=8.0,
         unroll=4,
         kernel_size=112,
         num_kernels=3,
         loop_trip=20,
         computed_addr_frac=0.60,
         cold_frac=0.02,
         cold_period=12,
         pair_frac=0.16,
         pair_noise=0.15,
         pair_group_size=6,
         branch_noise=0.04),
]}

# The insertion order of SPEC2K_PROFILES is the paper's Table 2 order,
# which is exactly the order figures/tables must list benchmarks in —
# sorting here would scramble them.
INT_BENCHMARKS: Tuple[str, ...] = tuple(
    p.name for p in SPEC2K_PROFILES.values()  # sim-lint: ignore[SIM-D002]
    if p.suite == "INT")
FP_BENCHMARKS: Tuple[str, ...] = tuple(
    p.name for p in SPEC2K_PROFILES.values()  # sim-lint: ignore[SIM-D002]
    if p.suite == "FP")
ALL_BENCHMARKS: Tuple[str, ...] = INT_BENCHMARKS + FP_BENCHMARKS


def profile_for(name: str) -> BenchmarkProfile:
    """Look up a benchmark profile by name."""
    try:
        return SPEC2K_PROFILES[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; choose from {sorted(SPEC2K_PROFILES)}"
        ) from None
