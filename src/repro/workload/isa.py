"""The simulator's instruction model.

The simulator is *trace driven*: each :class:`Instruction` is a fully
resolved dynamic instruction carrying its program counter, register
dependences, effective address (for memory operations) and branch
outcome.  The out-of-order core honours the register and memory
dependences cycle-accurately; it does not interpret values.

Registers 0..31 are integer architectural registers and 32..63 are
floating-point registers; ``NO_REG`` (-1) means "no operand".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Tuple

NO_REG = -1

#: Number of integer architectural registers (FP registers follow).
INT_REG_BASE = 0
FP_REG_BASE = 32
NUM_ARCH_REGS = 64


class OpClass(enum.IntEnum):
    """Functional classes recognised by the core."""

    INT_ALU = 0
    INT_MUL = 1
    FP_ALU = 2
    FP_MUL = 3
    LOAD = 4
    STORE = 5
    BRANCH = 6
    FP_LOAD = 7
    FP_STORE = 8
    MEMBAR = 9

    @property
    def is_load(self) -> bool:
        return self in (OpClass.LOAD, OpClass.FP_LOAD)

    @property
    def is_store(self) -> bool:
        return self in (OpClass.STORE, OpClass.FP_STORE)

    @property
    def is_memory(self) -> bool:
        return self.is_load or self.is_store

    @property
    def is_branch(self) -> bool:
        return self is OpClass.BRANCH

    @property
    def is_membar(self) -> bool:
        return self is OpClass.MEMBAR

    @property
    def is_fp(self) -> bool:
        return self in (OpClass.FP_ALU, OpClass.FP_MUL, OpClass.FP_LOAD,
                        OpClass.FP_STORE)


#: Execution latency (cycles) per functional class.  Memory classes give
#: the address-generation latency; the cache access is modelled
#: separately by the memory hierarchy.
EXECUTION_LATENCY = {
    OpClass.INT_ALU: 1,
    OpClass.INT_MUL: 3,
    OpClass.FP_ALU: 2,
    OpClass.FP_MUL: 4,
    OpClass.LOAD: 1,
    OpClass.STORE: 1,
    OpClass.BRANCH: 1,
    OpClass.FP_LOAD: 1,
    OpClass.FP_STORE: 1,
    OpClass.MEMBAR: 1,
}

#: ``(is_load, is_store, is_memory, is_branch, is_membar, latency)``
#: per functional class, indexable by the ``OpClass`` value.  Hot
#: constructors and per-trace scans read this table instead of chaining
#: through the ``OpClass`` properties (one tuple index replaces five
#: descriptor calls per instruction).
OP_FLAGS: Tuple[Tuple[bool, bool, bool, bool, bool, int], ...] = tuple(
    (op.is_load, op.is_store, op.is_memory, op.is_branch, op.is_membar,
     EXECUTION_LATENCY[op])
    for op in OpClass)


@dataclass(frozen=True)
class Instruction:
    """One dynamic instruction of a trace.

    Attributes
    ----------
    pc:
        Program counter of the static instruction (byte address).
    op:
        Functional class.
    dest:
        Destination architectural register, or ``NO_REG``.
    srcs:
        Source architectural registers (``NO_REG`` entries are ignored).
    addr:
        Effective address for loads/stores, else -1.
    size:
        Access size in bytes for loads/stores.
    taken:
        Branch outcome (meaningful only for branches).
    target:
        Branch target PC (meaningful only for branches).
    """

    pc: int
    op: OpClass
    dest: int = NO_REG
    srcs: Tuple[int, ...] = field(default=())
    addr: int = -1
    size: int = 8
    taken: bool = False
    target: int = 0

    def __post_init__(self) -> None:
        if OP_FLAGS[self.op][2]:  # is_memory, sans two property chains
            if self.addr < 0:
                raise ValueError(
                    f"memory instruction at pc={self.pc:#x} needs an address")
            if self.size <= 0:
                raise ValueError("memory access size must be positive")

    @property
    def is_load(self) -> bool:
        return self.op.is_load

    @property
    def is_store(self) -> bool:
        return self.op.is_store

    @property
    def is_memory(self) -> bool:
        return self.op.is_memory

    @property
    def is_branch(self) -> bool:
        return self.op.is_branch

    @property
    def latency(self) -> int:
        return EXECUTION_LATENCY[self.op]

    def overlaps(self, other: "Instruction") -> bool:
        """True when the two accesses touch at least one common byte."""
        if not (self.is_memory and other.is_memory):
            return False
        return (self.addr < other.addr + other.size
                and other.addr < self.addr + self.size)


def make_nop(pc: int) -> Instruction:
    """A dependence-free single-cycle integer op (used as filler)."""
    return Instruction(pc=pc, op=OpClass.INT_ALU)
