"""Loop-structured synthetic trace generator.

A :class:`SyntheticProgram` compiles a :class:`BenchmarkProfile` into a
small set of *kernels* — loop bodies of static instruction slots with
fixed PCs — and then unrolls them dynamically into a
:class:`~repro.workload.trace.Trace`.  Static PCs repeat every
iteration, which is what makes the store-set / store-load pair
predictors (which are PC-indexed) behave as they do on real code.

The generator realises each profile knob with an explicit mechanism:

``load_frac`` / ``store_frac`` / ``branch_frac`` / ``fp_frac``
    slot-type composition of the loop body.
``dep_distance`` / ``unroll``
    register dataflow: sources are drawn from recently written
    destinations at roughly geometric distances; ``unroll`` independent
    strands bound the achievable ILP.
``computed_addr_frac``
    a load's address register is either the (fast) induction variable or
    the tail of a compute chain; chain-fed loads become ready late,
    which is how loads come to issue *out of order* (Table 4).
``pair_frac`` / ``forward_lag`` / ``pair_noise`` / ``pair_group_size``
    store-to-load forwarding pairs: a paired load reads the address its
    partner store wrote ``forward_lag`` (plus its group-member index)
    iterations earlier.  Members of a pair group are distinct load PCs
    deliberately placed at the same SSIT index, reproducing the
    constructive-aliasing effect of Section 4.1.1.
``cold_frac`` / ``l1_footprint`` / ``l2_footprint`` / ``chase_loads``
    cache behaviour, from L1-resident up to memory-bound dependent
    chains.
``same_addr_load_frac``
    same-address load pairs — the traffic policed by load-load ordering
    (Section 2.2).
``branch_noise``
    hard-to-predict branch slots.

Everything is deterministic in ``(profile, seed)``: string hashing uses
FNV-1a rather than Python's randomised ``hash``.
"""

from __future__ import annotations

import itertools
import random
from collections import deque
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.workload.addrgen import (
    AddressStream,
    PointerChaseStream,
    RandomStream,
    StackStream,
    StridedStream,
)
from repro.workload.isa import (FP_REG_BASE, NO_REG, OP_FLAGS, Instruction,
                                OpClass)
from repro.workload.spec2k import BenchmarkProfile, profile_for
from repro.workload.trace import Trace

#: SSIT size mirrored from the predictor (Table 1: 4K entries); pair
#: groups use it to construct deliberately colliding PCs.
SSIT_ENTRIES = 4096


def ssit_index(pc: int, entries: int = SSIT_ENTRIES) -> int:
    """The SSIT hash used by the predictor (XOR-folded word PC)."""
    return ((pc >> 2) ^ (pc >> 14)) & (entries - 1)


def colliding_pc(leader_pc: int, member: int, salt: int = 0,
                 entries: int = SSIT_ENTRIES) -> int:
    """A PC with the same SSIT index as ``leader_pc`` but in a different
    16K page (hence a different I-cache set).

    Inverts the XOR-fold: for high half ``h`` the low half must be
    ``index ^ h``.  ``salt`` (the group id) spreads distinct groups
    across pages so their relocated blocks do not fight over I-cache
    sets either.
    """
    index = ssit_index(leader_pc, entries)
    # Page steps of 9 flip low-offset bits through the XOR-fold (so the
    # relocated blocks land in distinct I-cache sets); 64 separates
    # groups.
    high = (leader_pc >> 14) + 1 + 9 * member + 64 * salt
    low = (index ^ high) & (entries - 1)
    return (high << 14) | (low << 2) | (leader_pc & 3)


def fnv1a(text: str) -> int:
    """Deterministic 32-bit string hash (Python's ``hash`` is salted)."""
    value = 0x811C9DC5
    for byte in text.encode("utf-8"):
        value = ((value ^ byte) * 0x01000193) & 0xFFFFFFFF
    return value


# Address-space layout (disjoint regions).
_HOT_LOAD_BASE = 0x1000_0000
_HOT_STORE_BASE = 0x1800_0000
_COLD_BASE = 0x2000_0000
_STACK_BASE = 0x3000_0000
_NOISE_BASE = 0x4000_0000
_CODE_BASE = 0x0040_0000
# Odd multiple of 8K so distinct kernels do not alias in the
# (1024-set, 32B-block) L1-I cache.
_KERNEL_PC_SPAN = 0x8_2000


@dataclass
class _Slot:
    """One static instruction of a kernel body."""

    pc: int
    op: OpClass
    dest: int = NO_REG
    srcs: tuple = ()
    stream: Optional[AddressStream] = None
    outcome: Optional[Callable[[random.Random], bool]] = None
    target: int = 0
    noise_prob: float = 0.0
    is_backedge: bool = False
    # Pair-group rotation: this load matches its store only on
    # iterations where ``iteration % match_modulo == match_member``.
    match_member: int = 0
    match_modulo: int = 1
    # Cold/chase slots advance their stream only every Nth iteration and
    # re-touch the (now cached) address otherwise — the steady-state
    # reuse a repeated sweep over a large structure exhibits.  Misses
    # per body = cold slots / advance_period.
    advance_period: int = 1
    last_addr: int = -1


class _Kernel:
    """A loop body: an ordered list of slots plus its entry PC."""

    def __init__(self, slots: List[_Slot], base_pc: int) -> None:
        self.slots = slots
        self.base_pc = base_pc


class _Strand:
    """Register-allocation state for one independent dataflow strand."""

    def __init__(self, int_regs: Sequence[int], fp_regs: Sequence[int]) -> None:
        self.int_regs = list(int_regs)
        self.fp_regs = list(fp_regs)
        self.induction = self.int_regs[0]
        # Register 0 of the strand is the induction variable; register 1
        # is reserved for pointer-chase chains (it must never be
        # clobbered by the rotating destination pool or the chain
        # breaks).
        self.chain_reg = self.int_regs[1] if len(self.int_regs) > 2 \
            else self.int_regs[0]
        self._int_cursor = 2 if len(self.int_regs) > 2 else 1
        self._pool_start = self._int_cursor
        self._fp_cursor = 0
        self.recent: deque = deque(maxlen=16)
        self.recent.append(self.induction)
        self.recent_loads: deque = deque(maxlen=4)

    def next_dest(self, fp: bool, track: bool = True) -> int:
        if fp:
            reg = self.fp_regs[self._fp_cursor % len(self.fp_regs)]
            self._fp_cursor += 1
        else:
            reg = self.int_regs[self._int_cursor]
            self._int_cursor += 1
            if self._int_cursor >= len(self.int_regs):
                self._int_cursor = self._pool_start
        if track:
            self.recent.append(reg)
        return reg

    def pick_src(self, rng: random.Random, mean_distance: float) -> int:
        """A recently written register roughly ``mean_distance`` back."""
        if not self.recent:
            return self.induction
        distance = 1 + min(int(rng.expovariate(1.0 / max(mean_distance, 1.0))),
                           len(self.recent) - 1)
        return self.recent[-distance]


class SyntheticProgram:
    """Compiled synthetic program for one benchmark profile."""

    def __init__(self, profile: BenchmarkProfile, seed: int = 0) -> None:
        self.profile = profile
        self.seed = seed
        self._build_rng = random.Random((fnv1a(profile.name) ^ seed)
                                        & 0xFFFFFFFF)
        self.kernels: List[_Kernel] = [
            self._build_kernel(k) for k in range(profile.num_kernels)
        ]

    # -- kernel construction -------------------------------------------

    def _build_kernel(self, kernel_index: int) -> _Kernel:
        profile = self.profile
        rng = self._build_rng
        base_pc = _CODE_BASE + kernel_index * _KERNEL_PC_SPAN

        strands = self._make_strands(profile.unroll)
        body_slots = profile.kernel_size
        n_loads = max(1, round(body_slots * profile.load_frac))
        n_stores = max(1, round(body_slots * profile.store_frac))
        n_branches = max(1, round(body_slots * profile.branch_frac))
        n_compute = max(1, body_slots - n_loads - n_stores - n_branches)

        kinds, pairing = self._compose_body(rng, n_loads, n_stores,
                                            n_branches, n_compute)
        load_positions = [i for i, kind in enumerate(kinds) if kind == "load"]
        mirrors = self._plan_mirrors(rng, load_positions, pairing)
        cold_positions = self._plan_cold(load_positions, pairing, mirrors)

        # Forwarding-group streams: one shared stack factory per group;
        # the store leads every consumer by (forward_lag + member) steps.
        group_streams = self._make_group_streams(kernel_index, pairing)

        # Stream factories for plain loads, shared with their mirrors.
        load_factories: Dict[int, Callable[[], AddressStream]] = {}

        slots: List[_Slot] = []
        pc_cursor = itertools.count()
        strand_cycle = itertools.cycle(strands)
        chase_budget = profile.chase_loads

        # Induction updates come first so address registers are ready
        # early each iteration.
        for strand in strands:
            pc = base_pc + next(pc_cursor) * 4
            slots.append(_Slot(pc=pc, op=OpClass.INT_ALU, dest=strand.induction,
                               srcs=(strand.induction,)))

        position_to_slot: Dict[int, int] = {}
        for position, kind in enumerate(kinds):
            strand = next(strand_cycle)
            if kind == "load" and self._wants_membar(position, mirrors):
                # Software load-load ordering (Section 2.2): a barrier
                # guards the load that follows.
                membar_pc = base_pc + next(pc_cursor) * 4
                slots.append(_Slot(pc=membar_pc, op=OpClass.MEMBAR))
            pc = base_pc + next(pc_cursor) * 4
            position_to_slot[position] = len(slots)
            if kind == "compute":
                slots.append(self._compute_slot(rng, pc, strand))
            elif kind in ("branch", "backedge"):
                slots.append(self._branch_slot(rng, pc, strand, base_pc,
                                               backedge=(kind == "backedge")))
            elif kind == "store":
                slots.append(self._store_slot(rng, pc, strand, position,
                                              pairing, group_streams,
                                              kernel_index))
            else:  # load
                if chase_budget > 0:
                    chase_budget -= 1
                    slots.append(self._chase_slot(pc, strand))
                else:
                    slots.append(self._load_slot(
                        rng, pc, strand, position, pairing, mirrors,
                        group_streams, load_factories, kernel_index,
                        cold=position in cold_positions))

        self._collide_group_pcs(slots, pairing, position_to_slot)
        return _Kernel(slots, base_pc)

    def _wants_membar(self, position: int, mirrors: dict) -> bool:
        policy = self.profile.membar_policy
        if policy == "conservative":
            return True
        if policy == "targeted" and position in mirrors:
            return True                  # the reload side of the pair
        rate = self.profile.membar_rate
        if rate > 0.0:
            # Deterministic density: every round(1/rate)-th load slot is
            # preceded by a barrier (per-slot coin flips would make low
            # rates a lottery across kernels).
            self._membar_counter = getattr(self, "_membar_counter", 0) + 1
            period = max(1, round(1.0 / rate))
            if self._membar_counter % period == 0:
                return True
        return False

    def _make_strands(self, unroll: int) -> List[_Strand]:
        strands = []
        int_per = max(4, 30 // max(unroll, 1))
        fp_per = max(4, 30 // max(unroll, 1))
        for s in range(unroll):
            int_base = 1 + s * int_per
            fp_base = FP_REG_BASE + 1 + s * fp_per
            strands.append(_Strand(
                range(int_base, min(int_base + int_per, 31)),
                range(fp_base, min(fp_base + fp_per, 63)),
            ))
        return strands

    # -- pairing plans ---------------------------------------------------

    def _compose_body(self, rng: random.Random, n_loads: int, n_stores: int,
                      n_branches: int, n_compute: int):
        """Lay out the body's slot kinds and the forwarding clusters.

        Forwarding pairs are emitted as *contiguous clusters* — a store
        immediately followed by its ``pair_group_size`` member loads —
        because store-to-load forwarding in real code happens at
        spill/reload distances of a few instructions; a pair spread tens
        of instructions apart is already committed by the time the load
        issues.  ``pair_frac`` sets the number of clusters relative to
        the load count: each cluster yields one matching load per
        iteration (members match in rotation).

        Returns ``(kinds, pairing)`` where ``pairing`` maps final body
        positions to pairing roles.
        """
        profile = self.profile
        group_size = max(1, profile.pair_group_size)
        n_groups = max(0, round(n_loads * profile.pair_frac))
        n_groups = min(n_groups, n_stores, max(n_loads // group_size, 1))

        loose = (["load"] * (n_loads - n_groups * group_size)
                 + ["store"] * (n_stores - n_groups)
                 + ["branch"] * (n_branches - 1)
                 + ["compute"] * n_compute)
        rng.shuffle(loose)

        kinds: List[str] = list(loose)
        pairing: dict = {}
        # Insert clusters at descending loose positions so later
        # insertions can never split an earlier cluster.
        insertion_points = sorted((rng.randrange(len(loose) + 1)
                                   for _ in range(n_groups)), reverse=True)
        cluster = ["pstore"] + ["pload"] * group_size
        for at in insertion_points:
            kinds[at:at] = cluster
        # Resolve final positions: walk the list assigning group ids in
        # order (clusters cannot interleave, so a simple scan works).
        group_id = -1
        member = 0
        final_kinds: List[str] = []
        for position, kind in enumerate(kinds):
            if kind == "pstore":
                group_id += 1
                member = 0
                pairing[position] = ("store", group_id)
                final_kinds.append("store")
            elif kind == "pload":
                pairing[position] = ("load", group_id, member)
                member += 1
                final_kinds.append("load")
            else:
                final_kinds.append(kind)
        final_kinds.append("backedge")
        return final_kinds, pairing

    def _plan_mirrors(self, rng: random.Random, load_positions: List[int],
                      pairing: dict) -> dict:
        """Choose load slots that duplicate another load slot's stream."""
        profile = self.profile
        candidates = [p for p in load_positions if p not in pairing]
        n_mirrors = round(len(load_positions) * profile.same_addr_load_frac)
        if len(candidates) < 2 * n_mirrors or n_mirrors == 0:
            return {}
        chosen = rng.sample(candidates, 2 * n_mirrors)
        # mirror position -> source position; the source must be built
        # first, so make the smaller position the source.
        mirrors = {}
        for i in range(n_mirrors):
            a, b = chosen[2 * i], chosen[2 * i + 1]
            source, mirror = (a, b) if a < b else (b, a)
            mirrors[mirror] = source
        return mirrors

    def _plan_cold(self, load_positions, pairing, mirrors) -> set:
        """Deterministically choose which load slots are cold.

        ``round(n_loads * cold_frac)`` slots (at least one when the
        fraction is non-zero), spread evenly over the unpaired,
        unmirrored loads — per-slot coin flips would make low fractions
        a lottery across kernels.
        """
        profile = self.profile
        if profile.cold_frac <= 0.0:
            return set()
        candidates = [p for p in load_positions
                      if p not in pairing and p not in mirrors
                      and mirrors.get(p) is None]
        if not candidates:
            return set()
        count = max(1, round(len(load_positions) * profile.cold_frac))
        count = min(count, len(candidates))
        step = len(candidates) / count
        return {candidates[int(i * step)] for i in range(count)}

    def _make_group_streams(self, kernel_index: int, pairing: dict) -> dict:
        """Build producer and per-member consumer streams for each group.

        The producer (store) leads every consumer by ``forward_lag``
        iterations; with the default lag of 0 and the store placed
        earlier in the body, a member load reads the very address its
        store wrote moments earlier in the same iteration.
        """
        profile = self.profile
        group_ids = sorted({role[1] for role in pairing.values()
                            if role[0] == "store"})
        streams: dict = {}
        for group_id in group_ids:
            seed = (fnv1a(f"{profile.name}/grp{kernel_index}/{group_id}")
                    ^ self.seed) & 0x7FFFFFFF
            base = _STACK_BASE + (kernel_index * 64 + group_id) * 0x1000
            factory = (lambda b=base, s=seed:
                       StackStream(b, slots=16, align=8, seed=s))
            members = max((role[2] for role in pairing.values()
                           if role[0] == "load" and role[1] == group_id),
                          default=-1) + 1
            producer = factory()
            for _ in range(profile.forward_lag):
                producer.next_address()
            consumers = [factory() for _ in range(members)]
            streams[group_id] = (producer, consumers)
        return streams

    # -- slot builders ---------------------------------------------------

    def _compute_slot(self, rng: random.Random, pc: int,
                      strand: _Strand) -> _Slot:
        profile = self.profile
        fp = rng.random() < profile.fp_frac
        if fp:
            op = OpClass.FP_MUL if rng.random() < 0.3 else OpClass.FP_ALU
        else:
            op = OpClass.INT_MUL if rng.random() < 0.1 else OpClass.INT_ALU
        srcs = (strand.pick_src(rng, profile.dep_distance),
                strand.pick_src(rng, profile.dep_distance))
        return _Slot(pc=pc, op=op, dest=strand.next_dest(fp), srcs=srcs)

    def _branch_slot(self, rng: random.Random, pc: int, strand: _Strand,
                     base_pc: int, backedge: bool) -> _Slot:
        profile = self.profile
        if backedge:
            # Outcome supplied by the emitter: taken until the phase ends.
            return _Slot(pc=pc, op=OpClass.BRANCH,
                         srcs=(strand.induction,), target=base_pc,
                         is_backedge=True)
        # Deterministic noise assignment: every k-th branch slot is
        # hard to predict, where k realises ``branch_noise`` exactly
        # (per-slot coin flips make low fractions a lottery).
        self._branch_counter = getattr(self, "_branch_counter", 0) + 1
        period = round(1.0 / profile.branch_noise) if profile.branch_noise \
            else 0
        if period and self._branch_counter % period == 0:
            outcome = lambda r: r.random() < 0.5  # noqa: E731
        else:
            outcome = lambda r: r.random() < 0.97  # noqa: E731
        return _Slot(pc=pc, op=OpClass.BRANCH,
                     srcs=(strand.pick_src(rng, profile.dep_distance),),
                     target=pc + 64, outcome=outcome)

    def _store_slot(self, rng: random.Random, pc: int, strand: _Strand,
                    position: int, pairing: dict, group_streams: dict,
                    kernel_index: int) -> _Slot:
        profile = self.profile
        role = pairing.get(position)
        if role is not None:
            stream = group_streams[role[1]][0]
        else:
            stream = self._plain_store_stream(position, kernel_index)
        op = OpClass.FP_STORE if rng.random() < profile.fp_frac else OpClass.STORE
        if role is not None:
            # Spills write early-ready values: a data operand drawn from
            # the live dataflow would make the reload (which waits on
            # this store under store-set synchronisation) a loop-carried
            # recurrence that no real spill/reload pair has.
            addr_src = strand.induction
            data_src = strand.induction
        else:
            addr_src = self._addr_src(rng, strand)
            data_src = strand.pick_src(rng, profile.dep_distance)
        return _Slot(pc=pc, op=op, srcs=(addr_src, data_src), stream=stream)

    def _load_slot(self, rng: random.Random, pc: int, strand: _Strand,
                   position: int, pairing: dict, mirrors: dict,
                   group_streams: dict,
                   load_factories: Dict[int, Callable[[], AddressStream]],
                   kernel_index: int, cold: bool = False) -> _Slot:
        profile = self.profile
        role = pairing.get(position)
        noise_prob = 0.0
        match_member, match_modulo = 0, 1
        if role is not None:
            __, group_id, member = role
            stream = group_streams[group_id][1][member]
            noise_prob = profile.pair_noise
            group_members = len(group_streams[group_id][1])
            match_member, match_modulo = member, max(group_members, 1)
        else:
            source = mirrors.get(position)
            if source is not None and source in load_factories:
                # Mirrors instantiate the *same factory*: identical
                # deterministic sequences => same address each iteration.
                stream = load_factories[source]()
            else:
                factory = self._plain_load_factory(position, kernel_index,
                                                   cold=cold)
                load_factories[position] = factory
                stream = factory()
        op = OpClass.FP_LOAD if rng.random() < profile.fp_frac else OpClass.LOAD
        cold = isinstance(stream, RandomStream)
        if role is not None:
            # Reloads use a base-register address (ready early), like the
            # spill/reload traffic they model.
            addr_src = strand.induction
        elif cold and profile.cold_on_chain:
            # Cold accesses hang off the pointer chase (fields of the
            # node just reached): they issue after the chase step and
            # therefore in program order (mcf's near-zero Table 4 row).
            addr_src = strand.chain_reg
        else:
            addr_src = self._addr_src(rng, strand)
        # Cold-miss results stay out of the dataflow pools: address
        # computations chaining on a 150-cycle miss would freeze the
        # oldest-non-issued-load pointer for the whole miss, which real
        # indexed addressing (chains on cache-resident data) does not do.
        dest = strand.next_dest(op is OpClass.FP_LOAD, track=not cold)
        if not cold:
            strand.recent_loads.append(dest)
        return _Slot(pc=pc, op=op, dest=dest,
                     srcs=(addr_src,), stream=stream, noise_prob=noise_prob,
                     match_member=match_member, match_modulo=match_modulo,
                     advance_period=profile.cold_period if cold else 1)

    def _chase_slot(self, pc: int, strand: _Strand) -> _Slot:
        """A pointer-chasing load.

        Reads and writes the strand's dedicated chain register, so every
        chase load on a strand forms one serial dependence chain across
        iterations — no memory-level parallelism, as in linked-structure
        walks (mcf, art).
        """
        profile = self.profile
        seed = (fnv1a(f"{profile.name}/chase/{pc}") ^ self.seed) & 0x7FFFFFFF
        footprint = profile.chase_footprint or profile.l2_footprint
        stream = PointerChaseStream(_COLD_BASE, footprint,
                                    align=64, seed=seed)
        return _Slot(pc=pc, op=OpClass.LOAD, dest=strand.chain_reg,
                     srcs=(strand.chain_reg,), stream=stream,
                     advance_period=profile.chase_period)

    # -- stream helpers ----------------------------------------------------

    def _plain_store_stream(self, position: int,
                            kernel_index: int) -> AddressStream:
        base = _HOT_STORE_BASE + (kernel_index * 256 + position) * 0x800
        footprint = max(64, self.profile.l1_footprint // 16)
        return StridedStream(base, stride=8, footprint=footprint)

    def _plain_load_factory(self, position: int, kernel_index: int,
                            cold: bool = False
                            ) -> Callable[[], AddressStream]:
        profile = self.profile
        if cold:
            seed = (fnv1a(f"{profile.name}/cold/{kernel_index}/{position}")
                    ^ self.seed) & 0x7FFFFFFF
            return (lambda s=seed:
                    RandomStream(_COLD_BASE, profile.l2_footprint,
                                 align=64, seed=s))
        # The per-position offset keeps two slots' sequences from being
        # identical (accidental same-address load pairs); overlapping
        # *regions* are fine and provide shared locality.
        base = (_HOT_LOAD_BASE + (position % 7) * (profile.l1_footprint // 8)
                + position * 264)
        stride = 8 * (1 + position % 3)
        footprint = max(stride, profile.l1_footprint // 4)
        return lambda b=base, st=stride, f=footprint: StridedStream(b, st, f)

    def _addr_src(self, rng: random.Random, strand: _Strand) -> int:
        profile = self.profile
        if rng.random() < profile.computed_addr_frac:
            # Chain-fed addresses deliberately read *late* values — by
            # preference a recent load's destination (indexed/indirect
            # addressing) — so these loads become ready late while their
            # younger neighbours issue past them (Table 4).
            if profile.cold_on_chain and profile.chase_loads > 0:
                # Everything hangs off the structure walk (mcf-style):
                # loads become ready together and issue in order.
                return strand.chain_reg
            if strand.recent_loads and rng.random() < 0.7:
                return strand.recent_loads[-1 - rng.randrange(
                    len(strand.recent_loads))]
            return strand.pick_src(rng, 2.0)
        return strand.induction

    def _collide_group_pcs(self, slots: List[_Slot], pairing: dict,
                           position_to_slot: Dict[int, int]) -> None:
        """Re-home pair-group loads so group members share an SSIT index."""
        leaders: Dict[int, int] = {}
        for position, role in sorted(pairing.items()):
            if role[0] != "load":
                continue
            group_id, member = role[1], role[2]
            slot = slots[position_to_slot[position]]
            if group_id not in leaders:
                leaders[group_id] = slot.pc
            else:
                slot.pc = colliding_pc(leaders[group_id], member,
                                       salt=group_id)

    # -- dynamic emission ----------------------------------------------

    def emit(self, n_instructions: int) -> Trace:
        """Unroll the kernels into a dynamic trace of ``n`` instructions."""
        profile = self.profile
        rng = random.Random((fnv1a(profile.name + "/emit") ^ self.seed)
                            & 0xFFFFFFFF)
        out: List[Instruction] = []
        kernel_cycle = itertools.cycle(self.kernels)
        global_iteration = 0
        while len(out) < n_instructions:
            kernel = next(kernel_cycle)
            for iteration in range(profile.loop_trip):
                last_phase_iteration = iteration == profile.loop_trip - 1
                for slot in kernel.slots:
                    out.append(self._emit_slot(rng, slot, global_iteration,
                                               last_phase_iteration))
                global_iteration += 1
                if len(out) >= n_instructions:
                    break
        return Trace(out[:n_instructions], name=profile.name,
                     cold_regions=[(_COLD_BASE, _STACK_BASE)])

    def _emit_slot(self, rng: random.Random, slot: _Slot, iteration: int,
                   last_phase_iteration: bool) -> Instruction:
        flags = OP_FLAGS[slot.op]
        if flags[2]:  # is_memory
            if slot.advance_period > 1:
                if slot.last_addr < 0 or iteration % slot.advance_period == 0:
                    slot.last_addr = slot.stream.next_address()
                addr = slot.last_addr
            else:
                addr = slot.stream.next_address()
            off_rotation = (slot.match_modulo > 1 and
                            iteration % slot.match_modulo != slot.match_member)
            if off_rotation or (slot.noise_prob
                                and rng.random() < slot.noise_prob):
                addr = _NOISE_BASE + ((addr ^ (slot.pc << 4)) & 0xFFFF)
            return Instruction(pc=slot.pc, op=slot.op, dest=slot.dest,
                               srcs=slot.srcs, addr=addr, size=8)
        if flags[3]:  # is_branch
            if slot.is_backedge:
                taken = not last_phase_iteration
            else:
                taken = slot.outcome(rng)
            return Instruction(pc=slot.pc, op=slot.op, srcs=slot.srcs,
                               taken=taken, target=slot.target)
        return Instruction(pc=slot.pc, op=slot.op, dest=slot.dest,
                           srcs=slot.srcs)


def generate_trace(benchmark, n_instructions: int = 20_000,
                   seed: int = 0) -> Trace:
    """Generate a synthetic trace for a benchmark name or profile.

    ``litmus/...`` names (see :mod:`repro.litmus`) dispatch to the
    litmus generator, which makes litmus cells first-class benchmarks
    everywhere a benchmark name travels — the CLI, the sweep engine and
    its result cache included.
    """
    if isinstance(benchmark, str) and benchmark.startswith("litmus/"):
        # Imported lazily: repro.litmus depends on this module.
        from repro.litmus import generate_litmus, parse_litmus_name
        spec = parse_litmus_name(benchmark)
        trace, _ = generate_litmus(spec, n_instructions=n_instructions,
                                   seed=seed)
        return trace
    profile = (benchmark if isinstance(benchmark, BenchmarkProfile)
               else profile_for(benchmark))
    return SyntheticProgram(profile, seed=seed).emit(n_instructions)
