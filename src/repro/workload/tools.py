"""Trace-analysis tools.

These answer the questions a workload has to get right for the paper's
mechanisms to be exercised — the same analyses used to calibrate the
synthetic profiles against the paper's tables:

* :func:`store_load_match_distances` — how far behind each load is the
  most recent same-address store (forwarding happens only when that
  distance fits in the instruction window).
* :func:`dependence_profile` — register dependence distances and the
  length of the critical dataflow path (an upper bound on IPC).
* :func:`address_locality` — unique blocks touched per region, the raw
  material of cache behaviour.
* :func:`same_address_load_pairs` — the load-load ordering traffic that
  Section 2.2's machinery polices.
* :func:`mix_report` — one text report combining all of the above.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List

from repro.workload.isa import NO_REG
from repro.workload.trace import Trace


@dataclass
class MatchDistanceProfile:
    """Distribution of store-to-load forwarding distances."""

    total_loads: int
    matched_loads: int                 # loads with *any* earlier store match
    histogram: Dict[int, int]          # bucketed distance -> count
    bucket: int = 64

    @property
    def match_fraction(self) -> float:
        return self.matched_loads / self.total_loads if self.total_loads \
            else 0.0

    def within(self, distance: int) -> int:
        """Matches whose whole bucket lies within ``distance``."""
        return sum(count for b, count in self.histogram.items()
                   if (b + 1) * self.bucket - 1 <= distance)


def store_load_match_distances(trace: Trace,
                               bucket: int = 64) -> MatchDistanceProfile:
    """Distance (in instructions) from each load to the latest matching
    older store, bucketed."""
    last_store: Dict[int, int] = {}
    histogram: Counter = Counter()
    total = matched = 0
    for index, inst in enumerate(trace):
        if inst.is_store:
            last_store[inst.addr] = index
        elif inst.is_load:
            total += 1
            at = last_store.get(inst.addr)
            if at is not None:
                matched += 1
                histogram[(index - at) // bucket] += 1
    return MatchDistanceProfile(total_loads=total, matched_loads=matched,
                                histogram=dict(histogram), bucket=bucket)


@dataclass
class DependenceProfile:
    """Register dataflow summary of a trace."""

    mean_distance: float               # producer -> consumer, instructions
    critical_path: int                 # longest dependence chain
    dataflow_ipc_bound: float          # len(trace) / critical_path

    def __str__(self) -> str:
        return (f"mean dep distance {self.mean_distance:.1f}, critical path "
                f"{self.critical_path} (IPC bound "
                f"{self.dataflow_ipc_bound:.1f})")


def dependence_profile(trace: Trace) -> DependenceProfile:
    """RAW dependence distances and the dataflow critical path."""
    last_writer: Dict[int, int] = {}
    depth: List[int] = []
    distances: List[int] = []
    longest = 0
    for index, inst in enumerate(trace):
        inst_depth = 0
        for src in inst.srcs:
            if src == NO_REG:
                continue
            producer = last_writer.get(src)
            if producer is not None:
                distances.append(index - producer)
                inst_depth = max(inst_depth, depth[producer])
        inst_depth += 1
        depth.append(inst_depth)
        longest = max(longest, inst_depth)
        if inst.dest != NO_REG:
            last_writer[inst.dest] = index
    mean = sum(distances) / len(distances) if distances else 0.0
    bound = len(trace) / longest if longest else 0.0
    return DependenceProfile(mean_distance=mean, critical_path=longest,
                             dataflow_ipc_bound=bound)


@dataclass
class LocalityProfile:
    """Unique blocks touched, overall and per cold/hot split."""

    unique_blocks: int
    hot_blocks: int
    cold_blocks: int
    block_bytes: int = 32

    @property
    def footprint_bytes(self) -> int:
        return self.unique_blocks * self.block_bytes


def address_locality(trace: Trace, block_bytes: int = 32) -> LocalityProfile:
    """Unique data blocks, split by the trace's registered cold regions."""
    hot, cold = set(), set()
    for inst in trace:
        if not inst.is_memory:
            continue
        block = inst.addr // block_bytes
        if trace.is_cold_address(inst.addr):
            cold.add(block)
        else:
            hot.add(block)
    return LocalityProfile(unique_blocks=len(hot) + len(cold),
                           hot_blocks=len(hot), cold_blocks=len(cold),
                           block_bytes=block_bytes)


def same_address_load_pairs(trace: Trace, window: int = 256) -> int:
    """Count loads that re-read an address a recent load touched.

    These are the pairs for which same-address load-load ordering
    (Section 2.2) can matter; a pair only risks a violation when both
    loads can be in flight together, hence the window.
    """
    recent: Dict[int, int] = {}
    pairs = 0
    for index, inst in enumerate(trace):
        if not inst.is_load:
            continue
        at = recent.get(inst.addr)
        if at is not None and index - at <= window:
            pairs += 1
        recent[inst.addr] = index
    return pairs


def burstiness(trace: Trace, group: int = 8) -> Dict[int, int]:
    """Histogram of memory ops per ``group``-instruction fetch group.

    Search-port pressure comes from bursts, not averages: a 2-ported
    LSQ handles 0.8 memory ops/cycle on average but not the groups with
    4+.
    """
    histogram: Counter = Counter()
    for start in range(0, len(trace) - group + 1, group):
        count = sum(1 for i in range(start, start + group)
                    if trace[i].is_memory)
        histogram[count] += 1
    return dict(histogram)


def mix_report(trace: Trace) -> str:
    """A one-stop text report of everything above."""
    stats = trace.stats()
    matches = store_load_match_distances(trace)
    deps = dependence_profile(trace)
    locality = address_locality(trace)
    pairs = same_address_load_pairs(trace)
    bursts = burstiness(trace)
    heavy = sum(count for n, count in bursts.items() if n > 2)
    lines = [
        f"trace {trace.name!r}: {len(trace)} instructions",
        f"  mix: {stats.load_fraction:.1%} loads, "
        f"{stats.store_fraction:.1%} stores, "
        f"{stats.branch_fraction:.1%} branches, {stats.fp_ops} fp ops",
        f"  dataflow: {deps}",
        f"  forwarding: {matches.match_fraction:.1%} of loads have an "
        f"earlier same-address store; "
        f"{matches.within(128)} within 128 instructions",
        f"  locality: {locality.footprint_bytes / 1024:.0f} KiB touched "
        f"({locality.hot_blocks} hot / {locality.cold_blocks} cold blocks)",
        f"  load-load: {pairs} same-address load pairs within a window",
        f"  burstiness: {heavy} fetch groups with 3+ memory ops",
    ]
    return "\n".join(lines)
