"""Address-stream generators for synthetic workloads.

Each static memory instruction in a synthetic program draws its
effective addresses from one of these streams.  The streams model the
locality classes that matter to the paper's mechanisms:

* :class:`StridedStream` — array sweeps (dense spatial locality; L1/L2
  behaviour controlled by the footprint).
* :class:`RandomStream` — uniformly random accesses over a region
  (controls miss rate through region size).
* :class:`PointerChaseStream` — a seeded random permutation walked one
  element at a time (mcf/art-style dependent misses).
* :class:`StackStream` — a small, heavily reused window (store-to-load
  forwarding hot spots).

All streams are deterministic given their seed so traces are
reproducible.
"""

from __future__ import annotations

import random
from typing import List


class AddressStream:
    """Base class: an infinite, deterministic sequence of addresses."""

    def next_address(self) -> int:
        raise NotImplementedError

    def reset(self) -> None:
        """Rewind the stream to its initial state."""
        raise NotImplementedError


class StridedStream(AddressStream):
    """Linear sweep ``base, base+stride, ...`` wrapping at ``footprint``."""

    def __init__(self, base: int, stride: int, footprint: int) -> None:
        if stride <= 0 or footprint <= 0:
            raise ValueError("stride and footprint must be positive")
        if footprint < stride:
            raise ValueError("footprint must cover at least one stride")
        self.base = base
        self.stride = stride
        self.footprint = footprint
        self._offset = 0

    def next_address(self) -> int:
        addr = self.base + self._offset
        self._offset = (self._offset + self.stride) % self.footprint
        return addr

    def reset(self) -> None:
        self._offset = 0


class RandomStream(AddressStream):
    """Uniform random addresses in ``[base, base+footprint)``, aligned."""

    def __init__(self, base: int, footprint: int, align: int = 8,
                 seed: int = 0) -> None:
        if footprint < align:
            raise ValueError("footprint must hold at least one element")
        self.base = base
        self.footprint = footprint
        self.align = align
        self.seed = seed
        self._rng = random.Random(seed)

    def next_address(self) -> int:
        slots = self.footprint // self.align
        return self.base + self._rng.randrange(slots) * self.align

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


class PointerChaseStream(AddressStream):
    """Walk a seeded random permutation of ``footprint // align`` slots.

    Successive addresses are data-dependent in real pointer chasing; the
    synthetic program models that by making the chasing load feed the
    next iteration's address register.
    """

    def __init__(self, base: int, footprint: int, align: int = 8,
                 seed: int = 0) -> None:
        slots = footprint // align
        if slots < 2:
            raise ValueError("pointer chase needs at least two slots")
        self.base = base
        self.align = align
        self.seed = seed
        rng = random.Random(seed)
        order = list(range(slots))
        rng.shuffle(order)
        # next_slot[i] follows the shuffled cycle, guaranteeing full
        # coverage before repetition.
        self._next_slot: List[int] = [0] * slots
        for i, slot in enumerate(order):
            self._next_slot[slot] = order[(i + 1) % slots]
        self._start = order[0]
        self._current = self._start

    def next_address(self) -> int:
        addr = self.base + self._current * self.align
        self._current = self._next_slot[self._current]
        return addr

    def reset(self) -> None:
        self._current = self._start


class StackStream(AddressStream):
    """Hot reuse of a handful of slots (spill/fill style traffic).

    Addresses cycle pseudo-randomly through ``slots`` aligned locations,
    so a store and a later load using the same stream at the same phase
    hit identical addresses — the raw material for store-to-load
    forwarding.
    """

    def __init__(self, base: int, slots: int = 8, align: int = 8,
                 seed: int = 0) -> None:
        if slots <= 0:
            raise ValueError("slots must be positive")
        self.base = base
        self.slots = slots
        self.align = align
        self.seed = seed
        self._rng = random.Random(seed)

    def next_address(self) -> int:
        return self.base + self._rng.randrange(self.slots) * self.align

    def reset(self) -> None:
        self._rng = random.Random(self.seed)


def paired_streams(factory, lag: int = 0):
    """Create a (producer, consumer) pair of identical streams.

    ``factory()`` must build a fresh, deterministic stream.  The producer
    (typically a store) is pre-advanced by ``lag`` addresses, so when
    producer and consumer are stepped once per loop iteration the
    consumer's address in iteration *i* equals the producer's address in
    iteration *i - lag*: the load reads what the store wrote ``lag``
    iterations ago — an in-flight store-load pair whenever ``lag``
    iterations fit in the instruction window.
    """
    if lag < 0:
        raise ValueError("lag must be >= 0")
    producer = factory()
    consumer = factory()
    for _ in range(lag):
        producer.next_address()
    return producer, consumer
