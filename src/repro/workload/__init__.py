"""Workload substrate: instruction model, traces, and SPEC2K-like generators.

The paper evaluates on SPEC2K reference runs (skip 3 billion, simulate
500 million instructions).  Those binaries and traces are not available
here, so this package provides a *synthetic* equivalent: a loop-structured
trace generator (:mod:`repro.workload.synthetic`) driven by per-benchmark
statistical profiles (:mod:`repro.workload.spec2k`) calibrated to the
characteristics the paper itself reports — instruction mix, ILP,
store-to-load forwarding behaviour, queue occupancies, and cache
locality.  See DESIGN.md for the substitution rationale.
"""

from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace
from repro.workload.spec2k import (
    BenchmarkProfile,
    SPEC2K_PROFILES,
    INT_BENCHMARKS,
    FP_BENCHMARKS,
    ALL_BENCHMARKS,
    profile_for,
)
from repro.workload.synthetic import SyntheticProgram, generate_trace
from repro.workload.tools import (
    address_locality,
    burstiness,
    dependence_profile,
    mix_report,
    same_address_load_pairs,
    store_load_match_distances,
)

__all__ = [
    "Instruction",
    "OpClass",
    "Trace",
    "BenchmarkProfile",
    "SPEC2K_PROFILES",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "ALL_BENCHMARKS",
    "profile_for",
    "SyntheticProgram",
    "generate_trace",
    "mix_report",
    "store_load_match_distances",
    "dependence_profile",
    "address_locality",
    "same_address_load_pairs",
    "burstiness",
]
