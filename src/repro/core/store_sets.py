"""Store-set predictor and the store-load pair extension (Section 2.1).

The structures follow Chrysos & Emer: a Store Set ID Table (SSIT)
indexed by (hashed) PC maps loads and stores to store-set identifiers,
and a Last Fetched Store Table (LFST) indexed by SSID tracks the most
recently fetched store of each set.

The paper's extension adds a **multi-bit counter** per LFST entry that
counts the set's in-flight stores from fetch to *commit*:

* store dispatch: ``valid = True``, ``counter += 1`` (saturating);
* store issue: ``valid = False`` when it is the last-fetched store
  (the store-set synchronisation point — waiting loads may go);
* store commit: ``counter -= 1``;
* squash: the counter is rolled back for each squashed store (the paper
  charges one extra recovery cycle for this work).

A load reads the SSIT at dispatch; if it maps to a set it is *predicted
dependent* and (a) waits for the set's last-fetched store to issue
(store-set semantics) and (b) at issue, searches the store queue only
when the counter is non-zero (pair-predictor semantics).

Training: store-set prediction trains on violations only; the pair
predictor additionally trains on every observed store-to-load forwarding
(Figure 2's store0-load2 pair), which this module receives via
:meth:`train_pair` at load commit.

Tables are cleared periodically (as in Chrysos & Emer) to evict stale
pairings; the interval here is scaled down in proportion to the shorter
synthetic runs.

Two table implementations share the logic:

* :class:`_RealTables` — finite SSIT/LFST with index aliasing (Table 1:
  4K / 128 entries);
* :class:`_IdealTables` — unbounded exact-PC tables, the "aggressive"
  predictor of Section 4.1.1 (no aliasing, hence no constructive
  interference).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Union

from repro.config import PredictorMode, StoreSetConfig
from repro.obs.events import EventBus
from repro.stats.counters import SimStats

if TYPE_CHECKING:
    from repro.pipeline.dyninst import DynInst

#: Components any stage may touch directly (sim-lint SIM-M registry):
#: the observability layer, like stats/tracer, is write-from-anywhere.
SIM_LINT_INTERFACES = frozenset({"obs"})

#: Committed-instruction interval between table invalidations.  Chrysos
#: & Emer clear their tables every ~1M cycles over 100M+ instruction
#: runs; our synthetic traces are ~10^4 instructions, so the interval is
#: scaled to keep a comparable number of clears per run.  Clearing is
#: what separates the realistic pair predictor from the alias-free
#: "aggressive" one: after a clear, one violation re-trains a whole
#: aliased SSIT group at once, while the aggressive predictor pays one
#: squash per load PC (Section 4.1.1's constructive interference).
DEFAULT_CLEAR_INTERVAL = 8192


class _LfstEntry:
    __slots__ = ("store_seq", "valid", "counter")

    def __init__(self) -> None:
        self.store_seq = -1
        self.valid = False
        self.counter = 0


class _RealTables:
    """Finite, aliasing SSIT + LFST (the realistic hardware)."""

    __slots__ = ("config", "_ssit", "_lfst", "_ssit_mask", "_lfst_mask")

    def __init__(self, config: StoreSetConfig) -> None:
        self.config = config
        self._ssit: List[Optional[int]] = [None] * config.ssit_entries
        self._lfst = [_LfstEntry() for _ in range(config.lfst_entries)]
        self._ssit_mask = config.ssit_entries - 1
        self._lfst_mask = config.lfst_entries - 1

    def _index(self, pc: int) -> int:
        # XOR-folded so PCs that alias in the SSIT need not alias in the
        # (low-bits-indexed) instruction cache.
        return ((pc >> 2) ^ (pc >> 14)) & self._ssit_mask

    def ssid_for(self, pc: int) -> Optional[int]:
        return self._ssit[self._index(pc)]

    def lfst(self, ssid: int) -> _LfstEntry:
        return self._lfst[ssid & self._lfst_mask]

    def assign(self, pc: int, ssid: int) -> None:
        self._ssit[self._index(pc)] = ssid

    def new_ssid(self, load_pc: int) -> int:
        return self._index(load_pc) & self._lfst_mask

    def clear(self) -> None:
        self._ssit = [None] * self.config.ssit_entries
        for entry in self._lfst:
            entry.store_seq = -1
            entry.valid = False
            entry.counter = 0


class _IdealTables:
    """Unbounded exact-PC tables (the alias-free aggressive predictor)."""

    def __init__(self, config: StoreSetConfig) -> None:
        self.config = config
        self._ssit: Dict[int, int] = {}
        self._lfst: Dict[int, _LfstEntry] = {}
        self._next_ssid = 0

    def ssid_for(self, pc: int) -> Optional[int]:
        return self._ssit.get(pc)

    def lfst(self, ssid: int) -> _LfstEntry:
        entry = self._lfst.get(ssid)
        if entry is None:
            entry = _LfstEntry()
            self._lfst[ssid] = entry
        return entry

    def assign(self, pc: int, ssid: int) -> None:
        self._ssit[pc] = ssid

    def new_ssid(self, load_pc: int) -> int:
        self._next_ssid += 1
        return self._next_ssid

    def clear(self) -> None:
        self._ssit.clear()
        self._lfst.clear()


class PairPredictor:
    """Store-set + store-load pair prediction over either table flavour."""

    def __init__(self, config: StoreSetConfig, stats: SimStats,
                 mode: PredictorMode,
                 clear_interval: Optional[int] = None) -> None:
        if mode not in (PredictorMode.PAIR, PredictorMode.AGGRESSIVE,
                        PredictorMode.CONVENTIONAL):
            raise ValueError(f"PairPredictor does not implement {mode}")
        self.config = config
        self.stats = stats
        self.mode = mode
        #: Optional event bus (repro.obs); wired by Observer.attach().
        self.obs: Optional[EventBus] = None
        self.clear_interval = (clear_interval if clear_interval is not None
                               else config.clear_interval)
        self._clears = 0
        self.tables: Union[_RealTables, _IdealTables]
        if mode is PredictorMode.AGGRESSIVE:
            self.tables = _IdealTables(config)
        else:
            self.tables = _RealTables(config)

    # -- pipeline hooks ---------------------------------------------------

    def on_load_dispatch(self, load: DynInst) -> None:
        """SSIT/LFST access at fetch (Figure 3, load row)."""
        ssid = self.tables.ssid_for(load.pc)
        load.ssid = ssid
        if ssid is None:
            return
        load.predicted_dependent = True
        entry = self.tables.lfst(ssid)
        if entry.valid and -1 < entry.store_seq < load.seq:
            load.wait_store_seq = entry.store_seq

    def on_store_dispatch(self, store: DynInst) -> None:
        """valid := True, counter += 1, update LFST (Figure 3, store row)."""
        ssid = self.tables.ssid_for(store.pc)
        store.ssid = ssid
        if ssid is None:
            return
        entry = self.tables.lfst(ssid)
        entry.store_seq = store.seq
        entry.valid = True
        entry.counter = min(entry.counter + 1, self.config.counter_max)

    def on_store_issue(self, store: DynInst) -> None:
        """Clear the valid bit when the last-fetched store issues."""
        if store.ssid is None:
            return
        entry = self.tables.lfst(store.ssid)
        if entry.valid and entry.store_seq == store.seq:
            entry.valid = False

    def on_store_commit(self, store: DynInst) -> None:
        """counter -= 1 at commit (pair-predictor lifetime extends here)."""
        if store.ssid is None:
            return
        entry = self.tables.lfst(store.ssid)
        entry.counter = max(entry.counter - 1, 0)

    def on_store_squash(self, store: DynInst) -> None:
        """Roll the counter back for a squashed in-flight store."""
        if store.ssid is None:
            return
        entry = self.tables.lfst(store.ssid)
        entry.counter = max(entry.counter - 1, 0)
        if entry.valid and entry.store_seq == store.seq:
            entry.valid = False

    def should_search(self, load: DynInst) -> bool:
        """Pair prediction read at issue: search iff counter > 0.

        In CONVENTIONAL mode every load searches regardless (the
        predictor still provides store-set synchronisation).
        """
        if self.mode is PredictorMode.CONVENTIONAL:
            return True
        if load.ssid is None:
            return False
        return self.tables.lfst(load.ssid).counter > 0

    # -- training -----------------------------------------------------------

    def train_violation(self, load_pc: int, store_pc: int) -> None:
        """Merge the violating pair into a store set (Chrysos/Emer rules)."""
        if self.obs is not None:
            self.obs.emit("predictor_update", pc=load_pc, arg=store_pc,
                          note="violation")
        self._merge(load_pc, store_pc)

    def train_pair(self, load_pc: int, store_pc: int) -> None:
        """Pair-predictor training on observed forwarding (all matches,
        not just violations).  No-op for plain store-set prediction."""
        if self.mode is PredictorMode.CONVENTIONAL:
            return
        if self.obs is not None:
            self.obs.emit("predictor_update", pc=load_pc, arg=store_pc,
                          note="pair")
        self._merge(load_pc, store_pc)

    def _merge(self, load_pc: int, store_pc: int) -> None:
        load_ssid = self.tables.ssid_for(load_pc)
        store_ssid = self.tables.ssid_for(store_pc)
        if load_ssid is not None and store_ssid is not None:
            if load_ssid != store_ssid:
                winner = min(load_ssid, store_ssid)
                self.tables.assign(load_pc, winner)
                self.tables.assign(store_pc, winner)
        elif load_ssid is not None:
            self.tables.assign(store_pc, load_ssid)
        elif store_ssid is not None:
            self.tables.assign(load_pc, store_ssid)
        else:
            ssid = self.tables.new_ssid(load_pc)
            self.tables.assign(load_pc, ssid)
            self.tables.assign(store_pc, ssid)

    # -- maintenance ----------------------------------------------------------

    def maybe_clear(self, committed: int) -> None:
        """Periodic invalidation, as in Chrysos & Emer."""
        if self.clear_interval <= 0:
            return
        due = committed // self.clear_interval
        if due > self._clears:
            self._clears = due
            if self.obs is not None:
                self.obs.emit("predictor_update", arg=due, note="clear")
            self.tables.clear()


class PerfectPredictor:
    """Oracle stand-in: the LSQ consults queue contents directly.

    Provides the same hook surface as :class:`PairPredictor` but keeps no
    state; ``should_search`` is answered by the LSQ's oracle scan, so
    this class always defers (returns ``False``) and never blocks loads
    through store-set synchronisation.
    """

    mode = PredictorMode.PERFECT

    def __init__(self, config: StoreSetConfig, stats: SimStats) -> None:
        self.config = config
        self.stats = stats
        #: Same hook surface as PairPredictor (never emitted to).
        self.obs: Optional[EventBus] = None

    def on_load_dispatch(self, load: DynInst) -> None:  # noqa: D102
        pass

    def on_store_dispatch(self, store: DynInst) -> None:  # noqa: D102
        pass

    def on_store_issue(self, store: DynInst) -> None:  # noqa: D102
        pass

    def on_store_commit(self, store: DynInst) -> None:  # noqa: D102
        pass

    def on_store_squash(self, store: DynInst) -> None:  # noqa: D102
        pass

    def should_search(self, load: DynInst) -> bool:  # noqa: D102
        return False

    def train_violation(self, load_pc: int, store_pc: int) -> None:  # noqa: D102
        pass

    def train_pair(self, load_pc: int, store_pc: int) -> None:  # noqa: D102
        pass

    def maybe_clear(self, committed: int) -> None:  # noqa: D102
        pass


#: Either predictor flavour — what :func:`make_predictor` hands the LSQ.
Predictor = Union[PairPredictor, PerfectPredictor]


def make_predictor(mode: PredictorMode, config: StoreSetConfig,
                   stats: SimStats,
                   clear_interval: Optional[int] = None) -> Predictor:
    """Build the predictor variant for an LSQ configuration."""
    if mode is PredictorMode.PERFECT:
        return PerfectPredictor(config, stats)
    return PairPredictor(config, stats, mode, clear_interval)
