"""Queue structures for the (optionally segmented) load/store queue.

A :class:`SegmentedQueue` is one side (loads or stores) of the LSQ.
With ``segments == 1`` it degenerates to the conventional flat CAM.
With more segments it implements Section 3: entries are allocated into
chained segments under one of two policies and searches proceed one
segment per cycle.

* **no-self-circular** — the whole structure is one ring; allocation
  advances linearly from segment to segment even when earlier segments
  have free entries, so a small in-flight window still straddles
  segment boundaries over time (the effect behind the integer slowdowns
  in Figure 11).
* **self-circular** — each segment is its own ring; allocation stays in
  the current tail segment while it has free entries, compacting the
  window into as few segments as possible.

:class:`PortCalendar` books per-segment search ports cycle by cycle so
pipelined multi-segment searches can detect the contention cases of
Section 3.2.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

from repro.config import AllocationPolicy

if TYPE_CHECKING:
    from repro.pipeline.dyninst import DynInst


class SegmentedQueue:
    """One side of the LSQ: program-ordered entries in segments."""

    def __init__(self, name: str, segments: int, segment_entries: int,
                 policy: AllocationPolicy) -> None:
        if segments < 1 or segment_entries < 1:
            raise ValueError("segments and segment_entries must be >= 1")
        self.name = name
        self.num_segments = segments
        self.segment_entries = segment_entries
        self.policy = policy
        self._segments: List[List[DynInst]] = [[] for _ in range(segments)]
        self._order: List[DynInst] = []   # program order; head at _head
        self._head = 0
        self._virtual = 0           # ring cursor (no-self-circular)
        self._tail_segment = 0      # current tail segment (self-circular)

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._order) - self._head

    @property
    def capacity(self) -> int:
        return self.num_segments * self.segment_entries

    @property
    def empty(self) -> bool:
        return len(self) == 0

    def entries(self) -> Iterable[DynInst]:
        """In-flight entries in program order."""
        return iter(self._order[self._head:])

    @property
    def oldest(self) -> Optional[DynInst]:
        return self._order[self._head] if len(self) else None

    @property
    def youngest(self) -> Optional[DynInst]:
        return self._order[-1] if len(self) else None

    def head_segment(self) -> int:
        """Segment holding the oldest entry (tail segment when empty)."""
        oldest = self.oldest
        if oldest is None:
            return self._tail_segment if \
                self.policy is AllocationPolicy.SELF_CIRCULAR else \
                (self._virtual // self.segment_entries) % self.num_segments
        return oldest.lsq_segment

    # -- allocation ---------------------------------------------------------

    def _target_segment(self) -> Optional[int]:
        if self.policy is AllocationPolicy.NO_SELF_CIRCULAR:
            target = (self._virtual // self.segment_entries) % self.num_segments
            if len(self._segments[target]) < self.segment_entries:
                return target
            return None
        # self-circular: stay in the tail segment while it has room.
        for step in range(self.num_segments):
            candidate = (self._tail_segment + step) % self.num_segments
            if len(self._segments[candidate]) < self.segment_entries:
                return candidate
        return None

    def can_allocate(self) -> bool:
        return self._target_segment() is not None

    def allocate(self, inst: DynInst) -> int:
        """Place ``inst`` (the current youngest) and return its segment."""
        target = self._target_segment()
        if target is None:
            raise RuntimeError(f"{self.name}: allocate into a full queue")
        inst.lsq_segment = target
        inst.lsq_virtual = self._virtual
        self._virtual += 1
        self._tail_segment = target
        self._segments[target].append(inst)
        self._order.append(inst)
        return target

    # -- release ---------------------------------------------------------------

    def commit_head(self, inst: DynInst) -> None:
        """Release the oldest entry (must be ``inst``)."""
        if not len(self) or self._order[self._head] is not inst:
            raise RuntimeError(f"{self.name}: commit out of order")
        self._head += 1
        segment = self._segments[inst.lsq_segment]
        if not segment or segment[0] is not inst:
            # The oldest overall entry is the oldest in its segment.
            raise RuntimeError(f"{self.name}: segment bookkeeping broken")
        segment.pop(0)
        if self._head > 512:
            del self._order[:self._head]
            self._head = 0

    def squash_from(self, seq: int) -> List[DynInst]:
        """Drop every entry with sequence >= ``seq``; return them."""
        dropped: List[DynInst] = []
        while len(self) and self._order[-1].seq >= seq:
            inst = self._order.pop()
            dropped.append(inst)
            segment = self._segments[inst.lsq_segment]
            if segment and segment[-1] is inst:
                segment.pop()
            else:
                segment.remove(inst)
        if dropped:
            self._virtual = dropped[-1].lsq_virtual
            youngest = self.youngest
            if youngest is not None:
                self._tail_segment = youngest.lsq_segment
            else:
                self._tail_segment = (self._virtual // self.segment_entries
                                      ) % self.num_segments
        return dropped

    # -- search plans ------------------------------------------------------

    def backward_plan(self, seq: int) -> List[Tuple[int, List[DynInst]]]:
        """Segments to visit for a backward (towards-head) search.

        Returns ``[(segment, entries_older_than_seq_youngest_first), ...]``
        starting at the segment holding the youngest older entry and
        proceeding towards the head.  Empty segments are skipped (their
        occupancy bits prune the search).
        """
        per_segment: Dict[int, List[DynInst]] = {}
        for entry in self._order[self._head:]:
            if entry.seq >= seq:
                break
            per_segment.setdefault(entry.lsq_segment, []).append(entry)
        plan = sorted(per_segment.items(),
                      key=lambda item: item[1][-1].seq, reverse=True)
        return [(segment, list(reversed(entries)))
                for segment, entries in plan]

    def forward_plan(self, seq: int) -> List[Tuple[int, List[DynInst]]]:
        """Segments to visit for a forward (towards-tail) search.

        Returns ``[(segment, entries_younger_than_seq_oldest_first), ...]``
        starting at the segment holding the oldest younger entry.
        """
        per_segment: Dict[int, List[DynInst]] = {}
        for entry in reversed(self._order[self._head:]):
            if entry.seq <= seq:
                break
            per_segment.setdefault(entry.lsq_segment, []).append(entry)
        plan = sorted(per_segment.items(), key=lambda item: item[1][-1].seq)
        return [(segment, list(reversed(entries)))
                for segment, entries in plan]

    def occupied_segments(self) -> int:
        return sum(1 for seg in self._segments if seg)

    def segment_contents(self) -> List[List[DynInst]]:
        """Per-segment entry lists (copies), for white-box validation."""
        return [list(segment) for segment in self._segments]


class PortCalendar:
    """Cycle-by-cycle booking of per-segment search ports."""

    def __init__(self, ports_per_segment: int) -> None:
        if ports_per_segment <= 0:
            raise ValueError("ports_per_segment must be positive")
        self.ports = ports_per_segment
        self._used: Dict[Tuple[int, int], int] = {}
        self._sweep_cycle = 0

    def available(self, segment: int, cycle: int) -> bool:
        return self._used.get((segment, cycle), 0) < self.ports

    def free_ports(self, segment: int, cycle: int) -> int:
        return self.ports - self._used.get((segment, cycle), 0)

    def reserve(self, segment: int, cycle: int) -> None:
        key = (segment, cycle)
        used = self._used.get(key, 0)
        if used >= self.ports:
            raise RuntimeError("reserving an exhausted port slot")
        self._used[key] = used + 1

    def check_path(self, segments: List[int], start_cycle: int) -> str:
        """Classify availability along a pipelined search path.

        Returns ``"ok"`` (all slots free), ``"busy_now"`` (the first
        slot is taken — an ordinary structural stall), or
        ``"busy_later"`` (a downstream slot is taken — the Section 3.2
        contention case).
        """
        if not segments:
            return "ok"
        if not self.available(segments[0], start_cycle):
            return "busy_now"
        for offset, segment in enumerate(segments[1:], start=1):
            if not self.available(segment, start_cycle + offset):
                return "busy_later"
        return "ok"

    def reserve_path(self, segments: List[int], start_cycle: int) -> None:
        for offset, segment in enumerate(segments):
            self.reserve(segment, start_cycle + offset)

    def begin_cycle(self, cycle: int) -> None:
        """Garbage-collect bookings for past cycles."""
        if cycle - self._sweep_cycle < 64:
            return
        self._sweep_cycle = cycle
        stale = [key for key in self._used if key[1] < cycle]
        for key in stale:
            del self._used[key]

    def overbooked(self) -> List[Tuple[int, int, int]]:
        """Slots booked beyond capacity as ``(segment, cycle, used)``
        triples — always empty unless the booking discipline is broken
        (the invariant checker asserts exactly that)."""
        return [(segment, cycle, used)
                for (segment, cycle), used in self._used.items()
                if used > self.ports]
