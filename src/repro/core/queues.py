"""Queue structures for the (optionally segmented) load/store queue.

A :class:`SegmentedQueue` is one side (loads or stores) of the LSQ.
With ``segments == 1`` it degenerates to the conventional flat CAM.
With more segments it implements Section 3: entries are allocated into
chained segments under one of two policies and searches proceed one
segment per cycle.

* **no-self-circular** — the whole structure is one ring; allocation
  advances linearly from segment to segment even when earlier segments
  have free entries, so a small in-flight window still straddles
  segment boundaries over time (the effect behind the integer slowdowns
  in Figure 11).
* **self-circular** — each segment is its own ring; allocation stays in
  the current tail segment while it has free entries, compacting the
  window into as few segments as possible.

:class:`PortCalendar` books per-segment search ports cycle by cycle so
pipelined multi-segment searches can detect the contention cases of
Section 3.2.

Host-cost vs model-cost separation (see docs/PERFORMANCE.md): the queue
keeps three incrementally-maintained views of the same entries so the
*host* never rescans what the *model* already knows —

* ``_order`` — a deque holding exactly the live window in program
  order; commit pops the left end, squash the right, so memory stays
  bounded by occupancy and :meth:`entries` is zero-copy.
* ``_seg_seqs`` — per-segment sorted sequence-number lists, giving the
  pipelined search itinerary (:meth:`backward_path` /
  :meth:`forward_path`) by bisection instead of a full scan.
* ``_granules`` — an address-granule index (8-byte granules) mapping
  each granule to the seq-sorted entries touching it, so associative
  searches visit only same-address candidates
  (:meth:`candidate_lists`) while the *modeled* segment/port charges
  still come from the full search itinerary.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import deque
from typing import TYPE_CHECKING, Deque, Dict, Iterable, List, Optional, Tuple

from repro.config import AllocationPolicy
from repro.core.hotpath import hotpath

if TYPE_CHECKING:
    from repro.pipeline.dyninst import DynInst

#: Address-granule size used by the candidate index: two accesses can
#: only overlap in bytes if they touch a common 8-byte granule.
GRANULE_SHIFT = 3

#: sim-lint (SIM-T) blessing: these accessors *compute* the modeled
#: search itinerary from the host-side indexes above — their results
#: are model-architectural answers ("which segments does the paper's
#: pipelined search visit, in what order") and are the sanctioned
#: inputs for segment/port charges and search-length statistics.
#: Everything else derived from ``_order``/``_seg_seqs``/``_granules``
#: stays host-only and must not price the model.
SIM_LINT_MODEL_VIEWS = frozenset({
    "backward_path", "forward_path", "backward_plan", "forward_plan",
})


class SegmentedQueue:
    """One side of the LSQ: program-ordered entries in segments."""

    __slots__ = (
        "name", "num_segments", "segment_entries", "policy",
        "_segments", "_seg_seqs", "_order", "_virtual", "_tail_segment",
        "_occupied", "_granules", "live_loads",
    )

    def __init__(self, name: str, segments: int, segment_entries: int,
                 policy: AllocationPolicy) -> None:
        if segments < 1 or segment_entries < 1:
            raise ValueError("segments and segment_entries must be >= 1")
        self.name = name
        self.num_segments = segments
        self.segment_entries = segment_entries
        self.policy = policy
        self._segments: List[List[DynInst]] = [[] for _ in range(segments)]
        # Parallel per-segment seq lists (always sorted ascending):
        # search itineraries come from bisecting these.
        self._seg_seqs: List[List[int]] = [[] for _ in range(segments)]
        # Live window in program order: commit pops left, squash pops
        # right, so the deque never outgrows the queue's occupancy.
        self._order: Deque[DynInst] = deque()
        self._virtual = 0           # ring cursor (no-self-circular)
        self._tail_segment = 0      # current tail segment (self-circular)
        self._occupied = 0          # segments currently holding entries
        # granule -> seq-sorted entries touching that granule.
        self._granules: Dict[int, List[DynInst]] = {}
        #: Loads currently in the queue (O(1) occupancy sampling for the
        #: unified-queue configuration).
        self.live_loads = 0

    # -- basic accessors ---------------------------------------------------

    def __len__(self) -> int:
        return len(self._order)

    @property
    def capacity(self) -> int:
        return self.num_segments * self.segment_entries

    @property
    def empty(self) -> bool:
        return not self._order

    def entries(self) -> Iterable[DynInst]:
        """In-flight entries in program order (zero-copy view)."""
        return iter(self._order)

    @property
    def oldest(self) -> Optional[DynInst]:
        return self._order[0] if self._order else None

    @property
    def youngest(self) -> Optional[DynInst]:
        return self._order[-1] if self._order else None

    def head_segment(self) -> int:
        """Segment holding the oldest entry (tail segment when empty)."""
        oldest = self.oldest
        if oldest is None:
            return self._tail_segment if \
                self.policy is AllocationPolicy.SELF_CIRCULAR else \
                (self._virtual // self.segment_entries) % self.num_segments
        return oldest.lsq_segment

    # -- allocation ---------------------------------------------------------

    def _target_segment(self) -> Optional[int]:
        if self.policy is AllocationPolicy.NO_SELF_CIRCULAR:
            target = (self._virtual // self.segment_entries) % self.num_segments
            if len(self._segments[target]) < self.segment_entries:
                return target
            return None
        # self-circular: stay in the tail segment while it has room.
        for step in range(self.num_segments):
            candidate = (self._tail_segment + step) % self.num_segments
            if len(self._segments[candidate]) < self.segment_entries:
                return candidate
        return None

    def can_allocate(self) -> bool:
        return self._target_segment() is not None

    @hotpath
    def allocate(self, inst: DynInst) -> int:
        """Place ``inst`` (the current youngest) and return its segment."""
        target = self._target_segment()
        if target is None:
            raise RuntimeError(f"{self.name}: allocate into a full queue")
        inst.lsq_segment = target
        inst.lsq_virtual = self._virtual
        self._virtual += 1
        self._tail_segment = target
        segment = self._segments[target]
        if not segment:
            self._occupied += 1
        segment.append(inst)
        self._seg_seqs[target].append(inst.seq)
        self._order.append(inst)
        if inst.is_load:
            self.live_loads += 1
        granules = self._granules
        addr = inst.addr
        for granule in range(addr >> GRANULE_SHIFT,
                             ((addr + inst.size - 1) >> GRANULE_SHIFT) + 1):
            bucket = granules.get(granule)
            if bucket is None:
                granules[granule] = [inst]
            else:
                bucket.append(inst)
        return target

    def _index_remove(self, inst: DynInst) -> None:
        """Drop ``inst`` from every granule bucket it touches."""
        granules = self._granules
        addr = inst.addr
        for granule in range(addr >> GRANULE_SHIFT,
                             ((addr + inst.size - 1) >> GRANULE_SHIFT) + 1):
            bucket = granules[granule]
            if bucket[0] is inst:        # commit releases the oldest
                bucket.pop(0)
            elif bucket[-1] is inst:     # squash releases the youngest
                bucket.pop()
            else:
                bucket.remove(inst)
            if not bucket:
                del granules[granule]

    # -- release ---------------------------------------------------------------

    @hotpath
    def commit_head(self, inst: DynInst) -> None:
        """Release the oldest entry (must be ``inst``)."""
        order = self._order
        if not order or order[0] is not inst:
            raise RuntimeError(f"{self.name}: commit out of order")
        order.popleft()
        segment = self._segments[inst.lsq_segment]
        if not segment or segment[0] is not inst:
            # The oldest overall entry is the oldest in its segment.
            raise RuntimeError(f"{self.name}: segment bookkeeping broken")
        segment.pop(0)
        self._seg_seqs[inst.lsq_segment].pop(0)
        if not segment:
            self._occupied -= 1
        if inst.is_load:
            self.live_loads -= 1
        self._index_remove(inst)

    def squash_from(self, seq: int) -> List[DynInst]:
        """Drop every entry with sequence >= ``seq``; return them."""
        dropped: List[DynInst] = []
        order = self._order
        while order and order[-1].seq >= seq:
            inst = order.pop()
            dropped.append(inst)
            segment = self._segments[inst.lsq_segment]
            seqs = self._seg_seqs[inst.lsq_segment]
            if segment and segment[-1] is inst:
                segment.pop()
                seqs.pop()
            else:
                where = segment.index(inst)
                segment.pop(where)
                seqs.pop(where)
            if not segment:
                self._occupied -= 1
            if inst.is_load:
                self.live_loads -= 1
            self._index_remove(inst)
        if dropped:
            self._virtual = dropped[-1].lsq_virtual
            youngest = self.youngest
            if youngest is not None:
                self._tail_segment = youngest.lsq_segment
            else:
                self._tail_segment = (self._virtual // self.segment_entries
                                      ) % self.num_segments
        return dropped

    # -- search itineraries -------------------------------------------------

    @hotpath
    def backward_path(self, seq: int) -> List[int]:
        """Segments a backward (towards-head) search visits, in order.

        Visit order starts at the segment holding the youngest entry
        older than ``seq`` and proceeds towards the head; segments with
        no qualifying entry are pruned by their occupancy bits.  Found
        by bisecting the per-segment seq lists — no entry scan.
        """
        if self.num_segments == 1:      # flat CAM: visit segment 0 or skip
            seqs = self._seg_seqs[0]
            return [0] if seqs and seqs[0] < seq else []
        keyed: List[Tuple[int, int]] = []
        for segment, seqs in enumerate(self._seg_seqs):
            if not seqs or seqs[0] >= seq:
                continue
            keyed.append((seqs[bisect_left(seqs, seq) - 1], segment))
        keyed.sort(reverse=True)
        path: List[int] = []
        for __, segment in keyed:
            path.append(segment)
        return path

    @hotpath
    def forward_path(self, seq: int) -> List[int]:
        """Segments a forward (towards-tail) search visits, in order.

        Visit order starts at the segment holding the oldest entry
        younger than ``seq`` and proceeds towards the tail.
        """
        if self.num_segments == 1:      # flat CAM: visit segment 0 or skip
            seqs = self._seg_seqs[0]
            return [0] if seqs and seqs[-1] > seq else []
        keyed: List[Tuple[int, int]] = []
        for segment, seqs in enumerate(self._seg_seqs):
            if not seqs or seqs[-1] <= seq:
                continue
            keyed.append((seqs[bisect_right(seqs, seq)], segment))
        keyed.sort()
        path: List[int] = []
        for __, segment in keyed:
            path.append(segment)
        return path

    # -- candidate index ----------------------------------------------------

    @hotpath
    def candidate_lists(self, addr: int,
                        size: int) -> List[List[DynInst]]:
        """Seq-sorted entry lists that may overlap ``[addr, addr+size)``.

        Two accesses share a byte only if they share an 8-byte granule,
        so the union of these lists is a superset of every overlapping
        entry; callers still apply the precise ``overlaps`` test.  The
        returned lists are the live index buckets — read-only views.
        """
        granules = self._granules
        first = addr >> GRANULE_SHIFT
        last = (addr + size - 1) >> GRANULE_SHIFT
        if first == last:
            bucket = granules.get(first)
            return [bucket] if bucket is not None else []
        out: List[List[DynInst]] = []
        for granule in range(first, last + 1):
            bucket = granules.get(granule)
            if bucket is not None:
                out.append(bucket)
        return out

    # -- reference search plans ---------------------------------------------

    def backward_plan(self, seq: int) -> List[Tuple[int, List[DynInst]]]:
        """Segments to visit for a backward (towards-head) search.

        Returns ``[(segment, entries_older_than_seq_youngest_first), ...]``
        in :meth:`backward_path` order.  This is the white-box/reference
        view (tests, validation); the simulator's hot path pairs
        :meth:`backward_path` with :meth:`candidate_lists` instead.
        """
        plan: List[Tuple[int, List[DynInst]]] = []
        for segment in self.backward_path(seq):
            cut = bisect_left(self._seg_seqs[segment], seq)
            plan.append((segment, self._segments[segment][cut - 1::-1]))
        return plan

    def forward_plan(self, seq: int) -> List[Tuple[int, List[DynInst]]]:
        """Segments to visit for a forward (towards-tail) search.

        Returns ``[(segment, entries_younger_than_seq_oldest_first), ...]``
        in :meth:`forward_path` order (reference view, as above).
        """
        plan: List[Tuple[int, List[DynInst]]] = []
        for segment in self.forward_path(seq):
            cut = bisect_right(self._seg_seqs[segment], seq)
            plan.append((segment, self._segments[segment][cut:]))
        return plan

    def occupied_segments(self) -> int:
        return self._occupied

    def segment_contents(self) -> List[List[DynInst]]:
        """Per-segment entry lists (copies), for white-box validation."""
        return [list(segment) for segment in self._segments]


class PortCalendar:
    """Cycle-by-cycle booking of per-segment search ports."""

    __slots__ = ("ports", "_used", "_sweep_cycle")

    def __init__(self, ports_per_segment: int) -> None:
        if ports_per_segment <= 0:
            raise ValueError("ports_per_segment must be positive")
        self.ports = ports_per_segment
        self._used: Dict[Tuple[int, int], int] = {}
        self._sweep_cycle = 0

    def available(self, segment: int, cycle: int) -> bool:
        return self._used.get((segment, cycle), 0) < self.ports

    def free_ports(self, segment: int, cycle: int) -> int:
        return self.ports - self._used.get((segment, cycle), 0)

    def reserve(self, segment: int, cycle: int) -> None:
        key = (segment, cycle)
        used = self._used.get(key, 0)
        if used >= self.ports:
            raise RuntimeError("reserving an exhausted port slot")
        self._used[key] = used + 1

    def check_path(self, segments: List[int], start_cycle: int) -> str:
        """Classify availability along a pipelined search path.

        Returns ``"ok"`` (all slots free), ``"busy_now"`` (the first
        slot is taken — an ordinary structural stall), or
        ``"busy_later"`` (a downstream slot is taken — the Section 3.2
        contention case).
        """
        if not segments:
            return "ok"
        if not self.available(segments[0], start_cycle):
            return "busy_now"
        for offset in range(1, len(segments)):
            if not self.available(segments[offset], start_cycle + offset):
                return "busy_later"
        return "ok"

    def reserve_path(self, segments: List[int], start_cycle: int) -> None:
        for offset, segment in enumerate(segments):
            self.reserve(segment, start_cycle + offset)

    def begin_cycle(self, cycle: int) -> None:
        """Garbage-collect bookings for past cycles."""
        if cycle - self._sweep_cycle < 64:
            return
        self._sweep_cycle = cycle
        stale = [key for key in self._used if key[1] < cycle]
        for key in stale:
            del self._used[key]

    def overbooked(self) -> List[Tuple[int, int, int]]:
        """Slots booked beyond capacity as ``(segment, cycle, used)``
        triples — always empty unless the booking discipline is broken
        (the invariant checker asserts exactly that)."""
        return [(segment, cycle, used)
                for (segment, cycle), used in self._used.items()
                if used > self.ports]
