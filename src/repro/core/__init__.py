"""The paper's contribution: scalable load/store queue designs.

* :mod:`repro.core.store_sets` — the Chrysos/Emer store-set predictor
  extended into the paper's store-load *pair* predictor (Section 2.1),
  plus the alias-free "aggressive" idealisation.
* :mod:`repro.core.load_buffer` — the load buffer with its Non-Issued
  Load Pointer and Load Issue Vector (Section 2.2).
* :mod:`repro.core.queues` — the (optionally segmented) CAM queues and
  per-segment search-port calendars (Section 3).
* :mod:`repro.core.lsq` — the orchestrating :class:`LoadStoreQueue` the
  processor talks to.
"""

from repro.core.lsq import (
    CommitResult,
    LoadResult,
    LoadStoreQueue,
    StoreResult,
    Violation,
)
from repro.core.complexity import (
    ComplexityReport,
    search_energy,
    static_complexity,
)
from repro.core.load_buffer import LoadBuffer
from repro.core.queues import PortCalendar, SegmentedQueue
from repro.core.store_sets import PairPredictor, make_predictor

__all__ = [
    "LoadStoreQueue",
    "LoadResult",
    "StoreResult",
    "CommitResult",
    "Violation",
    "LoadBuffer",
    "SegmentedQueue",
    "PortCalendar",
    "PairPredictor",
    "make_predictor",
    "ComplexityReport",
    "static_complexity",
    "search_energy",
]
