"""Design-complexity model for load/store queue configurations.

The paper's motivation is *complexity*, not just cycles: a multi-ported
CAM's area grows with ports squared, its search energy with the number
of entries activated per search, and its cycle time with both.  This
module puts first-order numbers on those costs so the paper's designs
can be compared on a performance/complexity Pareto rather than IPC
alone.

The model is the standard CAM scaling used in architecture evaluations
(e.g. CACTI-class analytical models, reduced to their leading terms):

* **cell area** — each entry holds ``TAG_BITS`` of match storage plus
  payload; a match cell needs one compare port per search port, so cell
  area scales with ``1 + PORT_AREA_FACTOR * (ports - 1)``.
* **search energy** — one search activates every cell of the searched
  structure: proportional to entries-per-activated-structure, paid once
  per segment actually visited (the per-segment numbers are what the
  pipelined segmented search saves).
* **cycle-time pressure** — CAM delay grows ~logarithmically with
  entries through the match-line and ~linearly with ports through
  loading; normalised so the paper's base design (32 entries, 2 ports)
  is 1.0.

The absolute units are arbitrary; all results are reported relative to
the conventional two-ported base, which is how the paper frames its
complexity claims ("a one-ported load/store queue using our techniques
outperforms a two-ported conventional load/store queue").
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.config import LoadQueueSearchMode, LsqConfig, PredictorMode, \
    StoreSetConfig
from repro.stats.counters import SimStats

#: Address-tag bits compared per CAM entry.
TAG_BITS = 40
#: Payload (age, status, data pointer) bits stored per entry.
PAYLOAD_BITS = 24
#: Incremental area per extra search port, relative to a 1-port cell.
PORT_AREA_FACTOR = 0.7
#: Relative energy of one load-buffer entry search (tiny CAM).
LOAD_BUFFER_ENTRY_COST = 1.0
#: Relative energy of one predictor table access.
SSIT_ACCESS_COST = 0.02


@dataclass(frozen=True)
class ComplexityReport:
    """Area / energy / delay summary for one LSQ configuration."""

    #: Relative CAM area of both queues (1.0 = 32+32 entries, 2 ports).
    area: float
    #: Relative worst-case search delay (1.0 = 32-entry 2-port CAM).
    cycle_time: float
    #: Entries activated by one (single-segment) search.
    entries_per_search: int
    #: Search ports per activated structure.
    ports: int

    def format(self) -> str:
        return (f"area {self.area:.2f}x, cycle-time {self.cycle_time:.2f}x, "
                f"{self.entries_per_search} entries/"
                f"{self.ports} ports per search")


def _cell_area(ports: int) -> float:
    return (TAG_BITS + PAYLOAD_BITS) * (1 + PORT_AREA_FACTOR * (ports - 1))


def _cam_delay(entries: int, ports: int) -> float:
    """Leading-term CAM search delay (match line + port loading)."""
    return math.log2(max(entries, 2)) * (1 + 0.15 * (ports - 1))


def static_complexity(lsq: LsqConfig,
                      baseline: Optional[LsqConfig] = None
                      ) -> ComplexityReport:
    """Area and delay of an LSQ design relative to a baseline.

    The searched-structure size is what sets delay: a segmented queue's
    cycle time is governed by one *segment*, which is the paper's
    argument that segmentation keeps the CAM small while capacity grows.
    """
    if baseline is None:
        baseline = LsqConfig()  # 32+32 entries, 2 ports

    def totals(config: LsqConfig) -> Tuple[float, float, int]:
        entries = config.effective_lq_entries + config.effective_sq_entries
        searched = (config.segment_entries if config.segmented
                    else max(config.lq_entries, config.sq_entries))
        area = entries * _cell_area(config.search_ports)
        if config.lq_search is LoadQueueSearchMode.LOAD_BUFFER:
            area += config.load_buffer_entries * _cell_area(1)
        delay = _cam_delay(searched, config.search_ports)
        return area, delay, searched

    area, delay, searched = totals(lsq)
    base_area, base_delay, __ = totals(baseline)
    return ComplexityReport(area=area / base_area,
                            cycle_time=delay / base_delay,
                            entries_per_search=searched,
                            ports=lsq.search_ports)


def search_energy(stats: SimStats, lsq: LsqConfig,
                  store_sets: Optional[StoreSetConfig] = None) -> float:
    """Total dynamic search energy of one simulated run (relative units).

    Every CAM search pays for the entries it activates; segmented
    searches pay per visited segment (that is the bandwidth/energy win
    of confining searches to one segment, Table 6).  Predictor-based
    designs add their (much cheaper) table lookups.
    """
    if lsq.segmented:
        sq_entries = lq_entries = lsq.segment_entries
        sq_activations = stats.sq_segment_visits
        lq_activations = stats.lq_segment_visits
    else:
        sq_entries = lsq.sq_entries
        lq_entries = lsq.lq_entries
        sq_activations = stats.sq_searches
        lq_activations = stats.lq_searches
    energy: float = (sq_activations * sq_entries
                     + lq_activations * lq_entries)
    energy += stats.load_buffer_searches * lsq.load_buffer_entries \
        * LOAD_BUFFER_ENTRY_COST
    if lsq.predictor in (PredictorMode.PAIR, PredictorMode.AGGRESSIVE):
        table_entries = (store_sets or StoreSetConfig()).lfst_entries
        energy += (stats.loads_predicted_dependent
                   * SSIT_ACCESS_COST * table_entries)
    return energy


def pareto_row(label: str, stats: SimStats, lsq: LsqConfig,
               base_stats: SimStats, base_lsq: LsqConfig) -> Dict[str, str]:
    """One row of a performance-vs-complexity Pareto table."""
    report = static_complexity(lsq, baseline=base_lsq)
    energy = search_energy(stats, lsq)
    base_energy = search_energy(base_stats, base_lsq)
    return {
        "design": label,
        "speedup": f"{(stats.ipc / base_stats.ipc - 1) * 100:+.1f}%",
        "area": f"{report.area:.2f}x",
        "cycle-time": f"{report.cycle_time:.2f}x",
        "search-energy": f"{energy / max(base_energy, 1e-9):.2f}x",
        "capacity": str(lsq.effective_lq_entries
                        + lsq.effective_sq_entries),
    }
