"""Marker for the simulator's per-cycle hot paths.

``@hotpath`` adds zero runtime overhead — it returns the function
unchanged — but registers intent: sim-lint's SIM-H family keeps
list/set/dict comprehensions and generator expressions out of decorated
functions, because a fresh container per call on a per-cycle path is
exactly the allocation churn the committed perf baseline
(``BENCH_core.json``) defends against.  See ``docs/PERFORMANCE.md``
for the host-vs-model cost separation rule the marker enforces.
"""

from __future__ import annotations

from typing import Callable, TypeVar

__all__ = ["hotpath"]

F = TypeVar("F", bound=Callable[..., object])


def hotpath(func: F) -> F:
    """Mark ``func`` as per-cycle hot (enforced by sim-lint SIM-H)."""
    return func
