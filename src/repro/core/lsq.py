"""The load/store queue: the orchestrating model of the paper's designs.

One :class:`LoadStoreQueue` class covers every configuration in the
evaluation; the :class:`~repro.config.LsqConfig` selects the design
point:

* **conventional** — every load searches the store queue (forwarding)
  and the load queue (load-load ordering); every store searches the load
  queue at *execute* (store-load ordering).  Searches arbitrate for
  ``search_ports`` per queue per cycle.
* **store-load pair predictor** (Section 2.1) — loads predicted
  independent skip the store-queue search; store-load ordering checks
  move to store *commit*.
* **load buffer** (Section 2.2) — load-load checks move to a tiny
  dedicated buffer of out-of-order-issued loads; the load queue is
  searched only by stores.
* **segmentation** (Section 3) — both queues become chains of segments;
  searches pipeline across segments at one segment per cycle with
  per-segment ports, and the Section 3.2 contention cases are resolved
  by delaying store commits and squashing (or stalling) in-flight loads.

The processor drives the queue through a small API:
``allocate`` (dispatch), ``load_blocked``/``try_execute_load``/
``try_execute_store`` (memory stage), ``try_commit_store``/
``commit_load`` (retire), and ``squash_from`` (recovery).  The
``try_*`` methods return ``Retry`` when structural hazards (ports,
contention) require another attempt.
"""

from __future__ import annotations

from typing import Dict, List, NamedTuple, Optional, Tuple, Union

from repro.config import (
    ContentionPolicy,
    LoadQueueSearchMode,
    LsqConfig,
    PredictorMode,
    StoreSetConfig,
)
from repro.core.hotpath import hotpath
from repro.core.load_buffer import LoadBuffer, NilpTracker
from repro.core.queues import PortCalendar, SegmentedQueue
from repro.core.store_sets import Predictor, make_predictor
from repro.memory.hierarchy import MemoryHierarchy
from repro.obs.events import EventBus
from repro.pipeline.dyninst import DynInst
from repro.stats.counters import SimStats

#: Components any stage may touch directly (sim-lint SIM-M registry):
#: the observability layer, like stats/tracer, is write-from-anywhere.
SIM_LINT_INTERFACES = frozenset({"obs"})

#: Replay penalty (cycles) when a pipelined-search contention squashes an
#: in-flight load — "similar to a flush due to a load miss" (Section 3.2),
#: i.e. a scheduler replay, much cheaper than a full fetch squash.
CONTENTION_REPLAY_PENALTY = 4

#: Extra load latency when early (speculative) scheduling of the load's
#: dependents is forgone because its segmented search is not confined to
#: the head segment (Section 3): dependents wait for the value instead
#: of being woken back-to-back, costing the scheduler's load-to-use loop.
EARLY_SCHEDULING_PENALTY = 3

#: A pipelined search itinerary: the segment ids to visit, in order.
#: The *entries* a search examines come from the queue's address-granule
#: candidate index instead ("index the host, charge the model": the
#: modeled port/segment charges follow the itinerary, the host walks
#: only same-address candidates — see docs/PERFORMANCE.md).
SearchPath = List[int]


class Violation(NamedTuple):
    """A detected memory-order violation: squash ``squash_seq`` onward."""

    squash_seq: int
    kind: str                 # "store-load" | "load-load"
    extra_penalty: int = 0    # e.g. pair-predictor counter rollback


class Retry(NamedTuple):
    """Structural hazard: try again at ``next_cycle``."""

    next_cycle: int


class LoadResult(NamedTuple):
    latency: int              # cycles until the value is available
    forwarded: bool
    violation: Optional[Violation]


class StoreResult(NamedTuple):
    violation: Optional[Violation]


class CommitResult(NamedTuple):
    violation: Optional[Violation]


class LoadStoreQueue:
    """All four LSQ designs behind one processor-facing interface."""

    # No __slots__ here on purpose: there is one LoadStoreQueue per
    # simulation (no allocation pressure) and the fault-injection
    # harness patches its methods per instance.

    def __init__(self, config: LsqConfig, ss_config: StoreSetConfig,
                 memory: MemoryHierarchy, stats: SimStats,
                 pair_rollback_penalty: int = 1,
                 clear_interval: Optional[int] = None) -> None:
        self.config = config
        self.ss_config = ss_config
        self.memory = memory
        self.stats = stats
        self.pair_rollback_penalty = pair_rollback_penalty

        if config.segmented:
            lq_shape = sq_shape = (config.segments, config.segment_entries)
        else:
            lq_shape = (1, config.lq_entries)
            sq_shape = (1, config.sq_entries)
        if config.unified_queue:
            # One combined CAM: loads and stores share entries and every
            # search arbitrates for the same ports.
            entries = (config.segment_entries if config.segmented
                       else config.lq_entries + config.sq_entries)
            shape = (config.segments if config.segmented else 1, entries)
            combined = SegmentedQueue("LSQ", *shape,
                                      policy=config.allocation)
            self.lq = self.sq = combined
            self.lq_ports = self.sq_ports = PortCalendar(config.search_ports)
        else:
            self.lq = SegmentedQueue("LQ", *lq_shape,
                                     policy=config.allocation)
            self.sq = SegmentedQueue("SQ", *sq_shape,
                                     policy=config.allocation)
            self.lq_ports = PortCalendar(config.search_ports)
            self.sq_ports = PortCalendar(config.search_ports)

        #: Optional event bus (repro.obs); wired by Observer.attach().
        self.obs: Optional[EventBus] = None
        self.predictor: Predictor = make_predictor(config.predictor, ss_config, stats,
                                        clear_interval)
        self.load_buffer = LoadBuffer(config.load_buffer_entries)
        self.nilp = NilpTracker()
        self._stores: Dict[int, DynInst] = {}
        # Memory barriers currently in flight (software load-load
        # ordering, Section 2.2's first option).
        self._membars: List[DynInst] = []
        # Scheme (2): synthetic external-invalidation traffic.
        self._inval_accum = 0.0
        self._inval_ring: List[int] = []
        self._inval_cursor = 0

    # ------------------------------------------------------------------
    # per-cycle upkeep
    # ------------------------------------------------------------------

    def begin_cycle(self, cycle: int) -> None:
        self.lq_ports.begin_cycle(cycle)
        self.sq_ports.begin_cycle(cycle)

    def sample(self) -> None:
        """Accumulate per-cycle occupancy statistics (Tables 4 and 5)."""
        if self.config.unified_queue:
            # live_loads is the host-side mirror of the modeled load
            # occupancy: it counts exactly the live LOAD slots of the
            # program-order window (asserted against a full window scan
            # by the parity tests), so charging it here prices the
            # model, not the host shortcut.
            loads = self.lq.live_loads
            self.stats.lq_occupancy_cycles += loads  # sim-lint: ignore[SIM-T001]
            self.stats.sq_occupancy_cycles += len(self.lq) - loads  # sim-lint: ignore[SIM-T001]
        else:
            self.stats.lq_occupancy_cycles += len(self.lq)
            self.stats.sq_occupancy_cycles += len(self.sq)
        self.stats.ooo_load_cycles += self.nilp.ooo_in_flight

    # ------------------------------------------------------------------
    # dispatch
    # ------------------------------------------------------------------

    def can_allocate(self, inst: DynInst) -> bool:
        if inst.is_load:
            return self.lq.can_allocate()
        return self.sq.can_allocate()

    def allocate(self, inst: DynInst) -> None:
        if inst.is_load:
            self.lq.allocate(inst)
            self.nilp.on_allocate(inst)
            self.predictor.on_load_dispatch(inst)
            if inst.predicted_dependent:
                self.stats.loads_predicted_dependent += 1
        else:
            self.sq.allocate(inst)
            self._stores[inst.seq] = inst
            self.predictor.on_store_dispatch(inst)

    # ------------------------------------------------------------------
    # load issue gating
    # ------------------------------------------------------------------

    @hotpath
    def load_blocked(self, load: DynInst) -> Optional[str]:
        """Why this load may not yet access memory (None when free)."""
        if self._membar_blocks(load):
            return "membar"
        blocker = self._store_set_blocker(load)
        if blocker is not None:
            return blocker
        mode = self.config.lq_search
        if mode is LoadQueueSearchMode.LOAD_BUFFER:
            if not self.nilp.is_in_order(load) and self.load_buffer.full:
                return "load_buffer_full"
        elif mode in (LoadQueueSearchMode.IN_ORDER,
                      LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH):
            if not self.nilp.is_in_order(load):
                return "in_order"
        return None

    def store_blocked(self, store: DynInst) -> Optional[str]:
        """Why this store may not yet execute."""
        if self._membar_blocks(store):
            return "membar"
        if self._store_set_order_blocks(store):
            return "store_store"
        return None

    def _store_set_order_blocks(self, store: DynInst) -> bool:
        """Chrysos/Emer store-store ordering within a set (optional)."""
        if not self.ss_config.store_store_ordering or store.ssid is None:
            return False
        for other in self.sq.entries():
            if other.seq >= store.seq:
                break
            if other.ssid == store.ssid and not other.mem_executed:
                return True
        return False

    @hotpath
    def _membar_blocks(self, inst: DynInst) -> bool:
        """True when an older in-flight memory barrier is incomplete."""
        membars = self._membars
        if not membars:
            return False
        # Prune completed/squashed barriers in place (no per-call list).
        live = 0
        for membar in membars:
            if not membar.squashed and not membar.complete:
                membars[live] = membar
                live += 1
        if live != len(membars):
            del membars[live:]
        seq = inst.seq
        for membar in membars:
            if membar.seq < seq:
                return True
        return False

    # ------------------------------------------------------------------
    # memory barriers (Section 2.2's software alternative)
    # ------------------------------------------------------------------

    def on_membar_dispatch(self, membar: DynInst) -> None:
        self._membars.append(membar)

    def try_execute_membar(self, membar: DynInst,
                           cycle: int) -> Union[StoreResult, Retry]:
        """A barrier completes once every older memory op is *performed*:
        loads have their data back, stores have resolved addresses."""
        for entry in self.lq.entries():
            if entry.seq >= membar.seq:
                break
            if not entry.complete:
                self.stats.membar_stalls += 1
                return Retry(cycle + 1)
        for entry in self.sq.entries():
            if entry.seq >= membar.seq:
                break
            if not entry.mem_executed:
                self.stats.membar_stalls += 1
                return Retry(cycle + 1)
        return StoreResult(violation=None)

    # ------------------------------------------------------------------
    # external invalidations (Section 2.2, scheme 2 / MIPS R10000)
    # ------------------------------------------------------------------

    def poll_invalidation(self, cycle: int) -> Optional[Violation]:
        """Inject synthetic coherence traffic.

        Invalidation arrivals are deterministic at ``invalidation_rate``
        per cycle; each searches the load queue for outstanding loads to
        a recently written line and squashes the oldest match, exactly
        as the R10000 treats an external invalidation.
        """
        if self.config.lq_search is not LoadQueueSearchMode.INVALIDATION:
            return None
        self._inval_accum += self.config.invalidation_rate
        if self._inval_accum < 1.0 or not self._inval_ring:
            return None
        self._inval_accum -= 1.0
        addr = self._inval_ring[self._inval_cursor % len(self._inval_ring)]
        self._inval_cursor += 1
        self.stats.invalidation_searches += 1
        self.stats.lq_searches += 1
        # Any entry whose address equals ``addr`` starts in the granule
        # holding ``addr``, so the index bucket (seq-sorted == program
        # order) yields the same first match as a full queue scan.
        for bucket in self.lq.candidate_lists(addr, 1):
            for entry in bucket:
                if entry.mem_executed and entry.addr == addr:
                    self.stats.load_load_squashes += 1
                    return Violation(entry.seq, "load-load")
        return None

    def _note_written_line(self, addr: int) -> None:
        if self.config.lq_search is LoadQueueSearchMode.INVALIDATION:
            if len(self._inval_ring) < 64:
                self._inval_ring.append(addr)
            else:
                self._inval_ring[self._inval_cursor % 64] = addr

    def _store_set_blocker(self, load: DynInst) -> Optional[str]:
        if self.config.predictor is PredictorMode.PERFECT:
            match = self._oracle_match(load)
            if match is not None and not match.mem_executed:
                return "store_set"
            return None
        if load.wait_store_seq is None:
            return None
        store = self._stores.get(load.wait_store_seq)
        if (store is not None and not store.squashed
                and not store.mem_executed and store.seq < load.seq):
            return "store_set"
        return None

    def _oracle_match(self, load: DynInst) -> Optional[DynInst]:
        """Youngest older overlapping store (oracle view of trace addrs)."""
        best: Optional[DynInst] = None
        load_seq = load.seq
        for bucket in self.sq.candidate_lists(load.addr, load.size):
            for store in bucket:            # seq-sorted ascending
                if store.seq >= load_seq:
                    break
                if store.is_store and store.overlaps(load) and (
                        best is None or store.seq > best.seq):
                    best = store
        return best

    # ------------------------------------------------------------------
    # load execution
    # ------------------------------------------------------------------

    def _needs_sq_search(self, load: DynInst) -> bool:
        mode = self.config.predictor
        if mode is PredictorMode.CONVENTIONAL:
            return True
        if mode is PredictorMode.PERFECT:
            return self._oracle_match(load) is not None
        return self.predictor.should_search(load)

    @hotpath
    def try_execute_load(self, load: DynInst,
                         cycle: int) -> Union[LoadResult, Retry]:
        """Attempt the memory-stage access for a load.

        Returns a :class:`LoadResult`, or :class:`Retry` on a structural
        hazard (search port, data-cache port, or pipelined-search
        contention under the STALL policy / SQUASH replay).
        """
        need_sq = self._needs_sq_search(load)
        mode = self.config.lq_search
        need_lq = mode in (LoadQueueSearchMode.SEARCH_LQ,
                           LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH)

        # Searches against a region the occupancy bits show empty do not
        # activate the CAM, hence need no port (the search *event* is
        # still counted against bandwidth demand, as in the paper).
        sq_path = self.sq.backward_path(load.seq) if need_sq else []
        lq_path = self.lq.forward_path(load.seq) if need_lq else []

        if not self.memory.d_ports.available(cycle):
            self.stats.dcache_port_stalls += 1
            if self.obs is not None:
                self.obs.emit("port_retry", seq=load.seq, pc=load.pc,
                              note="dcache")
            return Retry(cycle + 1)
        if self.sq_ports is self.lq_ports and sq_path and lq_path:
            # Unified queue: both searches draw on one port pool, so
            # admission must consider their joint demand per slot.
            outcome = self._admit_joint(self.sq_ports, sq_path, lq_path,
                                        cycle)
            if outcome is not None:
                return outcome
        else:
            outcome = self._admit_search(self.sq_ports, sq_path, cycle,
                                         self.stats, "sq")
            if outcome is not None:
                return outcome
            outcome = self._admit_search(self.lq_ports, lq_path, cycle,
                                         self.stats, "lq")
            if outcome is not None:
                return outcome

        # All hazards cleared: reserve and perform.  The data port was
        # admitted by the d_ports.available() hazard check above, under
        # the same cycle, so this booking cannot be denied.
        self.memory.try_reserve_data_port(cycle)  # sim-lint: ignore[SIM-P002]
        self.sq_ports.reserve_path(sq_path, cycle)
        self.lq_ports.reserve_path(lq_path, cycle)

        forwarded_store: Optional[DynInst] = None
        segments_searched = 0
        if need_sq:
            forwarded_store, segments_searched = self._sq_search(load, sq_path)
        violation = self._lq_ordering_check(load, lq_path)

        latency = self._load_latency(load, forwarded_store, segments_searched,
                                     sq_path, cycle)
        self._finish_load_issue(load)
        return LoadResult(latency=latency,
                          forwarded=forwarded_store is not None,
                          violation=violation)

    def _admit_joint(self, calendar: PortCalendar, path_a: List[int],
                     path_b: List[int], cycle: int) -> Optional[Retry]:
        """Admission for two pipelined searches on one shared port pool."""
        demand: Dict[Tuple[int, int], int] = {}
        for path in (path_a, path_b):
            for offset, segment in enumerate(path):
                key = (segment, cycle + offset)
                demand[key] = demand.get(key, 0) + 1
        shortfall_now = any(
            calendar.free_ports(segment, at) < count
            for (segment, at), count in demand.items() if at == cycle)
        if shortfall_now:
            self.stats.sq_port_stalls += 1
            if self.obs is not None:
                self.obs.emit("port_retry", note="unified")
            return Retry(cycle + 1)
        shortfall_later = any(
            calendar.free_ports(segment, at) < count
            for (segment, at), count in demand.items() if at > cycle)
        if shortfall_later:
            if self.obs is not None:
                self.obs.emit("port_retry", note="unified-contention")
            if self.config.contention is ContentionPolicy.STALL:
                self.stats.contention_stalls += 1
                return Retry(cycle + 1)
            self.stats.contention_squashes += 1
            return Retry(cycle + CONTENTION_REPLAY_PENALTY)
        return None

    def _admit_search(self, calendar: PortCalendar, path: List[int],
                      cycle: int, stats: SimStats,
                      which: str) -> Optional[Retry]:
        """Check a pipelined search path; None means admitted."""
        if not path:
            return None
        state = calendar.check_path(path, cycle)
        if state == "ok":
            return None
        if state == "busy_now":
            if which == "sq":
                stats.sq_port_stalls += 1
            else:
                stats.lq_port_stalls += 1
            if self.obs is not None:
                self.obs.emit("port_retry", note=which)
            return Retry(cycle + 1)
        # busy_later: Section 3.2 contention.
        if self.obs is not None:
            self.obs.emit("port_retry", note=f"{which}-contention")
        if self.config.contention is ContentionPolicy.STALL:
            stats.contention_stalls += 1
            return Retry(cycle + 1)
        stats.contention_squashes += 1
        return Retry(cycle + CONTENTION_REPLAY_PENALTY)

    @hotpath
    def _sq_search(self, load: DynInst, path: "SearchPath",
                   ) -> Tuple[Optional[DynInst], int]:
        """Forwarding search: youngest older overlapping *executed* store.

        Returns ``(store_or_None, segments_searched)`` and records the
        bandwidth/Table 6 statistics.  The candidate index supplies the
        per-segment youngest qualifying store; the modeled search still
        visits ``path`` one segment per cycle and stops at the first
        segment holding a match, exactly as the per-entry scan did.
        """
        self.stats.sq_searches += 1
        load.searched_sq = True
        load_seq = load.seq
        best: Dict[int, DynInst] = {}
        for bucket in self.sq.candidate_lists(load.addr, load.size):
            for store in bucket:            # seq-sorted ascending
                if store.seq >= load_seq:
                    break
                if store.is_store and store.mem_executed \
                        and store.overlaps(load):
                    prev = best.get(store.lsq_segment)
                    if prev is None or store.seq > prev.seq:
                        best[store.lsq_segment] = store
        segments_searched = 0
        match: Optional[DynInst] = None
        for segment in path:
            segments_searched += 1
            match = best.get(segment)
            if match is not None:
                break
        segments_searched = max(segments_searched, 1)
        self.stats.sq_segment_visits += segments_searched
        hist = self.stats.segment_search_hist
        hist[segments_searched] = hist.get(segments_searched, 0) + 1
        if self.obs is not None and segments_searched > 1:
            self.obs.emit("segment_hop", seq=load.seq, pc=load.pc,
                          arg=segments_searched, note="sq")
        if match is not None:
            self.stats.sq_search_matches += 1
            self.stats.forwarded_loads += 1
            load.forwarded_from = match.seq
            load.forwarded_from_pc = match.pc
            if self.obs is not None:
                self.obs.emit("forward", seq=load.seq, pc=load.pc,
                              arg=match.seq)
        elif self.config.predictor in (PredictorMode.PAIR,
                                       PredictorMode.AGGRESSIVE):
            self.stats.useless_searches += 1
        return match, segments_searched

    @hotpath
    def _lq_ordering_check(self, load: DynInst,
                           path: "SearchPath") -> Optional[Violation]:
        """Load-load ordering: find a younger, already-issued,
        same-address load (Section 2.2)."""
        mode = self.config.lq_search
        if mode in (LoadQueueSearchMode.SEARCH_LQ,
                    LoadQueueSearchMode.IN_ORDER_ALWAYS_SEARCH):
            self.stats.lq_searches += 1
            self.stats.lq_segment_visits += max(len(path), 1)
            if self.obs is not None and len(path) > 1:
                self.obs.emit("segment_hop", seq=load.seq, pc=load.pc,
                              arg=len(path), note="lq")
            load_seq = load.seq
            best: Dict[int, DynInst] = {}
            for bucket in self.lq.candidate_lists(load.addr, load.size):
                for other in bucket:        # seq-sorted ascending
                    if other.seq <= load_seq:
                        continue
                    if other.is_load and other.mem_executed \
                            and other.overlaps(load):
                        prev = best.get(other.lsq_segment)
                        if prev is None or other.seq < prev.seq:
                            best[other.lsq_segment] = other
            if best:
                for segment in path:   # oldest match in path order
                    hit = best.get(segment)
                    if hit is not None:
                        self.stats.load_load_squashes += 1
                        return Violation(hit.seq, "load-load")
            return None
        if mode is LoadQueueSearchMode.LOAD_BUFFER:
            self.stats.load_buffer_searches += 1
            hit = self.load_buffer.search(load)
            if hit is not None:
                self.stats.load_load_squashes += 1
                return Violation(hit.seq, "load-load")
        # MEMBAR and INVALIDATION modes: no per-load ordering search at
        # all — ordering is the programmer's or the coherence protocol's
        # job (Section 2.2).
        return None

    def _load_latency(self, load: DynInst,
                      forwarded_store: Optional[DynInst],
                      segments_searched: int, sq_path: List[int],
                      cycle: int) -> int:
        if forwarded_store is not None:
            latency = self.memory.config.l1d.hit_latency
        else:
            latency = self.memory.data_access(load.addr,
                                              cycle=cycle).latency
        if self.config.segmented:
            latency += max(segments_searched - 1, 0)
            if (self.config.early_scheduling_head_only and load.searched_sq
                    and sq_path and sq_path[0] != self.sq.head_segment()):
                # Section 3: early scheduling of dependents is forgone
                # unless the search is confined to the head segment.
                latency += EARLY_SCHEDULING_PENALTY
        return latency

    def _finish_load_issue(self, load: DynInst) -> None:
        """NILP/LIV bookkeeping once the load's access is under way."""
        in_order = self.nilp.is_in_order(load)
        use_buffer = self.config.lq_search is LoadQueueSearchMode.LOAD_BUFFER
        if not in_order:
            self.nilp.mark_ooo_issue(load)
            if use_buffer:
                self.load_buffer.insert(load)
        load.mem_executed = True
        for passed in self.nilp.advance():
            if use_buffer and passed.load_buffer_slot >= 0:
                self.load_buffer.release(passed)
                # The released load performs one final buffer search
                # (Section 2.2.1); with sequential issue semantics it
                # cannot find a new violation, but the bandwidth is real.
                self.stats.load_buffer_searches += 1

    # ------------------------------------------------------------------
    # store execution and commit
    # ------------------------------------------------------------------

    def try_execute_store(self, store: DynInst,
                          cycle: int) -> Union[StoreResult, Retry]:
        """Store address generation + (conventional) load-queue search."""
        if self.config.detection_at_commit:
            store.mem_executed = True
            self.predictor.on_store_issue(store)
            return StoreResult(violation=None)

        path = self.lq.forward_path(store.seq)
        outcome = self._admit_search(self.lq_ports, path, cycle,
                                     self.stats, "lq")
        if outcome is not None:
            return outcome
        self.lq_ports.reserve_path(path, cycle)
        store.mem_executed = True
        self.predictor.on_store_issue(store)
        violation = self._store_ordering_check(store, path)
        return StoreResult(violation=violation)

    def _store_ordering_check(self, store: DynInst,
                              path: "SearchPath") -> Optional[Violation]:
        """Find the oldest younger issued load with a stale value."""
        self.stats.lq_searches += 1
        self.stats.lq_segment_visits += max(len(path), 1)
        if self.obs is not None and len(path) > 1:
            self.obs.emit("segment_hop", seq=store.seq, pc=store.pc,
                          arg=len(path), note="lq-store")
        store_seq = store.seq
        best: Dict[int, DynInst] = {}
        for bucket in self.lq.candidate_lists(store.addr, store.size):
            for load in bucket:             # seq-sorted ascending
                if load.seq <= store_seq:
                    continue
                if not load.is_load or not load.mem_executed \
                        or not load.overlaps(store):
                    continue
                if (load.forwarded_from is None
                        or load.forwarded_from < store_seq):
                    prev = best.get(load.lsq_segment)
                    if prev is None or load.seq < prev.seq:
                        best[load.lsq_segment] = load
        if best:
            for segment in path:       # oldest match in path order
                hit = best.get(segment)
                if hit is None:
                    continue
                self.stats.store_load_squashes += 1
                self.predictor.train_violation(hit.pc, store.pc)
                extra = 0
                if self.config.detection_at_commit:
                    extra = self.pair_rollback_penalty
                    self.stats.missed_dependences += 1
                return Violation(hit.seq, "store-load",
                                 extra_penalty=extra)
        return None

    def try_commit_store(self, store: DynInst,
                         cycle: int) -> Union[CommitResult, Retry]:
        """Retire a store: cache write plus (pair-mode) the deferred
        store-load ordering search."""
        if not self.memory.d_ports.available(cycle):
            self.stats.dcache_port_stalls += 1
            if self.obs is not None:
                self.obs.emit("port_retry", seq=store.seq, pc=store.pc,
                              note="dcache-commit")
            return Retry(cycle + 1)

        violation: Optional[Violation] = None
        if self.config.detection_at_commit:
            path = self.lq.forward_path(store.seq)
            state = self.lq_ports.check_path(path, cycle)
            if state != "ok":
                # Stores are no longer in the pipeline: contention is
                # resolved by simply delaying the commit (Section 3.2).
                self.stats.store_commit_delays += 1
                if self.obs is not None:
                    self.obs.emit("port_retry", seq=store.seq,
                                  pc=store.pc, note="lq-commit")
                return Retry(cycle + 1)
            self.lq_ports.reserve_path(path, cycle)
            violation = self._store_ordering_check(store, path)

        # Pre-admitted: try_commit_store() only reaches this point after
        # the d_ports.available() check at its top passed for this cycle.
        self.memory.try_reserve_data_port(cycle)  # sim-lint: ignore[SIM-P002]
        self.memory.data_access(store.addr, write=True, cycle=cycle)
        self._note_written_line(store.addr)
        self.predictor.on_store_commit(store)
        self.sq.commit_head(store)
        self._stores.pop(store.seq, None)
        return CommitResult(violation=violation)

    # ------------------------------------------------------------------
    # load commit, squash
    # ------------------------------------------------------------------

    def commit_load(self, load: DynInst) -> None:
        self.lq.commit_head(load)
        if load.forwarded_from_pc is not None:
            # Pair-predictor training on every observed match (Figure 2).
            self.predictor.train_pair(load.pc, load.forwarded_from_pc)

    def maybe_clear_predictor(self, committed: int) -> None:
        self.predictor.maybe_clear(committed)

    def squash_from(self, seq: int) -> None:
        for store in self.sq.squash_from(seq):
            self.predictor.on_store_squash(store)
            self._stores.pop(store.seq, None)
        self.nilp.on_squash(seq)
        self.lq.squash_from(seq)
        self.load_buffer.squash_from(seq)
        self._membars = [m for m in self._membars if m.seq < seq]
