"""The load buffer (Section 2.2): out-of-order-issued loads only.

The load queue proper is relieved of load-load ordering searches: a load
that issues while an older load is still un-issued (an
*out-of-order-issued* load) parks its address in this small buffer, and
every load searches the buffer — not the load queue — for younger
same-address loads when it executes.

The paper tracks "oldest non-issued load" with the Non-Issued Load
Pointer (NILP) over a Load Issue Vector (LIV).  Here the NILP is
realised as a lazily-pruned program-order queue of not-yet-issued loads:
the front of the queue *is* the NILP target, and popping issued loads
off the front is the pointer walking the LIV.  When the pointer passes
an out-of-order-issued load, that load's buffer entry is released (and,
per the paper, the load performs one final buffer search).

A load that is out of order while the buffer is full stalls until an
entry frees or the NILP reaches it — mirroring the store-set-style stall
the paper describes.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from repro.core.hotpath import hotpath
from repro.obs.events import EventBus
from repro.pipeline.dyninst import DynInst

#: Components any stage may touch directly (sim-lint SIM-M registry):
#: the observability layer, like stats/tracer, is write-from-anywhere.
SIM_LINT_INTERFACES = frozenset({"obs"})


class LoadBuffer:
    """Fixed-capacity buffer of out-of-order-issued loads."""

    def __init__(self, entries: int) -> None:
        if entries < 0:
            raise ValueError("load buffer size must be >= 0")
        self.capacity = entries
        #: Optional event bus (repro.obs); wired by Observer.attach().
        self.obs: Optional[EventBus] = None
        self._slots: List[Optional[DynInst]] = [None] * entries
        self._live = 0  # occupied slots, maintained incrementally

    def __len__(self) -> int:
        return self._live

    @property
    def full(self) -> bool:
        return self._live >= self.capacity

    def insert(self, load: DynInst) -> None:
        for index, slot in enumerate(self._slots):
            if slot is None:
                self._slots[index] = load
                self._live += 1
                load.load_buffer_slot = index
                if self.obs is not None:
                    self.obs.emit("lb_insert", seq=load.seq, pc=load.pc,
                                  arg=index)
                return
        raise RuntimeError("insert into a full load buffer")

    def release(self, load: DynInst) -> None:
        index = load.load_buffer_slot
        if index >= 0 and self._slots[index] is load:
            self._slots[index] = None
            self._live -= 1
            if self.obs is not None:
                self.obs.emit("lb_release", seq=load.seq, pc=load.pc,
                              arg=index)
        load.load_buffer_slot = -1

    @hotpath
    def search(self, load: DynInst) -> Optional[DynInst]:
        """Oldest younger same-address load in the buffer, if any.

        A hit means ``load`` (the older access) is executing after the
        returned load already obtained a value out of order — a
        load-load ordering violation; the younger load must be squashed.
        """
        best: Optional[DynInst] = None
        for slot in self._slots:
            if slot is None or slot is load:
                continue
            if slot.seq > load.seq and slot.overlaps(load):
                if best is None or slot.seq < best.seq:
                    best = slot
        return best

    def squash_from(self, seq: int) -> None:
        for index, slot in enumerate(self._slots):
            if slot is not None and slot.seq >= seq:
                slot.load_buffer_slot = -1
                self._slots[index] = None
                self._live -= 1

    def slots(self) -> List[Optional[DynInst]]:
        """Slot-indexed snapshot (copy), for white-box validation."""
        return list(self._slots)


class NilpTracker:
    """Program-order queue of loads realising the NILP / LIV walk.

    Also maintains the running count of out-of-order-issued loads in
    flight, which Table 4 reports (sampled per cycle by the LSQ) — this
    count is exactly the occupancy an unbounded load buffer would have.
    """

    __slots__ = ("_pending", "ooo_in_flight")

    def __init__(self) -> None:
        self._pending: Deque[DynInst] = deque()
        self.ooo_in_flight = 0

    def on_allocate(self, load: DynInst) -> None:
        self._pending.append(load)

    def advance(self) -> List[DynInst]:
        """Walk the pointer over issued (or squashed) loads.

        Returns the out-of-order-issued loads the pointer passed; their
        load-buffer entries can be released, each performing one final
        buffer search (Section 2.2.1).
        """
        passed: List[DynInst] = []
        while self._pending and (self._pending[0].squashed
                                 or self._pending[0].mem_executed):
            load = self._pending.popleft()
            if load.ooo_issued and not load.squashed:
                load.ooo_issued = False
                self.ooo_in_flight -= 1
                passed.append(load)
        return passed

    @hotpath
    def nilp_seq(self) -> Optional[int]:
        """Sequence number of the oldest non-issued load, or ``None``.

        Tolerates un-advanced fronts by scanning past issued entries
        (the owner collects them with :meth:`advance` at its own
        cadence).  Dead prefix entries that :meth:`advance` would pop
        without collecting — squashed, or issued in order — are pruned
        here too, so repeated queries stay O(1); out-of-order-issued
        entries are left for :meth:`advance`, which owns their
        load-buffer release.
        """
        pending = self._pending
        while pending:
            load = pending[0]
            if load.squashed:
                pending.popleft()
            elif load.mem_executed:
                if load.ooo_issued:
                    break       # advance() must see this one
                pending.popleft()
            else:
                return load.seq
        for load in pending:
            if load.squashed or load.mem_executed:
                continue
            return load.seq
        return None

    def is_in_order(self, load: DynInst) -> bool:
        """True when ``load`` is the oldest non-issued load."""
        nilp = self.nilp_seq()
        return nilp is None or nilp >= load.seq

    def mark_ooo_issue(self, load: DynInst) -> None:
        load.ooo_issued = True
        self.ooo_in_flight += 1

    def pending(self) -> List[DynInst]:
        """Snapshot of the pending-load queue, for white-box validation."""
        return list(self._pending)

    def on_squash(self, seq: int) -> None:
        """Adjust the OOO count for squashed loads (queue entries are
        pruned lazily by :meth:`advance`)."""
        for load in reversed(self._pending):
            if load.seq < seq:
                break
            if load.ooo_issued:
                load.ooo_issued = False
                self.ooo_in_flight -= 1
