"""Reproduction of *Reducing Design Complexity of the Load/Store Queue*
(Park, Ooi & Vijaykumar, MICRO-36, 2003).

Public API
----------

Configuration
    :func:`repro.config.base_machine`, :func:`repro.config.scaled_machine`
    and the LSQ presets (:func:`repro.config.conventional_lsq`,
    :func:`repro.config.techniques_lsq`, :func:`repro.config.segmented_lsq`,
    :func:`repro.config.full_techniques_lsq`).
Workloads
    :func:`repro.workload.generate_trace` and the per-benchmark profiles
    in :data:`repro.workload.SPEC2K_PROFILES`.
Simulation
    :func:`repro.pipeline.simulate` runs a trace on a machine and
    returns a :class:`repro.pipeline.SimulationResult` whose
    :class:`repro.stats.SimStats` holds every metric the paper reports.
Experiments
    :mod:`repro.harness` regenerates each of the paper's figures and
    tables.

Quick start::

    from repro import base_machine, generate_trace, simulate, techniques_lsq
    from dataclasses import replace

    trace = generate_trace("mgrid", n_instructions=20_000)
    base = simulate(trace, base_machine())
    ours = simulate(trace, replace(base_machine(), lsq=techniques_lsq(ports=1)))
    print(base.ipc, ours.ipc)
"""

from repro.config import (
    AllocationPolicy,
    ContentionPolicy,
    LoadQueueSearchMode,
    LsqConfig,
    MachineConfig,
    PredictorMode,
    base_machine,
    conventional_lsq,
    full_techniques_lsq,
    scaled_machine,
    segmented_lsq,
    techniques_lsq,
)
from repro.pipeline import Processor, SimulationResult, simulate
from repro.stats import SimStats
from repro.workload import (
    ALL_BENCHMARKS,
    FP_BENCHMARKS,
    INT_BENCHMARKS,
    SPEC2K_PROFILES,
    Trace,
    generate_trace,
    profile_for,
)

__version__ = "1.0.0"

__all__ = [
    "AllocationPolicy",
    "ContentionPolicy",
    "LoadQueueSearchMode",
    "LsqConfig",
    "MachineConfig",
    "PredictorMode",
    "base_machine",
    "scaled_machine",
    "conventional_lsq",
    "techniques_lsq",
    "segmented_lsq",
    "full_techniques_lsq",
    "Processor",
    "SimulationResult",
    "simulate",
    "SimStats",
    "Trace",
    "generate_trace",
    "profile_for",
    "SPEC2K_PROFILES",
    "ALL_BENCHMARKS",
    "INT_BENCHMARKS",
    "FP_BENCHMARKS",
    "__version__",
]
