"""End-to-end tests of the out-of-order core on hand-built micro-traces."""

import pytest

from repro.config import base_machine
from repro.pipeline.processor import Processor, simulate
from repro.workload.isa import Instruction, OpClass
from repro.workload.trace import Trace
from tests.conftest import alu, branch, filler, load, store


def run(insts, machine=None, **kwargs):
    return simulate(Trace(insts, name="micro"),
                    machine if machine is not None else base_machine(),
                    **kwargs)


class TestThroughput:
    def test_independent_alus_reach_full_width(self):
        result = run(filler(4000))
        assert result.ipc > 7.0

    def test_serial_chain_is_one_ipc(self):
        insts = [alu(pc=4 * i, dest=1, srcs=(1,)) for i in range(2000)]
        result = run(insts)
        assert 0.8 < result.ipc < 1.2

    def test_commit_count_matches_trace(self):
        result = run(filler(500))
        assert result.stats.committed == 500

    def test_multiply_latency_visible(self):
        chain_mul = [Instruction(pc=4 * i, op=OpClass.INT_MUL, dest=1,
                                 srcs=(1,)) for i in range(500)]
        mul_result = run(chain_mul)
        # A serial MUL chain runs at ~1/3 IPC (3-cycle latency).
        assert mul_result.ipc < 0.5


class TestBranches:
    def test_predictable_branches_are_cheap(self):
        insts = []
        for i in range(300):
            insts.extend(filler(7, base_pc=0x1000 + 64 * i))
            insts.append(branch(pc=0x1000 + 64 * i + 28, taken=True))
        well_predicted = run(insts).ipc
        assert well_predicted > 4.0

    def test_mispredicted_branches_cost_cycles(self):
        import random
        rng = random.Random(0)
        insts = []
        for i in range(300):
            insts.extend(filler(7, base_pc=0x1000 + 64 * i))
            insts.append(branch(pc=0x1000 + 64 * i + 28,
                                taken=rng.random() < 0.5))
        noisy = run(insts)
        assert noisy.stats.branch_mispredicts > 50
        assert noisy.ipc < 2.5


class TestMemoryFlow:
    def test_load_latency_on_chain(self):
        # load -> dependent ALU chain: each pair costs ~load latency.
        insts = []
        for i in range(400):
            insts.append(load(0x1000, pc=0x100 + 8 * i, dest=1, srcs=(1,)))
        result = run(insts)
        # Serial same-address loads: ~2-cycle L1 hits chained through
        # the address register.
        assert result.ipc < 0.6

    def test_store_to_load_forwarding_works(self):
        insts = []
        for i in range(300):
            addr = 0x2000 + 8 * (i % 16)
            insts.append(store(addr, pc=0x100, srcs=()))
            insts.append(load(addr, pc=0x104, dest=(i % 4) + 1))
            insts.extend(filler(4, base_pc=0x200 + 64 * i))
        result = run(insts)
        assert result.stats.forwarded_loads > 100
        assert result.stats.store_load_squashes <= 2

    def test_cache_misses_slow_execution(self):
        hits = [load(0x1000 + 8 * (i % 64), pc=0x100 + 4 * (i % 16),
                     dest=(i % 8) + 1) for i in range(1000)]
        # Cold region marked so warming skips it: every access misses.
        miss_insts = [load(0x40000000 + 64 * i, pc=0x100 + 4 * (i % 16),
                           dest=(i % 8) + 1) for i in range(1000)]
        fast = run(hits).ipc
        slow = simulate(Trace(miss_insts, name="misses",
                              cold_regions=[(0x40000000, 0x50000000)]),
                        base_machine()).ipc
        assert slow < fast

    def test_lq_capacity_throttles(self):
        # One long-miss load per group backs up a tiny LQ.
        insts = []
        for i in range(200):
            insts.append(load(0x40000000 + 64 * i, pc=0x100, dest=1))
            insts.extend(filler(7, base_pc=0x200 + 64 * i))
        small = simulate(Trace(insts, cold_regions=[(0x40000000, 0x50000000)]),
                         base_machine(lq_entries=4))
        big = simulate(Trace(insts, cold_regions=[(0x40000000, 0x50000000)]),
                       base_machine(lq_entries=64))
        assert big.ipc > small.ipc
        assert small.stats.lq_full_stalls > 0


class TestViolationRecovery:
    def test_premature_load_squashes_and_replays(self):
        # A store whose data depends on a long chain, followed by a
        # same-address load that issues first: conventional detection
        # squashes the load at store execute, and the replay completes.
        insts = []
        base_pc = 0x1000
        for i in range(50):
            chain = [alu(pc=base_pc + 4 * j, dest=9, srcs=(9,))
                     for j in range(8)]
            insts.extend(chain)
            addr = 0x3000 + 8 * i
            insts.append(store(addr, pc=base_pc + 0x40, srcs=(9,)))
            insts.append(load(addr, pc=base_pc + 0x44, dest=1))
            insts.extend(filler(4, base_pc=base_pc + 0x50))
        result = run(insts, warm=False)   # unwarmed predictor
        assert result.stats.committed == len(insts)
        assert result.stats.store_load_squashes >= 1

    def test_violation_trains_store_set(self):
        insts = []
        for i in range(60):
            base_pc = 0x1000
            chain = [alu(pc=base_pc + 4 * j, dest=9, srcs=(9,))
                     for j in range(8)]
            insts.extend(chain)
            addr = 0x3000 + 8 * i
            insts.append(store(addr, pc=base_pc + 0x40, srcs=(9,)))
            insts.append(load(addr, pc=base_pc + 0x44, dest=1))
        result = run(insts, warm=False)
        # One violation trains the (static) pair; later instances wait
        # and forward instead of squashing over and over.
        assert 1 <= result.stats.store_load_squashes <= 5
        assert result.stats.forwarded_loads > 20


class TestDeterminism:
    def test_same_trace_same_cycles(self):
        from repro.workload.synthetic import generate_trace
        trace = generate_trace("gzip", n_instructions=1500)
        a = simulate(trace, base_machine())
        b = simulate(trace, base_machine())
        assert a.stats.cycles == b.stats.cycles
        assert vars(a.stats) == vars(b.stats)


class TestWarming:
    def test_warm_skips_cold_regions(self):
        insts = [load(0x40000000 + 64 * i, pc=0x100 + 4 * i, dest=1)
                 for i in range(50)]
        trace = Trace(insts, cold_regions=[(0x40000000, 0x50000000)])
        processor = Processor(base_machine())
        processor.warm_caches(trace)
        assert not processor.memory.l1d.contains(0x40000000)

    def test_warm_fills_hot_data_and_code(self):
        insts = [load(0x1000, pc=0x100, dest=1)]
        trace = Trace(insts)
        processor = Processor(base_machine())
        processor.warm_caches(trace)
        assert processor.memory.l1d.contains(0x1000)
        assert processor.memory.l1i.contains(0x100)

    def test_warm_predictor_trains_close_pairs(self):
        insts = [store(0x2000, pc=0x500),
                 load(0x2000, pc=0x504, dest=1)]
        trace = Trace(insts)
        processor = Processor(base_machine())
        processor.warm_predictor(trace)
        tables = processor.lsq.predictor.tables
        assert tables.ssid_for(0x504) is not None
        assert tables.ssid_for(0x504) == tables.ssid_for(0x500)

    def test_warm_predictor_ignores_distant_pairs(self):
        insts = ([store(0x2000, pc=0x500)] + filler(400)
                 + [load(0x2000, pc=0x504, dest=1)])
        processor = Processor(base_machine())
        processor.warm_predictor(Trace(insts))
        assert processor.lsq.predictor.tables.ssid_for(0x504) is None


class TestEdgeCases:
    def test_empty_trace(self):
        result = run([])
        assert result.stats.committed == 0

    def test_single_instruction(self):
        result = run([alu()])
        assert result.stats.committed == 1

    def test_max_cycles_cutoff(self):
        result = run(filler(5000), max_cycles=50)
        assert result.stats.cycles <= 50
        assert result.stats.committed < 5000
