"""Fleet telemetry (:mod:`repro.obs.telemetry` + the serve wiring).

* Span tracer: context propagation, trace-header parsing, per-job
  retention, tree building, and the coverage math the span-sum
  acceptance gate rests on.
* Metrics registry: counters/gauges/histograms render as Prometheus
  text that the bundled parser round-trips; label escaping, bucket
  monotonicity, and deterministic output order.
* Log ring: bounded retention with a drop counter, level/job filters,
  and core-field shadowing protection.
* End to end against a live server: root span duration equals job wall
  time with >= 95% direct-child coverage; /metrics carries the cache,
  coalescing, worker, and admission series and stays stable (modulo
  timing fields) across identical warm runs; /logs correlates by job;
  heartbeats fill silent streams and the client's stall detector
  fires when they stop; ``repro top``/``repro timeline`` exit 0.
* The profiled-cell cache contract: profiler-skewed timings are
  flagged, never cached, and skipped by the perf gate.
"""

import json

import pytest

from repro.obs.telemetry import (
    LogRing,
    MetricsRegistry,
    SpanTracer,
    TRACE_HEADER,
    build_tree,
    child_coverage,
    parse_prometheus_text,
    parse_trace_header,
)
from repro.serve.bench import ServerHarness
from repro.serve.client import ServeClient, ServeStalled
from repro.serve.server import ServeConfig

N = 300


def spec_payload(**overrides):
    payload = {"benchmarks": ["gzip"], "presets": ["conventional"],
               "seeds": [0], "n_instructions": N}
    payload.update(overrides)
    return payload


# ---------------------------------------------------------------------------
# spans


class TestSpans:
    def test_nesting_via_context(self):
        tracer = SpanTracer()
        with tracer.span("outer", job="job-1") as outer:
            with tracer.span("inner") as inner:
                assert inner.parent_id == outer.span_id
                assert inner.trace_id == outer.trace_id
                assert inner.job == "job-1"  # inherited
        assert outer.end_s is not None and inner.end_s is not None

    def test_trace_header_roundtrip(self):
        tracer = SpanTracer()
        span = tracer.start("http.submit")
        from repro.obs.telemetry import format_trace_header
        header = format_trace_header(span.trace_id, span.span_id)
        trace_id, parent_id = parse_trace_header(header)
        assert trace_id == span.trace_id
        assert parent_id == span.span_id

    @pytest.mark.parametrize("value", [
        None, "", "no spaces allowed x", "a" * 65, "bad;semi",
        "t1-abc;x", "only-trace-no-parent-is-fine",
    ])
    def test_bad_headers_degrade_to_fresh_trace(self, value):
        trace_id, parent_id = parse_trace_header(value)
        if value == "only-trace-no-parent-is-fine":
            assert trace_id == value and parent_id is None
        else:
            assert parent_id is None

    def test_finish_is_idempotent(self):
        tracer = SpanTracer()
        span = tracer.start("x", job="j")
        tracer.finish(span, status="done")
        first_end = span.end_s
        tracer.finish(span, status="changed")
        assert span.end_s == first_end and span.status == "done"
        assert tracer.finished == 1

    def test_job_retention_is_bounded(self):
        tracer = SpanTracer(keep_jobs=2)
        for index in range(4):
            span = tracer.start("job", job=f"job-{index}")
            tracer.finish(span)
        assert tracer.job_spans("job-0") == []
        assert len(tracer.job_spans("job-3")) == 1

    def test_tree_and_coverage(self):
        tracer = SpanTracer()
        root = tracer.start("job", job="j", start_s=100.0)
        left = tracer.start("cell", parent=root, start_s=100.0)
        right = tracer.start("cell", parent=root, start_s=105.0)
        grand = tracer.start("flight", parent=left, start_s=100.5)
        tracer.finish(grand, end_s=103.0)
        tracer.finish(left, end_s=104.0)
        tracer.finish(right, end_s=110.0)
        tracer.finish(root, end_s=110.0)
        tree = build_tree(tracer.job_spans("j"))
        assert tree["name"] == "job"
        assert [len(tree["children"]), len(tree["children"][0]["children"])] \
            == [2, 1]
        # children cover [100,104] + [105,110] of [100,110] -> 90%
        assert child_coverage(tree) == pytest.approx(0.9)

    def test_overlapping_children_not_double_counted(self):
        tracer = SpanTracer()
        root = tracer.start("job", job="j", start_s=0.0)
        for start, end in ((0.0, 6.0), (4.0, 10.0)):
            child = tracer.start("cell", parent=root, start_s=start)
            tracer.finish(child, end_s=end)
        tracer.finish(root, end_s=10.0)
        assert child_coverage(build_tree(tracer.job_spans("j"))) \
            == pytest.approx(1.0)


# ---------------------------------------------------------------------------
# metrics registry


class TestRegistry:
    def test_render_parses_and_roundtrips(self):
        registry = MetricsRegistry()
        requests = registry.counter("req_total", "requests",
                                    ("route", "status"))
        requests.inc(route="/jobs", status="202")
        requests.inc(2, route="/jobs", status="202")
        registry.gauge("depth", "queue depth").set(7)
        hist = registry.histogram("lat_ms", "latency",
                                  buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        scrape = parse_prometheus_text(registry.render())
        assert scrape.types == {"req_total": "counter", "depth": "gauge",
                                "lat_ms": "histogram"}
        assert scrape.samples['req_total{route="/jobs",status="202"}'] == 3
        assert scrape.samples["depth"] == 7
        assert scrape.samples['lat_ms_bucket{le="1"}'] == 1
        assert scrape.samples['lat_ms_bucket{le="10"}'] == 2
        assert scrape.samples['lat_ms_bucket{le="+Inf"}'] == 3
        assert scrape.samples["lat_ms_count"] == 3
        assert scrape.samples["lat_ms_sum"] == pytest.approx(55.5)

    def test_render_is_deterministic(self):
        def build():
            registry = MetricsRegistry()
            counter = registry.counter("c_total", "c", ("b", "a"))
            counter.inc(b="2", a="1")
            counter.inc(b="1", a="2")
            registry.gauge("g", "g").set(1)
            return registry.render()

        assert build() == build()

    def test_set_total_never_decreases(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "c")
        counter.set_total(5)
        counter.set_total(3)  # stale mirror read must not roll back
        assert counter.value() == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_kind_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x_total", "x")
        with pytest.raises(ValueError):
            registry.gauge("x_total", "x")

    def test_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("e_total", "e", ("msg",)).inc(
            msg='quote " slash \\ newline \n end')
        scrape = parse_prometheus_text(registry.render())
        (key,) = scrape.series("e_total")
        assert '\\"' in key and "\\n" in key

    @pytest.mark.parametrize("text", [
        "# TYPE a bogus\na 1\n",
        "# TYPE a counter\na 1\na 2\n",
        "# TYPE a counter\na{bad-label=\"x\"} 1\n",
        "# TYPE a counter\na one\n",
    ])
    def test_parser_rejects_malformed(self, text):
        with pytest.raises(ValueError):
            parse_prometheus_text(text)


# ---------------------------------------------------------------------------
# log ring


class TestLogRing:
    def test_bounded_with_drop_counter(self):
        ring = LogRing(capacity=4)
        for index in range(10):
            ring.log("info", "tick", job=f"job-{index % 2}", n=index)
        assert len(ring) == 4
        assert ring.dropped == 6
        rows = ring.rows()
        assert [row["n"] for row in rows] == [6, 7, 8, 9]
        assert all(rows[i]["seq"] < rows[i + 1]["seq"]
                   for i in range(len(rows) - 1))

    def test_filters(self):
        ring = LogRing()
        ring.log("info", "a", job="job-1")
        ring.log("error", "b", job="job-1")
        ring.log("info", "c", job="job-2")
        assert [r["event"] for r in ring.rows(job="job-1")] == ["a", "b"]
        assert [r["event"] for r in ring.rows(level="error")] == ["b"]
        assert [r["event"] for r in ring.rows(limit=1)] == ["c"]

    def test_fields_cannot_shadow_core_keys(self):
        ring = LogRing()
        ring.log("info", "x", job="job-1",
                 **{"seq": 999, "ts_ms": -1.0, "extra": 1})
        (row,) = ring.rows()
        assert row["seq"] == 1 and row["ts_ms"] != -1.0
        assert row["extra"] == 1

    def test_unknown_level_degrades_to_info(self):
        ring = LogRing()
        ring.log("fatal", "x")
        assert ring.rows()[0]["level"] == "info"
        assert ring.counts == {"info": 1}

    def test_echo_writes_json_lines(self):
        import io
        stream = io.StringIO()
        ring = LogRing(echo=stream)
        ring.log("info", "hello", job="job-1")
        line = stream.getvalue().strip()
        assert json.loads(line)["event"] == "hello"


# ---------------------------------------------------------------------------
# profiled cells never pollute the perf gate


class TestProfiledCells:
    def _cell(self):
        from dataclasses import replace

        from repro.config import base_machine, conventional_lsq
        from repro.harness.engine import Cell
        machine = replace(base_machine(), lsq=conventional_lsq(ports=2))
        return Cell(benchmark="gzip", machine=machine, seed=0,
                    n_instructions=N, label="conventional-2p")

    def test_profiled_flag_set_and_kept_out_of_caches(self, tmp_path,
                                                      monkeypatch):
        """A profiled run is flagged, and running it leaves every
        cache empty — including the engine default dir — so its
        profiler-skewed sim_s can never be replayed as a real timing."""
        from repro.harness.engine import ResultCache, profile_cell
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cell = self._cell()
        outcome, table = profile_cell(cell, top=5)
        assert outcome.profiled is True
        assert outcome.cached is False
        assert table and all("tottime_s" in row for row in table)
        cache = ResultCache(tmp_path / "cache")
        assert cache.load(cell.digest()) is None, \
            "profiled run leaked its skewed timing into the cache"

    def test_sweep_report_carries_profiled_flag(self):
        from repro.harness.engine import profile_cell, sweep_report
        outcome, _table = profile_cell(self._cell(), top=1)
        report = sweep_report([outcome], jobs=1, cache=None,
                              wall_s=outcome.wall_s)
        (row,) = report["cells"]
        assert row["profiled"] is True

    def test_diff_skips_profiled_timings_but_not_ipc(self):
        from repro.harness.engine import diff_reports

        def report(sim_s, ipc, profiled):
            cell = {"benchmark": "gzip", "label": "conventional-2p",
                    "seed": 0, "n_instructions": N, "ipc": ipc,
                    "sim_s": sim_s, "profiled": profiled}
            return {"cells": [cell]}

        # 10x slower but profiled -> timing regression is ignored...
        assert diff_reports(report(1.0, 1.5, False),
                            report(10.0, 1.5, True)) == []
        # ...and the aggregate gate excludes the skewed row too.
        assert diff_reports(report(1.0, 1.5, False),
                            report(10.0, 1.5, True),
                            aggregate_wall=True) == []
        # ...while an IPC drift on the same profiled cell still fails.
        problems = diff_reports(report(1.0, 1.5, False),
                                report(10.0, 1.6, True))
        assert problems and "IPC" in problems[0]
        # Unprofiled rows keep the timing gate.
        problems = diff_reports(report(1.0, 1.5, False),
                                report(10.0, 1.5, False))
        assert problems and "sim time" in problems[0]


# ---------------------------------------------------------------------------
# the live server, end to end


@pytest.fixture(scope="module")
def harness(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("telemetry-cache")
    config = ServeConfig(port=0, workers=2, cache_dir=str(cache_dir),
                         heartbeat_s=0.25)
    with ServerHarness(config) as running:
        yield running


@pytest.fixture(scope="module")
def client(harness):
    return ServeClient(port=harness.port)


@pytest.mark.slow
class TestTelemetryEndToEnd:
    def test_span_tree_sums_to_job_wall_time(self, client):
        job = client.submit(spec_payload(benchmarks=["gzip", "mgrid"]),
                            trace="pytest-trace-1")
        job_id = str(job["id"])
        final = client.wait(job_id, stall_after_s=30.0)
        reply = client.spans(job_id)
        assert reply["trace"] == "pytest-trace-1"
        tree = build_tree(reply["spans"])
        assert tree is not None and tree["name"] == "job"
        # The acceptance gate: root duration == job wall time, and the
        # direct children account for >= 95% of it.
        assert tree["duration_ms"] / 1000.0 == pytest.approx(
            float(final["job"]["elapsed_s"]), abs=1e-6)
        assert child_coverage(tree) >= 0.95
        names = set()

        def walk_names(node):
            names.add(node["name"])
            for sub in node["children"]:
                walk_names(sub)

        walk_names(tree)
        assert {"job", "cell", "flight", "cache.probe"} <= names
        # At least one cell computed, so the queue/exec split exists.
        assert {"queue.wait", "worker.exec"} <= names

    def test_metrics_parse_with_required_series(self, client):
        scrape = parse_prometheus_text(client.metrics())
        for prefix in ("repro_cache_hits_total",
                       "repro_cache_misses_total",
                       "repro_cache_probe_ms_bucket",
                       "repro_coalescing_ratio",
                       "repro_singleflight_total",
                       "repro_pool_worker_busy",
                       "repro_pool_backlog_depth",
                       "repro_jobs_admitted_total",
                       "repro_jobs_rejected_total",
                       "repro_http_requests_total",
                       "repro_cell_service_ms_bucket"):
            assert scrape.series(prefix), f"missing {prefix}"

    def test_metrics_stable_across_identical_warm_runs(self, client):
        spec = spec_payload(seeds=[7])
        # Prime: the first-ever run of this cell is cold by definition.
        prime = client.submit(spec)
        client.wait(str(prime["id"]), stall_after_s=30.0)
        deltas = []
        for _ in range(2):
            before = parse_prometheus_text(client.metrics()).samples
            job = client.submit(spec)
            client.wait(str(job["id"]), stall_after_s=30.0)
            after = parse_prometheus_text(client.metrics()).samples
            assert set(after) >= set(before)
            deltas.append({key: after[key] - before.get(key, 0.0)
                           for key in after})
        first, second = deltas
        # Warm run #2 must move the same counters by the same amount —
        # modulo timing-valued series (sums/buckets/seconds/gauges).
        timing = ("_sum", "_bucket", "_seconds_total")
        skip = ("repro_coalescing_ratio", "repro_pool_pending",
                "repro_jobs_active", "repro_singleflight_inflight",
                "repro_stream_heartbeats_total",
                "repro_pool_worker_busy")
        for key in sorted(set(first) | set(second)):
            if any(key.startswith(s) for s in skip) \
                    or any(t in key for t in timing):
                continue
            if "http_requests" in key:
                continue  # this test's own /metrics GETs are counted
            assert first.get(key, 0.0) == pytest.approx(
                second.get(key, 0.0)), \
                f"{key} drifted between identical warm runs"
        # And both were pure cache traffic.
        assert first.get('repro_cells_total{source="cache"}', 0) == 1

    def test_logs_correlate_by_job(self, client):
        job = client.submit(spec_payload(seeds=[11]),
                            trace="pytest-trace-logs")
        job_id = str(job["id"])
        client.wait(str(job["id"]), stall_after_s=30.0)
        records = client.logs(job=job_id)["records"]
        events = [record["event"] for record in records]
        assert events[0] == "job.start" and events[-1] == "job.done"
        assert "cell.done" in events
        assert all(record["job"] == job_id for record in records)
        assert all(record["trace"] == "pytest-trace-logs"
                   for record in records)
        # level filter composes with the job filter
        assert client.logs(job=job_id, level="error")["records"] == []

    def test_stats_worker_rows(self, client):
        stats = client.stats()
        pool = stats["pool"]
        rows = pool["worker_state"]
        assert len(rows) == 2 == pool["workers"]
        for row in rows:
            assert row["alive"] is True
            assert row["state"] in ("busy", "idle")
            assert row["respawns"] == 0
        assert sum(row["done"] for row in rows) >= 1
        assert pool["backlogs"] == [0, 0]
        tele = stats["telemetry"]
        assert tele["spans_finished"] >= tele["spans_started"] - 4
        assert stats["cache"]["stores"] >= 1

    def test_heartbeats_fill_silent_streams(self, client):
        # 30k instructions computes for a second or more against a
        # 0.25 s heartbeat interval — the stream must carry heartbeats.
        job = client.submit(spec_payload(seeds=[23],
                                         n_instructions=30000))
        events = list(client.stream(str(job["id"]), stall_after_s=30.0))
        beats = [e for e in events if e["event"] == "heartbeat"]
        assert beats, "no heartbeat on a slow stream"
        for beat in beats:
            assert beat["job"] == str(job["id"])
            assert beat["n_cells"] == 1

    def test_submit_cli_reports_heartbeats(self, harness, capsys):
        from repro.cli import main
        main(["submit", "--port", str(harness.port),
              "--benchmarks", "gzip", "--presets", "conventional",
              "--seeds", "31", "-n", "30000"])
        out = capsys.readouterr().out
        assert "server alive" in out
        assert "done," in out

    def test_top_once(self, harness, capsys):
        from repro.cli import main
        main(["top", "--once", "--port", str(harness.port)])
        out = capsys.readouterr().out
        assert "repro top" in out and "idle" in out
        assert "coalescing" in out

    def test_timeline_cli_writes_valid_trace(self, harness, client,
                                             tmp_path, capsys):
        from repro.cli import main
        from repro.obs.chrometrace import validate_chrome_trace_file
        job = client.submit(spec_payload(benchmarks=["gzip"],
                                         seeds=[41]))
        job_id = str(job["id"])
        client.wait(job_id, stall_after_s=30.0)
        out_file = tmp_path / "timeline.json"
        main(["timeline", job_id, "--port", str(harness.port),
              "-o", str(out_file), "--cells", "1"])
        assert validate_chrome_trace_file(str(out_file)) == []
        doc = json.loads(out_file.read_text())
        names = {event.get("name") for event in doc["traceEvents"]}
        assert "job" in names and "cell" in names  # server spans
        other = doc["otherData"]
        assert other["kind"] == "repro-timeline"
        assert other["job"] == job_id
        assert len(other["cells"]) == 1  # one re-simulated cell


@pytest.mark.slow
def test_client_stall_detector_fires(tmp_path):
    """With heartbeats disabled and a compute-bound job, a tight stall
    budget must raise ServeStalled instead of hanging forever."""
    config = ServeConfig(port=0, workers=1, heartbeat_s=0.0,
                         cache_dir=str(tmp_path / "cache"))
    with ServerHarness(config) as harness:
        client = ServeClient(port=harness.port)
        job = client.submit(spec_payload(benchmarks=["gzip", "mgrid"],
                                         seeds=[0, 1],
                                         n_instructions=20000))
        with pytest.raises(ServeStalled):
            for _event in client.stream(str(job["id"]),
                                        stall_after_s=0.3):
                pass
        # The server itself is healthy; the job still finishes.
        final = client.wait(str(job["id"]), stall_after_s=60.0)
        assert final["job"]["state"] == "done"


@pytest.mark.slow
def test_trace_header_reaches_server_verbatim(tmp_path):
    """The raw X-Repro-Trace header value (not a re-encoding) becomes
    the job's trace id, so cross-system correlation works."""
    config = ServeConfig(port=0, workers=1,
                         cache_dir=str(tmp_path / "cache"))
    with ServerHarness(config) as harness:
        client = ServeClient(port=harness.port)
        assert TRACE_HEADER == "X-Repro-Trace"
        job = client.submit(spec_payload(), trace="ext.system-42")
        assert job["trace"] == "ext.system-42"
        client.wait(str(job["id"]), stall_after_s=30.0)
        spans = client.spans(str(job["id"]))["spans"]
        assert spans and all(span["trace"] == "ext.system-42"
                             for span in spans)
