"""Unit tests for the store-set / store-load pair predictor."""

import pytest

from repro.config import PredictorMode, StoreSetConfig
from repro.core.store_sets import (
    PairPredictor,
    PerfectPredictor,
    make_predictor,
)
from repro.pipeline.dyninst import DynInst
from repro.stats.counters import SimStats
from tests.conftest import load, store


def dyn_load(seq, pc=0x1000, addr=0x40):
    return DynInst(seq, seq, load(addr, pc=pc))


def dyn_store(seq, pc=0x2000, addr=0x40):
    return DynInst(seq, seq, store(addr, pc=pc))


@pytest.fixture
def predictor():
    return PairPredictor(StoreSetConfig(), SimStats(), PredictorMode.PAIR,
                         clear_interval=0)


class TestTraining:
    def test_untrained_load_predicted_independent(self, predictor):
        ld = dyn_load(1)
        predictor.on_load_dispatch(ld)
        assert not ld.predicted_dependent
        assert ld.ssid is None

    def test_violation_trains_pair(self, predictor):
        predictor.train_violation(0x1000, 0x2000)
        ld = dyn_load(5, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert ld.predicted_dependent

    def test_merge_into_existing_set(self, predictor):
        predictor.train_violation(0x1000, 0x2000)
        predictor.train_violation(0x1000, 0x2004)  # second store joins
        ld = dyn_load(1, pc=0x1000)
        st1 = dyn_store(2, pc=0x2000)
        st2 = dyn_store(3, pc=0x2004)
        predictor.on_load_dispatch(ld)
        predictor.on_store_dispatch(st1)
        predictor.on_store_dispatch(st2)
        assert st1.ssid == st2.ssid == ld.ssid

    def test_merge_two_sets_converges(self, predictor):
        predictor.train_violation(0x1000, 0x2000)
        predictor.train_violation(0x1100, 0x2100)
        # now merge across the two sets
        predictor.train_violation(0x1000, 0x2100)
        a = dyn_load(1, pc=0x1000)
        b = dyn_store(2, pc=0x2100)
        predictor.on_load_dispatch(a)
        predictor.on_store_dispatch(b)
        assert a.ssid == b.ssid

    def test_train_pair_noop_in_conventional_mode(self):
        conv = PairPredictor(StoreSetConfig(), SimStats(),
                             PredictorMode.CONVENTIONAL, clear_interval=0)
        conv.train_pair(0x1000, 0x2000)
        ld = dyn_load(1, pc=0x1000)
        conv.on_load_dispatch(ld)
        assert not ld.predicted_dependent

    def test_train_pair_trains_in_pair_mode(self, predictor):
        predictor.train_pair(0x1000, 0x2000)
        ld = dyn_load(1, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert ld.predicted_dependent


class TestLifecycle:
    def _trained(self, predictor):
        predictor.train_violation(0x1000, 0x2000)

    def test_counter_counts_in_flight_stores(self, predictor):
        self._trained(predictor)
        st = dyn_store(1, pc=0x2000)
        predictor.on_store_dispatch(st)
        ld = dyn_load(2, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert predictor.should_search(ld)
        predictor.on_store_commit(st)
        assert not predictor.should_search(ld)

    def test_counter_saturates(self, predictor):
        self._trained(predictor)
        stores = [dyn_store(i, pc=0x2000) for i in range(1, 12)]
        for st in stores:
            predictor.on_store_dispatch(st)
        # 3-bit counter saturates at 7; committing 7 empties it even
        # though more stores were dispatched (the documented
        # approximation of a finite counter).
        for st in stores[:7]:
            predictor.on_store_commit(st)
        ld = dyn_load(99, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert not predictor.should_search(ld)

    def test_wait_on_last_fetched_store(self, predictor):
        self._trained(predictor)
        st = dyn_store(3, pc=0x2000)
        predictor.on_store_dispatch(st)
        ld = dyn_load(5, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert ld.wait_store_seq == 3

    def test_no_wait_after_store_issue(self, predictor):
        self._trained(predictor)
        st = dyn_store(3, pc=0x2000)
        predictor.on_store_dispatch(st)
        predictor.on_store_issue(st)
        ld = dyn_load(5, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert ld.wait_store_seq is None

    def test_counter_still_set_after_issue(self, predictor):
        # Valid bit and counter have independent lifetimes (Section 2.1.1).
        self._trained(predictor)
        st = dyn_store(3, pc=0x2000)
        predictor.on_store_dispatch(st)
        predictor.on_store_issue(st)
        ld = dyn_load(5, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert predictor.should_search(ld)

    def test_squash_rolls_back_counter(self, predictor):
        self._trained(predictor)
        st = dyn_store(3, pc=0x2000)
        predictor.on_store_dispatch(st)
        predictor.on_store_squash(st)
        ld = dyn_load(5, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert not predictor.should_search(ld)

    def test_conventional_mode_always_searches(self):
        conv = PairPredictor(StoreSetConfig(), SimStats(),
                             PredictorMode.CONVENTIONAL, clear_interval=0)
        ld = dyn_load(1)
        conv.on_load_dispatch(ld)
        assert conv.should_search(ld)


class TestAliasing:
    def test_real_tables_alias(self, predictor):
        # PCs constructed to share an SSIT index alias in the realistic
        # tables: training one trains the other.
        from repro.workload.synthetic import colliding_pc
        leader = 0x1000
        other = colliding_pc(leader, member=1)
        predictor.train_violation(leader, 0x2000)
        ld = dyn_load(1, pc=other)
        predictor.on_load_dispatch(ld)
        assert ld.predicted_dependent  # constructive interference

    def test_ideal_tables_do_not_alias(self):
        from repro.workload.synthetic import colliding_pc
        aggressive = PairPredictor(StoreSetConfig(), SimStats(),
                                   PredictorMode.AGGRESSIVE,
                                   clear_interval=0)
        leader = 0x1000
        other = colliding_pc(leader, member=1)
        aggressive.train_violation(leader, 0x2000)
        ld = dyn_load(1, pc=other)
        aggressive.on_load_dispatch(ld)
        assert not ld.predicted_dependent


class TestClearing:
    def test_clear_forgets(self):
        predictor = PairPredictor(StoreSetConfig(), SimStats(),
                                  PredictorMode.PAIR, clear_interval=100)
        predictor.train_violation(0x1000, 0x2000)
        predictor.maybe_clear(committed=100)
        ld = dyn_load(1, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert not ld.predicted_dependent

    def test_no_clear_before_interval(self):
        predictor = PairPredictor(StoreSetConfig(), SimStats(),
                                  PredictorMode.PAIR, clear_interval=100)
        predictor.train_violation(0x1000, 0x2000)
        predictor.maybe_clear(committed=99)
        ld = dyn_load(1, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert ld.predicted_dependent

    def test_interval_zero_disables(self):
        predictor = PairPredictor(StoreSetConfig(), SimStats(),
                                  PredictorMode.PAIR, clear_interval=0)
        predictor.train_violation(0x1000, 0x2000)
        predictor.maybe_clear(committed=10 ** 9)
        ld = dyn_load(1, pc=0x1000)
        predictor.on_load_dispatch(ld)
        assert ld.predicted_dependent

    def test_interval_from_config(self):
        config = StoreSetConfig(clear_interval=77)
        predictor = PairPredictor(config, SimStats(), PredictorMode.PAIR)
        assert predictor.clear_interval == 77


class TestFactoryAndPerfect:
    def test_factory_modes(self):
        stats = SimStats()
        assert isinstance(make_predictor(PredictorMode.PERFECT,
                                         StoreSetConfig(), stats),
                          PerfectPredictor)
        assert isinstance(make_predictor(PredictorMode.PAIR,
                                         StoreSetConfig(), stats),
                          PairPredictor)

    def test_perfect_is_stateless(self):
        perfect = PerfectPredictor(StoreSetConfig(), SimStats())
        ld = dyn_load(1)
        perfect.train_violation(0x1000, 0x2000)
        perfect.on_load_dispatch(ld)
        assert not ld.predicted_dependent
        assert not perfect.should_search(ld)

    def test_pair_predictor_rejects_perfect_mode(self):
        with pytest.raises(ValueError):
            PairPredictor(StoreSetConfig(), SimStats(),
                          PredictorMode.PERFECT)
